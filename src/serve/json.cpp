#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sdf {
namespace serve {

Json Json::boolean(bool value) {
    Json j;
    j.kind_ = Kind::boolean;
    j.boolean_ = value;
    return j;
}

Json Json::integer(std::int64_t value) {
    Json j;
    j.kind_ = Kind::integer;
    j.integer_ = value;
    return j;
}

Json Json::real(double value) {
    Json j;
    j.kind_ = Kind::real;
    j.real_ = value;
    return j;
}

Json Json::string(std::string value) {
    Json j;
    j.kind_ = Kind::string;
    j.string_ = std::move(value);
    return j;
}

Json Json::array() {
    Json j;
    j.kind_ = Kind::array;
    return j;
}

Json Json::object() {
    Json j;
    j.kind_ = Kind::object;
    return j;
}

namespace {

[[noreturn]] void kind_error(const char* wanted) {
    throw JsonParseError(std::string("JSON value is not ") + wanted);
}

}  // namespace

bool Json::as_boolean() const {
    if (kind_ != Kind::boolean) {
        kind_error("a boolean");
    }
    return boolean_;
}

std::int64_t Json::as_integer() const {
    if (kind_ != Kind::integer) {
        kind_error("an integer");
    }
    return integer_;
}

double Json::as_real() const {
    if (kind_ == Kind::integer) {
        return static_cast<double>(integer_);
    }
    if (kind_ != Kind::real) {
        kind_error("a number");
    }
    return real_;
}

const std::string& Json::as_string() const {
    if (kind_ != Kind::string) {
        kind_error("a string");
    }
    return string_;
}

const std::vector<Json>& Json::items() const {
    if (kind_ != Kind::array) {
        kind_error("an array");
    }
    return items_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
    if (kind_ != Kind::object) {
        kind_error("an object");
    }
    return members_;
}

const Json* Json::find(const std::string& key) const {
    if (kind_ != Kind::object) {
        return nullptr;
    }
    for (const auto& [name, value] : members_) {
        if (name == key) {
            return &value;
        }
    }
    return nullptr;
}

void Json::push_back(Json value) {
    if (kind_ != Kind::array) {
        kind_error("an array");
    }
    items_.push_back(std::move(value));
}

void Json::set(const std::string& key, Json value) {
    if (kind_ != Kind::object) {
        kind_error("an object");
    }
    for (auto& [name, existing] : members_) {
        if (name == key) {
            existing = std::move(value);
            return;
        }
    }
    members_.emplace_back(key, std::move(value));
}

// ---- writer -----------------------------------------------------------

namespace {

void dump_string(const std::string& text, std::string& out) {
    out += '"';
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;  // UTF-8 bytes pass through verbatim
                }
        }
    }
    out += '"';
}

}  // namespace

std::string Json::dump() const {
    std::string out;
    switch (kind_) {
        case Kind::null:
            out = "null";
            break;
        case Kind::boolean:
            out = boolean_ ? "true" : "false";
            break;
        case Kind::integer:
            out = std::to_string(integer_);
            break;
        case Kind::real: {
            // Shortest representation that round-trips; integral doubles
            // keep a ".0" so the kind survives a parse.
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", real_);
            double back = 0;
            if (std::sscanf(buf, "%lf", &back) == 1 && back == real_) {
                for (int precision = 1; precision < 17; ++precision) {
                    char shorter[32];
                    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, real_);
                    if (std::sscanf(shorter, "%lf", &back) == 1 && back == real_) {
                        std::snprintf(buf, sizeof(buf), "%s", shorter);
                        break;
                    }
                }
            }
            out = buf;
            if (out.find_first_of(".eE") == std::string::npos) {
                out += ".0";
            }
            break;
        }
        case Kind::string:
            dump_string(string_, out);
            break;
        case Kind::array: {
            out = "[";
            for (std::size_t i = 0; i < items_.size(); ++i) {
                if (i > 0) {
                    out += ",";
                }
                out += items_[i].dump();
            }
            out += "]";
            break;
        }
        case Kind::object: {
            out = "{";
            for (std::size_t i = 0; i < members_.size(); ++i) {
                if (i > 0) {
                    out += ",";
                }
                dump_string(members_[i].first, out);
                out += ":";
                out += members_[i].second.dump();
            }
            out += "}";
            break;
        }
    }
    return out;
}

// ---- parser -----------------------------------------------------------

namespace {

/// Recursive-descent parser over one in-memory line; positions in error
/// messages are byte offsets (requests are single lines, so offsets beat
/// line numbers).
class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    Json parse_document() {
        Json value = parse_value(0);
        skip_whitespace();
        if (pos_ != text_.size()) {
            fail("trailing characters after the JSON value");
        }
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw JsonParseError("JSON error at offset " + std::to_string(pos_) + ": " +
                             what);
    }

    void skip_whitespace() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        skip_whitespace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    bool consume_keyword(const char* keyword) {
        const std::size_t length = std::string(keyword).size();
        if (text_.compare(pos_, length, keyword) == 0) {
            pos_ += length;
            return true;
        }
        return false;
    }

    Json parse_value(int depth) {
        if (depth > 64) {
            fail("nesting deeper than 64 levels");
        }
        const char c = peek();
        switch (c) {
            case '{': return parse_object(depth);
            case '[': return parse_array(depth);
            case '"': return Json::string(parse_string());
            case 't':
                if (consume_keyword("true")) {
                    return Json::boolean(true);
                }
                fail("invalid literal");
            case 'f':
                if (consume_keyword("false")) {
                    return Json::boolean(false);
                }
                fail("invalid literal");
            case 'n':
                if (consume_keyword("null")) {
                    return Json::make_null();
                }
                fail("invalid literal");
            default:
                return parse_number();
        }
    }

    Json parse_object(int depth) {
        expect('{');
        Json object = Json::object();
        if (peek() == '}') {
            ++pos_;
            return object;
        }
        for (;;) {
            if (peek() != '"') {
                fail("object keys must be strings");
            }
            std::string key = parse_string();
            if (object.find(key) != nullptr) {
                fail("duplicate object key \"" + key + "\"");
            }
            expect(':');
            object.set(key, parse_value(depth + 1));
            const char next = peek();
            if (next == ',') {
                ++pos_;
                continue;
            }
            if (next == '}') {
                ++pos_;
                return object;
            }
            fail("expected ',' or '}' in object");
        }
    }

    Json parse_array(int depth) {
        expect('[');
        Json array = Json::array();
        if (peek() == ']') {
            ++pos_;
            return array;
        }
        for (;;) {
            array.push_back(parse_value(depth + 1));
            const char next = peek();
            if (next == ',') {
                ++pos_;
                continue;
            }
            if (next == ']') {
                ++pos_;
                return array;
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                fail("unterminated escape");
            }
            const char escape = text_[pos_++];
            switch (escape) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code += static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code += static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code += static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            fail("invalid \\u escape digit");
                        }
                    }
                    // Encode the code point as UTF-8; surrogate pairs are
                    // combined when both halves are present.
                    unsigned long cp = code;
                    if (code >= 0xD800 && code <= 0xDBFF) {
                        if (pos_ + 6 <= text_.size() && text_[pos_] == '\\' &&
                            text_[pos_ + 1] == 'u') {
                            pos_ += 2;
                            unsigned low = 0;
                            for (int i = 0; i < 4; ++i) {
                                const char h = text_[pos_++];
                                low <<= 4;
                                if (h >= '0' && h <= '9') {
                                    low += static_cast<unsigned>(h - '0');
                                } else if (h >= 'a' && h <= 'f') {
                                    low += static_cast<unsigned>(h - 'a' + 10);
                                } else if (h >= 'A' && h <= 'F') {
                                    low += static_cast<unsigned>(h - 'A' + 10);
                                } else {
                                    fail("invalid \\u escape digit");
                                }
                            }
                            if (low < 0xDC00 || low > 0xDFFF) {
                                fail("unpaired surrogate");
                            }
                            cp = 0x10000UL + ((code - 0xD800UL) << 10) + (low - 0xDC00UL);
                        } else {
                            fail("unpaired surrogate");
                        }
                    } else if (code >= 0xDC00 && code <= 0xDFFF) {
                        fail("unpaired surrogate");
                    }
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xC0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    } else if (cp < 0x10000) {
                        out += static_cast<char>(0xE0 | (cp >> 12));
                        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    } else {
                        out += static_cast<char>(0xF0 | (cp >> 18));
                        out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
                        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    break;
                }
                default:
                    fail("invalid escape character");
            }
        }
    }

    Json parse_number() {
        skip_whitespace();
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
        }
        if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            fail("invalid number");
        }
        // Leading zeros are invalid JSON ("01"), a lone zero is fine.
        if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
            fail("leading zero in number");
        }
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        bool integral = true;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("digit required after decimal point");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                fail("digit required in exponent");
            }
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
        }
        const std::string token = text_.substr(start, pos_ - start);
        if (integral) {
            std::int64_t value = 0;
            const auto [ptr, ec] =
                std::from_chars(token.data(), token.data() + token.size(), value);
            if (ec == std::errc() && ptr == token.data() + token.size()) {
                return Json::integer(value);
            }
            // Falls through to double for magnitudes beyond int64.
        }
        errno = 0;
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || !std::isfinite(value)) {
            fail("invalid number");
        }
        return Json::real(value);
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
    return Parser(text).parse_document();
}

}  // namespace serve
}  // namespace sdf
