// graph_store.hpp — the content-addressed graph and result cache behind
// `sdfred serve`.
//
// Identity is the CANONICAL TEXT of the parsed graph (io/text.hpp
// round-trips exactly, so write_text_string() is a canonical form): two
// submissions that differ only in comments, whitespace or declaration
// formatting intern to the same entry, while any semantic difference —
// a rate, a delay, an execution time — cannot collide, because the key IS
// the model.  The FNV-1a hash of that key is exposed as a short display id
// in stats and logs, never used for identity.
//
// Interning returns a Graph that SHARES the stored entry's AnalysisManager
// (graph copies share managers until mutation — sdf/analysis_manager.hpp),
// so an analysis computed for one request warms the store for every later
// request on the same model.  When a fresh parse lands on an existing key,
// the entry's manager adopt()s whatever the incoming graph computed and
// the warm stored graph is returned — the same cross-manager machinery the
// pass pipeline uses.
//
// A raw-text memo (submitted bytes → canonical key) lets byte-identical
// resubmissions skip the parse as well; per-operation results cached inside
// each entry let them skip the analysis too.  Entries carry their results
// with them, so LRU eviction of a graph drops its results atomically.
//
// All operations are safe to call from concurrent server workers; parsing
// happens outside the lock.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "sdf/graph.hpp"

namespace sdf {
namespace serve {

/// Cache counters, surfaced verbatim by the `stats` endpoint.
struct StoreStats {
    std::uint64_t graph_hits = 0;     ///< interns served from the store
    std::uint64_t graph_misses = 0;   ///< interns that had to parse
    std::uint64_t graph_evictions = 0;
    std::uint64_t result_hits = 0;    ///< analyses served from a cached result
    std::uint64_t result_misses = 0;
    std::size_t graphs = 0;           ///< entries currently stored
    std::size_t results = 0;          ///< cached results across all entries
};

class PersistentCache;

/// See the file comment.
class GraphStore {
public:
    /// `max_graphs` caps the number of interned models (LRU beyond it);
    /// clamped to at least 1.
    explicit GraphStore(std::size_t max_graphs = 64);

    /// Attaches (or detaches, nullptr) the disk backing.  Not owned; the
    /// caller keeps it alive for the store's lifetime.  store_result then
    /// writes through, and warm() replays what an earlier process wrote.
    void attach_persistence(PersistentCache* persist);

    /// Replays every intact persisted entry: the graph key is re-PARSED
    /// (it is the model's canonical text) and must canonicalise back to
    /// itself — an entry whose key does not round-trip is quarantined, not
    /// trusted.  Returns the number of results replayed into the store.
    std::size_t warm();

    /// One interned model.
    struct Interned {
        Graph graph;      ///< shares the stored entry's AnalysisManager
        std::string key;  ///< canonical text — the identity
        std::string id;   ///< fnv1a-64 hex of `key`, for stats/logs
        bool hit = false; ///< true when the store already held this model
    };

    /// Interns the model in `raw_text` — plain text or SDF3 XML, sniffed
    /// from the content; parses at most once per distinct submission
    /// (ParseError propagates to the caller).
    Interned intern_text(const std::string& raw_text);

    /// Interns an already-parsed graph (the `edit` op's derived children),
    /// keyed by its canonical text like every other entry.  When the key is
    /// already stored, the warm entry adopts the incoming graph's analyses
    /// — which for an edited child are the slots REFINED from its parent —
    /// and the stored graph is returned.
    Interned intern_graph(Graph graph);

    /// The interned entry whose display id (fnv1a-64 hex of the key) is
    /// `id`, if any.  Display ids are what stats, logs and `edit` responses
    /// expose, so this is how an edit request names its parent without
    /// resubmitting the model text.
    [[nodiscard]] std::optional<Interned> find_by_id(const std::string& id);

    /// The cached result of `op_key` on the graph `graph_key`, if any.
    /// `op_key` is the service's composite key (operation + pipeline).
    [[nodiscard]] std::optional<std::pair<int, std::string>> find_result(
        const std::string& graph_key, const std::string& op_key);

    /// Caches `op_key` → (exit code, rendered result) on `graph_key`, and
    /// writes through to the attached PersistentCache (outside the store
    /// lock — disk latency must not serialise the workers).  No-op in
    /// memory when the graph was evicted in the meantime; the disk entry is
    /// still written, because persistence outlives the LRU.
    void store_result(const std::string& graph_key, const std::string& op_key,
                      int exit_code, const std::string& result);

    [[nodiscard]] StoreStats stats() const;

    /// fnv1a-64 of `text`, as 16 lower-case hex digits.
    static std::string content_id(const std::string& text);

private:
    struct Entry {
        std::string key;
        std::string id;
        Graph graph;
        std::unordered_map<std::string, std::pair<int, std::string>> results;
    };
    using EntryList = std::list<Entry>;

    /// Moves the entry to the LRU front; callers hold the lock.
    void touch(EntryList::iterator it);
    void evict_over_capacity();

    const std::size_t max_graphs_;
    PersistentCache* persist_ = nullptr;  ///< not owned; set before serving
    mutable std::mutex mutex_;
    EntryList entries_;  ///< front = most recently used
    std::unordered_map<std::string, EntryList::iterator> by_key_;
    /// Submitted bytes → canonical key; cleared wholesale when oversized.
    std::unordered_map<std::string, std::string> raw_memo_;
    StoreStats stats_;
};

}  // namespace serve
}  // namespace sdf
