#include "serve/protocol.hpp"

#include <chrono>

namespace sdf {
namespace serve {

const char* op_name(Op op) {
    switch (op) {
        case Op::throughput: return "throughput";
        case Op::lint: return "lint";
        case Op::certify: return "certify";
        case Op::fuzz_smoke: return "fuzz-smoke";
        case Op::stats: return "stats";
        case Op::health: return "health";
        case Op::ping: return "ping";
        case Op::shutdown: return "shutdown";
    }
    return "?";
}

namespace {

Op parse_op(const std::string& name) {
    if (name == "throughput") {
        return Op::throughput;
    }
    if (name == "lint") {
        return Op::lint;
    }
    if (name == "certify") {
        return Op::certify;
    }
    if (name == "fuzz-smoke") {
        return Op::fuzz_smoke;
    }
    if (name == "stats") {
        return Op::stats;
    }
    if (name == "health") {
        return Op::health;
    }
    if (name == "ping") {
        return Op::ping;
    }
    if (name == "shutdown") {
        return Op::shutdown;
    }
    throw BadRequestError("unknown analysis \"" + name +
                          "\" (valid: throughput, lint, certify, fuzz-smoke, "
                          "stats, health, ping, shutdown)");
}

std::uint64_t positive_integer(const Json& value, const char* field) {
    if (!value.is_integer() || value.as_integer() <= 0) {
        throw BadRequestError(std::string("budget field \"") + field +
                              "\" must be a positive integer");
    }
    return static_cast<std::uint64_t>(value.as_integer());
}

ExecutionBudget parse_budget(const Json& json) {
    ExecutionBudget budget;
    for (const auto& [key, value] : json.members()) {
        if (key == "timeout_ms") {
            budget.deadline =
                std::chrono::milliseconds(positive_integer(value, "timeout_ms"));
        } else if (key == "max_steps") {
            budget.max_steps = positive_integer(value, "max_steps");
        } else if (key == "max_memory_mb") {
            budget.max_bytes = positive_integer(value, "max_memory_mb") * 1024 * 1024;
        } else {
            throw BadRequestError("unknown budget field \"" + key +
                                  "\" (valid: timeout_ms, max_steps, max_memory_mb)");
        }
    }
    return budget;
}

}  // namespace

Request parse_request(const Json& json) {
    if (!json.is_object()) {
        throw BadRequestError("request must be a JSON object");
    }
    Request request;
    bool saw_op = false;
    for (const auto& [key, value] : json.members()) {
        if (key == "id") {
            if (!value.is_null() && !value.is_string() && !value.is_integer()) {
                throw BadRequestError("\"id\" must be a string or an integer");
            }
            request.id = value;
        } else if (key == "op") {
            if (!value.is_string()) {
                throw BadRequestError("\"op\" must be a string");
            }
            request.op = parse_op(value.as_string());
            saw_op = true;
        } else if (key == "model") {
            if (!value.is_string()) {
                throw BadRequestError("\"model\" must be a string");
            }
            request.model = value.as_string();
        } else if (key == "model_path") {
            if (!value.is_string()) {
                throw BadRequestError("\"model_path\" must be a string");
            }
            request.model_path = value.as_string();
        } else if (key == "pipeline") {
            if (!value.is_string()) {
                throw BadRequestError("\"pipeline\" must be a string");
            }
            request.pipeline = value.as_string();
        } else if (key == "budget") {
            if (!value.is_object()) {
                throw BadRequestError("\"budget\" must be an object");
            }
            request.budget = parse_budget(value);
            request.has_budget = !request.budget.unlimited();
        } else if (key == "degrade") {
            if (!value.is_string() ||
                (value.as_string() != "auto" && value.as_string() != "never")) {
                throw BadRequestError("\"degrade\" must be \"auto\" or \"never\"");
            }
            request.degrade = value.as_string() == "auto";
        } else if (key == "no_cache") {
            if (!value.is_boolean()) {
                throw BadRequestError("\"no_cache\" must be a boolean");
            }
            request.no_cache = value.as_boolean();
        } else {
            throw BadRequestError("unknown request field \"" + key + "\"");
        }
    }
    if (!saw_op) {
        throw BadRequestError("request is missing \"op\"");
    }
    if (request.needs_model()) {
        if (request.model.empty() && request.model_path.empty()) {
            throw BadRequestError(std::string("op \"") + op_name(request.op) +
                                  "\" requires \"model\" or \"model_path\"");
        }
        if (!request.model.empty() && !request.model_path.empty()) {
            throw BadRequestError("\"model\" and \"model_path\" are mutually exclusive");
        }
    }
    return request;
}

Json make_response(const Json& id, bool ok, Op op, int exit_code,
                   const std::string& cache) {
    Json response = Json::object();
    response.set("id", id);
    response.set("ok", Json::boolean(ok));
    response.set("op", Json::string(op_name(op)));
    response.set("exit", Json::integer(exit_code));
    response.set("cache", Json::string(cache));
    return response;
}

Json make_error(int code, const std::string& kind, const std::string& message,
                const std::string& cause) {
    Json error = Json::object();
    error.set("code", Json::integer(code));
    error.set("kind", Json::string(kind));
    if (!cause.empty()) {
        error.set("cause", Json::string(cause));
    }
    error.set("message", Json::string(message));
    return error;
}

Json make_error_response(const Json& id, const Json& op_echo, int exit_code,
                         const std::string& cache, Json error) {
    Json response = Json::object();
    response.set("id", id);
    response.set("ok", Json::boolean(false));
    response.set("op", op_echo);
    response.set("exit", Json::integer(exit_code));
    response.set("cache", Json::string(cache));
    response.set("error", std::move(error));
    return response;
}

}  // namespace serve
}  // namespace sdf
