#include "serve/protocol.hpp"

#include <chrono>

namespace sdf {
namespace serve {

const char* op_name(Op op) {
    switch (op) {
        case Op::throughput: return "throughput";
        case Op::lint: return "lint";
        case Op::certify: return "certify";
        case Op::fuzz_smoke: return "fuzz-smoke";
        case Op::edit: return "edit";
        case Op::stats: return "stats";
        case Op::health: return "health";
        case Op::ping: return "ping";
        case Op::shutdown: return "shutdown";
    }
    return "?";
}

namespace {

Op parse_op(const std::string& name) {
    if (name == "throughput") {
        return Op::throughput;
    }
    if (name == "lint") {
        return Op::lint;
    }
    if (name == "certify") {
        return Op::certify;
    }
    if (name == "fuzz-smoke") {
        return Op::fuzz_smoke;
    }
    if (name == "edit") {
        return Op::edit;
    }
    if (name == "stats") {
        return Op::stats;
    }
    if (name == "health") {
        return Op::health;
    }
    if (name == "ping") {
        return Op::ping;
    }
    if (name == "shutdown") {
        return Op::shutdown;
    }
    throw BadRequestError("unknown analysis \"" + name +
                          "\" (valid: throughput, lint, certify, fuzz-smoke, "
                          "edit, stats, health, ping, shutdown)");
}

std::uint64_t positive_integer(const Json& value, const char* field) {
    if (!value.is_integer() || value.as_integer() <= 0) {
        throw BadRequestError(std::string("budget field \"") + field +
                              "\" must be a positive integer");
    }
    return static_cast<std::uint64_t>(value.as_integer());
}

ExecutionBudget parse_budget(const Json& json) {
    ExecutionBudget budget;
    for (const auto& [key, value] : json.members()) {
        if (key == "timeout_ms") {
            budget.deadline =
                std::chrono::milliseconds(positive_integer(value, "timeout_ms"));
        } else if (key == "max_steps") {
            budget.max_steps = positive_integer(value, "max_steps");
        } else if (key == "max_memory_mb") {
            budget.max_bytes = positive_integer(value, "max_memory_mb") * 1024 * 1024;
        } else {
            throw BadRequestError("unknown budget field \"" + key +
                                  "\" (valid: timeout_ms, max_steps, max_memory_mb)");
        }
    }
    return budget;
}

/// A non-negative integer member of an edit step.
Int step_integer(const Json& value, const char* field, Int minimum) {
    if (!value.is_integer() || value.as_integer() < minimum) {
        throw BadRequestError(std::string("edit field \"") + field +
                              "\" must be an integer >= " + std::to_string(minimum));
    }
    return value.as_integer();
}

EditStep parse_edit_step(const Json& json, std::size_t index) {
    const std::string at = " in edit #" + std::to_string(index);
    if (!json.is_object()) {
        throw BadRequestError("each edit must be a JSON object (edit #" +
                              std::to_string(index) + ")");
    }
    EditStep step;
    bool saw_set = false;
    bool saw_actor = false;
    bool saw_channel = false;
    bool saw_value = false;
    bool saw_production = false;
    bool saw_consumption = false;
    for (const auto& [key, value] : json.members()) {
        if (key == "set") {
            if (!value.is_string()) {
                throw BadRequestError("\"set\" must be a string" + at);
            }
            const std::string& name = value.as_string();
            if (name == "execution-time") {
                step.kind = EditStep::Kind::execution_time;
            } else if (name == "initial-tokens") {
                step.kind = EditStep::Kind::initial_tokens;
            } else if (name == "rates") {
                step.kind = EditStep::Kind::rates;
            } else {
                throw BadRequestError(
                    "unknown edit \"" + name +
                    "\" (valid: execution-time, initial-tokens, rates)" + at);
            }
            saw_set = true;
        } else if (key == "actor") {
            if (!value.is_string() || value.as_string().empty()) {
                throw BadRequestError("\"actor\" must be a non-empty string" + at);
            }
            step.actor = value.as_string();
            saw_actor = true;
        } else if (key == "channel") {
            step.channel =
                static_cast<std::uint64_t>(step_integer(value, "channel", 0));
            saw_channel = true;
        } else if (key == "time" || key == "tokens") {
            step.value = step_integer(value, key.c_str(), 0);
            saw_value = true;
        } else if (key == "production") {
            step.production = step_integer(value, "production", 1);
            saw_production = true;
        } else if (key == "consumption") {
            step.consumption = step_integer(value, "consumption", 1);
            saw_consumption = true;
        } else {
            throw BadRequestError("unknown edit field \"" + key + "\"" + at);
        }
    }
    if (!saw_set) {
        throw BadRequestError("edit is missing \"set\"" + at);
    }
    switch (step.kind) {
        case EditStep::Kind::execution_time:
            if (!saw_actor || !saw_value || saw_channel || saw_production ||
                saw_consumption) {
                throw BadRequestError(
                    "execution-time edits take exactly \"actor\" and \"time\"" + at);
            }
            break;
        case EditStep::Kind::initial_tokens:
            if (!saw_channel || !saw_value || saw_actor || saw_production ||
                saw_consumption) {
                throw BadRequestError(
                    "initial-tokens edits take exactly \"channel\" and \"tokens\"" +
                    at);
            }
            break;
        case EditStep::Kind::rates:
            if (!saw_channel || !saw_production || !saw_consumption || saw_actor ||
                saw_value) {
                throw BadRequestError(
                    "rates edits take exactly \"channel\", \"production\" and "
                    "\"consumption\"" +
                    at);
            }
            break;
    }
    return step;
}

}  // namespace

std::vector<EditStep> parse_edits(const Json& json) {
    if (!json.is_array()) {
        throw BadRequestError("\"edits\" must be an array of edit objects");
    }
    const std::vector<Json>& items = json.items();
    std::vector<EditStep> steps;
    steps.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        steps.push_back(parse_edit_step(items[i], i));
    }
    return steps;
}

Json edits_json(const std::vector<EditStep>& steps) {
    Json out = Json::array();
    for (const EditStep& step : steps) {
        Json entry = Json::object();
        switch (step.kind) {
            case EditStep::Kind::execution_time:
                entry.set("set", Json::string("execution-time"));
                entry.set("actor", Json::string(step.actor));
                entry.set("time", Json::integer(step.value));
                break;
            case EditStep::Kind::initial_tokens:
                entry.set("set", Json::string("initial-tokens"));
                entry.set("channel",
                          Json::integer(static_cast<std::int64_t>(step.channel)));
                entry.set("tokens", Json::integer(step.value));
                break;
            case EditStep::Kind::rates:
                entry.set("set", Json::string("rates"));
                entry.set("channel",
                          Json::integer(static_cast<std::int64_t>(step.channel)));
                entry.set("production", Json::integer(step.production));
                entry.set("consumption", Json::integer(step.consumption));
                break;
        }
        out.push_back(std::move(entry));
    }
    return out;
}

Request parse_request(const Json& json) {
    if (!json.is_object()) {
        throw BadRequestError("request must be a JSON object");
    }
    Request request;
    bool saw_op = false;
    for (const auto& [key, value] : json.members()) {
        if (key == "id") {
            if (!value.is_null() && !value.is_string() && !value.is_integer()) {
                throw BadRequestError("\"id\" must be a string or an integer");
            }
            request.id = value;
        } else if (key == "op") {
            if (!value.is_string()) {
                throw BadRequestError("\"op\" must be a string");
            }
            request.op = parse_op(value.as_string());
            saw_op = true;
        } else if (key == "model") {
            if (!value.is_string()) {
                throw BadRequestError("\"model\" must be a string");
            }
            request.model = value.as_string();
        } else if (key == "model_path") {
            if (!value.is_string()) {
                throw BadRequestError("\"model_path\" must be a string");
            }
            request.model_path = value.as_string();
        } else if (key == "pipeline") {
            if (!value.is_string()) {
                throw BadRequestError("\"pipeline\" must be a string");
            }
            request.pipeline = value.as_string();
        } else if (key == "budget") {
            if (!value.is_object()) {
                throw BadRequestError("\"budget\" must be an object");
            }
            request.budget = parse_budget(value);
            request.has_budget = !request.budget.unlimited();
        } else if (key == "degrade") {
            if (!value.is_string() ||
                (value.as_string() != "auto" && value.as_string() != "never")) {
                throw BadRequestError("\"degrade\" must be \"auto\" or \"never\"");
            }
            request.degrade = value.as_string() == "auto";
        } else if (key == "no_cache") {
            if (!value.is_boolean()) {
                throw BadRequestError("\"no_cache\" must be a boolean");
            }
            request.no_cache = value.as_boolean();
        } else if (key == "parent") {
            if (!value.is_string() || value.as_string().empty()) {
                throw BadRequestError("\"parent\" must be a non-empty string");
            }
            request.parent = value.as_string();
        } else if (key == "edits") {
            request.edits = parse_edits(value);
            request.has_edits = true;
        } else if (key == "then") {
            if (!value.is_string()) {
                throw BadRequestError("\"then\" must be a string");
            }
            const std::string& then = value.as_string();
            if (then != "throughput" && then != "lint" && then != "certify") {
                throw BadRequestError(
                    "\"then\" must name an analysis op (valid: throughput, "
                    "lint, certify)");
            }
            request.then_op = then;
        } else {
            throw BadRequestError("unknown request field \"" + key + "\"");
        }
    }
    if (!saw_op) {
        throw BadRequestError("request is missing \"op\"");
    }
    if (request.op == Op::edit) {
        if (!request.has_edits) {
            throw BadRequestError("op \"edit\" requires \"edits\"");
        }
        const int sources = (request.parent.empty() ? 0 : 1) +
                            (request.model.empty() ? 0 : 1) +
                            (request.model_path.empty() ? 0 : 1);
        if (sources != 1) {
            throw BadRequestError(
                "op \"edit\" requires exactly one of \"parent\", \"model\" or "
                "\"model_path\"");
        }
    } else if (!request.parent.empty() || request.has_edits ||
               !request.then_op.empty()) {
        throw BadRequestError(
            "\"parent\", \"edits\" and \"then\" are only valid with op \"edit\"");
    }
    if (request.needs_model()) {
        if (request.model.empty() && request.model_path.empty()) {
            throw BadRequestError(std::string("op \"") + op_name(request.op) +
                                  "\" requires \"model\" or \"model_path\"");
        }
        if (!request.model.empty() && !request.model_path.empty()) {
            throw BadRequestError("\"model\" and \"model_path\" are mutually exclusive");
        }
    }
    return request;
}

Json make_response(const Json& id, bool ok, Op op, int exit_code,
                   const std::string& cache) {
    Json response = Json::object();
    response.set("id", id);
    response.set("ok", Json::boolean(ok));
    response.set("op", Json::string(op_name(op)));
    response.set("exit", Json::integer(exit_code));
    response.set("cache", Json::string(cache));
    return response;
}

Json make_error(int code, const std::string& kind, const std::string& message,
                const std::string& cause) {
    Json error = Json::object();
    error.set("code", Json::integer(code));
    error.set("kind", Json::string(kind));
    if (!cause.empty()) {
        error.set("cause", Json::string(cause));
    }
    error.set("message", Json::string(message));
    return error;
}

Json make_error_response(const Json& id, const Json& op_echo, int exit_code,
                         const std::string& cache, Json error) {
    Json response = Json::object();
    response.set("id", id);
    response.set("ok", Json::boolean(false));
    response.set("op", op_echo);
    response.set("exit", Json::integer(exit_code));
    response.set("cache", Json::string(cache));
    response.set("error", std::move(error));
    return response;
}

}  // namespace serve
}  // namespace sdf
