// sdfred_cli — command-line front end to the sdfred library.
//
//   sdfred_cli info       FILE            structure, consistency, liveness
//   sdfred_cli analyze    FILE            repetition vector, period, throughput,
//                                         makespan, response latencies
//   sdfred_cli analyze    FILE --certify [--json]
//                                         abstract interpretation: token
//                                         intervals, reachability bounds and
//                                         machine-checked buffer-bound
//                                         certificates (docs/ABSINT.md)
//   sdfred_cli deadlock   FILE            deadlock diagnosis with witness
//   sdfred_cli schedule   FILE            rate-optimal static periodic schedule
//   sdfred_cli convert --to FMT FILE [-o OUT]
//                                         FMT: hsdf | reduced-hsdf | abstract |
//                                              abstract-sdf | text | xml | dot
//                                         (--format is accepted as an alias)
//   sdfred_cli pipeline FILE --passes "SPEC" [-o OUT] [--time-passes]
//                       [--verify-each] [--dump-after PASS]
//                                         composable pass pipeline, e.g.
//                                         --passes "selfloops,prune,hsdf-reduced"
//                                         (docs/PIPELINE.md)
//   sdfred_cli pipeline --list            pass catalogue
//   sdfred_cli unfold N   FILE [-o OUT]   Definition 5 unfolding
//   sdfred_cli sensitivity FILE           critical actors and slack
//   sdfred_cli storage     FILE           self-timed channel storage marks
//   sdfred_cli pareto      FILE           throughput/buffer trade-off curve
//   sdfred_cli csdf-analyze FILE.xml      cyclo-static analysis
//   sdfred_cli csdf-reduce  FILE.xml [-o OUT]
//                                         reduced HSDF of a CSDF graph
//   sdfred_cli lint FILE [--format text|json] [--rules ID,ID,...]
//                        [--fail-on note|warning|error]
//                                         static diagnostics (docs/LINT_RULES.md)
//   sdfred_cli lint --list                rule reference table
//   sdfred_cli fuzz [--iterations N] [--seed S] [--oracles ID,ID,...]
//                   [--corpus DIR] [--failures DIR] [--max-mutations N]
//                   [--no-shrink]         differential fuzzing across the
//                                         oracle registry (docs/FUZZING.md)
//   sdfred_cli fuzz --self-test           plant an off-by-one, require the
//                                         harness to find and shrink it
//   sdfred_cli fuzz --list                oracle reference table
//   sdfred_cli serve [--stdio | --socket PATH | --tcp PORT] [--threads N]
//                    [--cache-entries N] [--max-queue N] [--timings]
//                                         newline-delimited-JSON analysis
//                                         daemon with a content-addressed
//                                         result cache (docs/SERVE.md)
//
// Graphs load from SDF3-style XML (*.xml) or the plain-text format
// (anything else); CSDF commands take csdf-typed XML.  -o picks the output
// format by extension (.xml, .dot, anything else: text), stdout gets the
// text format.  --lint runs the linter as a guard before any other
// command and aborts on errors; --version prints the build id.
//
// Resource governance (docs/ROBUSTNESS.md): --timeout-ms N, --max-steps N
// and --max-memory-mb N put the command under an ExecutionBudget.  analyze
// degrades to a certified throughput lower bound when the exact route
// blows the budget (--degrade never disables that); convert and fuzz are
// cut off with exit code 4 / a typed reject respectively.  The environment
// variable SDFRED_FAULT_INJECT=alloc:N|step:N|deadline:N arms one-shot
// deterministic faults for robustness testing.
//
// Exit codes: 0 success (for lint: nothing at/above --fail-on), 1 analysis
// failure or lint findings, 2 bad invocation, 3 unparseable input file,
// 4 aborted by resource budget.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <new>
#include <optional>
#include <string>
#include <vector>

#ifndef SDFRED_VERSION
#define SDFRED_VERSION "unknown"
#endif

#include "absint/certificate.hpp"
#include "absint/reachability.hpp"
#include "absint/token_intervals.hpp"
#include "analysis/deadlock.hpp"
#include "analysis/governed.hpp"
#include "analysis/latency.hpp"
#include "analysis/liveness.hpp"
#include "analysis/pareto.hpp"
#include "analysis/sensitivity.hpp"
#include "analysis/static_schedule.hpp"
#include "analysis/storage.hpp"
#include "analysis/throughput.hpp"
#include "base/cpudispatch.hpp"
#include "base/errors.hpp"
#include "base/signals.hpp"
#include "base/string_util.hpp"
#include "csdf/analysis.hpp"
#include "io/csdf_xml.hpp"
#include "io/dot.hpp"
#include "io/source_map.hpp"
#include "io/text.hpp"
#include "io/xml.hpp"
#include "lint/lint.hpp"
#include "lint/registry.hpp"
#include "lint/render.hpp"
#include "pass/executor.hpp"
#include "pass/pipeline.hpp"
#include "pass/registry.hpp"
#include "robust/budget.hpp"
#include "robust/fault.hpp"
#include "sdf/properties.hpp"
#include "sdf/repetition.hpp"
#include "serve/oracle.hpp"
#include "serve/server.hpp"
#include "verify/fuzz.hpp"
#include "verify/oracles.hpp"

namespace {

using namespace sdf;

bool has_suffix(const std::string& text, const std::string& suffix) {
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
    std::string joined;
    for (const std::string& part : parts) {
        if (!joined.empty()) {
            joined += sep;
        }
        joined += part;
    }
    return joined;
}

Graph load(const std::string& path, SourceMap* locations = nullptr) {
    return has_suffix(path, ".xml") ? read_xml_file(path, locations)
                                    : read_text_file(path, locations);
}

void save(const Graph& graph, const std::optional<std::string>& out) {
    if (!out) {
        write_text(std::cout, graph);
        return;
    }
    if (has_suffix(*out, ".xml")) {
        write_xml_file(*out, graph);
    } else if (has_suffix(*out, ".dot")) {
        write_dot_file(*out, graph);
    } else {
        write_text_file(*out, graph);
    }
    std::cout << "wrote " << *out << "\n";
}

int usage() {
    std::cerr << "usage: sdfred_cli {info|analyze|deadlock|schedule} FILE\n"
                 "       sdfred_cli analyze FILE --certify [--json]\n"
                 "       sdfred_cli convert --to FMT FILE [-o OUT]\n"
                 "       sdfred_cli pipeline FILE --passes \"SPEC\" [-o OUT]\n"
                 "                  [--time-passes] [--verify-each] [--dump-after PASS]\n"
                 "       sdfred_cli pipeline --list\n"
                 "       sdfred_cli unfold N FILE [-o OUT]\n"
                 "       sdfred_cli csdf-analyze FILE.xml\n"
                 "       sdfred_cli csdf-reduce FILE.xml [-o OUT]\n"
                 "       sdfred_cli lint FILE [--format text|json] [--rules ID,...]\n"
                 "                        [--fail-on note|warning|error]\n"
                 "       sdfred_cli lint --list\n"
                 "       sdfred_cli fuzz [--iterations N] [--seed S] [--oracles ID,...]\n"
                 "                       [--corpus DIR] [--failures DIR]\n"
                 "                       [--max-mutations N] [--no-shrink]\n"
                 "       sdfred_cli fuzz --self-test | --list\n"
                 "       sdfred_cli serve [--stdio | --socket PATH | --tcp PORT]\n"
                 "                        [--threads N] [--cache-entries N]\n"
                 "                        [--max-queue N] [--timings]\n"
                 "                        [--cache-dir DIR] [--request-deadline-ms N]\n"
                 "                        [--max-line-bytes N]\n"
                 "       sdfred_cli --version\n"
                 "FMT: hsdf | reduced-hsdf | abstract | abstract-sdf | text | xml | dot\n"
                 "--lint before any command aborts it when the model has lint errors\n"
                 "--timeout-ms N | --max-steps N | --max-memory-mb N put analyze,\n"
                 "convert and fuzz under a resource budget; --degrade {auto|never}\n"
                 "picks between a certified throughput lower bound and exit code 4\n"
                 "when analyze blows it (docs/ROBUSTNESS.md)\n";
    return 2;
}

int cmd_sensitivity(const Graph& g) {
    const SensitivityReport report = sensitivity_analysis(g);
    std::cout << "iteration period: " << report.period.to_string() << "\n";
    std::cout << "per-actor sensitivity (+1 execution time => period delta):\n";
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        std::cout << "  " << g.actor(a).name << ": +" << report.delta[a].to_string();
        if (report.critical[a]) {
            std::cout << "  [critical]";
        } else {
            std::cout << "  (slack " << report.slack[a].to_string() << ")";
        }
        std::cout << "\n";
    }
    return 0;
}

int cmd_storage(const Graph& g) {
    const std::vector<Int> marks = self_timed_storage(g);
    std::cout << "self-timed storage requirement per channel:\n";
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        const Channel& ch = g.channel(c);
        std::cout << "  " << g.actor(ch.src).name << " -> " << g.actor(ch.dst).name
                  << ": " << marks[c] << " tokens"
                  << (ch.is_self_loop() ? "  (self-loop)" : "") << "\n";
    }
    std::cout << "total (excluding self-loops): " << self_timed_storage_total(g)
              << "\n";
    return 0;
}

int cmd_pareto(const Graph& g) {
    std::cout << "throughput/buffer trade-off (greedy Pareto ascent):\n";
    std::cout << "  total buffer   period\n";
    for (const ParetoPoint& point : buffer_throughput_tradeoff(g)) {
        std::cout << "  " << point.total_buffer << "\t\t"
                  << point.period.to_string() << "\n";
    }
    return 0;
}

int cmd_csdf_analyze(const CsdfGraph& g) {
    const std::vector<Int> cycles = csdf_repetition(g);
    std::cout << "cycle repetition vector:\n";
    for (CsdfActorId a = 0; a < g.actor_count(); ++a) {
        std::cout << "  " << g.actor(a).name << ": " << cycles[a] << " ("
                  << g.actor(a).phase_count() << " phases)\n";
    }
    const CsdfThroughput t = csdf_throughput(g);
    if (t.deadlocked) {
        std::cout << "throughput: graph deadlocks (0)\n";
        return 0;
    }
    if (t.unbounded) {
        std::cout << "throughput: unbounded (no constraining cycle)\n";
        return 0;
    }
    std::cout << "iteration period: " << t.period.to_string() << "\n";
    std::cout << "cycles per time unit per actor:\n";
    for (CsdfActorId a = 0; a < g.actor_count(); ++a) {
        std::cout << "  " << g.actor(a).name << ": " << t.per_actor[a].to_string()
                  << "\n";
    }
    return 0;
}

int cmd_info(const Graph& g) {
    std::cout << "graph      : " << (g.name().empty() ? "(unnamed)" : g.name()) << "\n";
    std::cout << "actors     : " << g.actor_count() << "\n";
    std::cout << "channels   : " << g.channel_count() << "\n";
    std::cout << "tokens     : " << g.total_initial_tokens() << "\n";
    std::cout << "homogeneous: " << (g.is_homogeneous() ? "yes" : "no") << "\n";
    std::cout << "consistent : " << (is_consistent(g) ? "yes" : "no") << "\n";
    if (is_consistent(g)) {
        std::cout << "iteration  : " << iteration_length(g) << " firings\n";
        std::cout << "live       : " << (is_live(g) ? "yes" : "no") << "\n";
    }
    std::cout << "strongly connected: " << (is_strongly_connected(g) ? "yes" : "no")
              << "\n";
    return 0;
}

int cmd_analyze(const Graph& g) {
    const std::vector<Int> q = repetition_vector(g);
    std::cout << "repetition vector:\n";
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        std::cout << "  " << g.actor(a).name << ": " << q[a] << "\n";
    }
    // Served from the graph's AnalysisManager: a preceding consumer of the
    // symbolic route (the --lint guard, a wrapping tool) pays nothing twice.
    const auto cached = cached_throughput(g);
    const ThroughputResult& t = *cached;
    switch (t.outcome) {
        case ThroughputOutcome::deadlocked:
            std::cout << "throughput: graph deadlocks (0)\n";
            return 0;
        case ThroughputOutcome::unbounded:
            std::cout << "throughput: unbounded (no constraining cycle)\n";
            return 0;
        case ThroughputOutcome::finite:
            break;
    }
    std::cout << "iteration period: " << t.period.to_string() << "\n";
    std::cout << "throughput per actor (firings/time):\n";
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        std::cout << "  " << g.actor(a).name << ": " << t.per_actor[a].to_string()
                  << "\n";
    }
    std::cout << "iteration makespan: " << iteration_makespan(g) << "\n";
    return 0;
}

/// `analyze` under a resource budget: exact when it fits, a certified
/// lower bound when degraded, exit code 4 when aborted.
int cmd_analyze_governed(const Graph& g, const GovernOptions& options) {
    const std::vector<Int> q = repetition_vector(g);
    std::cout << "repetition vector:\n";
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        std::cout << "  " << g.actor(a).name << ": " << q[a] << "\n";
    }
    const Governed<ThroughputResult> governed = governed_throughput(g, options);
    std::cout << "analysis status: " << governed_status_name(governed.status);
    if (governed.ok()) {
        std::cout << " (method: " << governed.method << ")";
    }
    std::cout << "\n";
    if (governed.cause != BudgetCause::none) {
        std::cout << "budget trip: " << budget_cause_name(governed.cause);
        if (!governed.detail.empty()) {
            std::cout << " — " << governed.detail;
        }
        std::cout << "\n";
    }
    std::cout << "resources: " << governed.used.steps << " steps, "
              << governed.used.accounted_bytes << " accounted bytes, "
              << governed.used.wall_ms << " ms\n";
    if (!governed.ok()) {
        std::cout << "no result obtainable within the budget\n";
        return 4;
    }
    const ThroughputResult& t = *governed.value;
    const bool bound = governed.status == GovernedStatus::degraded;
    switch (t.outcome) {
        case ThroughputOutcome::deadlocked:
            std::cout << "throughput: graph deadlocks (0)\n";
            return 0;
        case ThroughputOutcome::unbounded:
            std::cout << "throughput: unbounded (no constraining cycle)\n";
            return 0;
        case ThroughputOutcome::finite:
            break;
    }
    std::cout << (bound ? "iteration period upper bound: " : "iteration period: ")
              << t.period.to_string() << "\n";
    std::cout << (bound ? "throughput lower bound per actor (firings/time):\n"
                        : "throughput per actor (firings/time):\n");
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        std::cout << "  " << g.actor(a).name << ": " << t.per_actor[a].to_string()
                  << "\n";
    }
    if (!bound) {
        std::cout << "iteration makespan: " << iteration_makespan(g) << "\n";
    }
    return 0;
}

// ---- analyze --certify / --json: the abstract-interpretation report ----

std::string json_quote(const std::string& text) {
    std::string out = "\"";
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    return out + "\"";
}

std::string json_opt_int(const std::optional<Int>& value) {
    return value.has_value() ? std::to_string(*value) : "null";
}

/// `analyze --certify [--json]`: token intervals, reachability firing
/// bounds and machine-checked buffer-bound certificates.  Budget flags
/// govern the solver through its per-transfer checkpoints, so exhaustion
/// surfaces as BudgetExceeded and exit code 4 via the outer handler.
/// Exit 1 when the certificate fails its independent checker or the
/// analysis proves the graph broken (inconsistent rates, a dead actor, or
/// a firing bound below the repetition count — guaranteed deadlock).
int cmd_analyze_absint(const Graph& g, bool json, bool certify,
                       const ExecutionBudget& budget) {
    std::optional<Governor> governor;
    std::optional<GovernorScope> scope;
    if (!budget.unlimited()) {
        governor.emplace(budget);
        scope.emplace(*governor);
    }
    const absint::TokenIntervals ti = absint::token_intervals(g);
    const absint::Reachability reach = absint::compute_reachability(g);
    std::optional<absint::CertifiedBounds> certified;
    absint::CertificateCheck check;
    if (certify) {
        certified = absint::certify_buffer_bounds(g, ti);
        check = absint::verify_certificate(g, *certified);
    }
    std::optional<std::vector<Int>> q;
    std::string inconsistency;
    if (g.actor_count() > 0) {
        try {
            q = repetition_vector(g);
        } catch (const Error& e) {
            inconsistency = e.what();
        }
    }
    bool dead_actor = false;
    bool guaranteed_deadlock = false;
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        dead_actor = dead_actor || reach.never_fires(a);
        guaranteed_deadlock =
            guaranteed_deadlock ||
            (q && reach.max_firings[a].has_value() && *reach.max_firings[a] < (*q)[a]);
    }
    if (json) {
        std::cout << "{\n";
        std::cout << "  \"graph\": " << json_quote(g.name()) << ",\n";
        std::cout << "  \"consistent\": " << (inconsistency.empty() ? "true" : "false")
                  << ",\n";
        std::cout << "  \"solver_steps\": " << ti.solver_steps << ",\n";
        std::cout << "  \"channels\": [";
        for (ChannelId c = 0; c < g.channel_count(); ++c) {
            const Channel& ch = g.channel(c);
            std::cout << (c == 0 ? "\n" : ",\n");
            std::cout << "    {\"id\": " << c << ", \"src\": "
                      << json_quote(g.actor(ch.src).name) << ", \"dst\": "
                      << json_quote(g.actor(ch.dst).name) << ", \"lo\": "
                      << ti.channels[c].lo << ", \"hi\": "
                      << json_opt_int(ti.channels[c].hi) << ", \"cap\": "
                      << json_opt_int(ti.caps[c]);
            if (certified) {
                std::cout << ", \"certified_bound\": "
                          << json_opt_int(certified->certificates[c].bound);
            }
            std::cout << "}";
        }
        std::cout << (g.channel_count() == 0 ? "],\n" : "\n  ],\n");
        std::cout << "  \"actors\": [";
        for (ActorId a = 0; a < g.actor_count(); ++a) {
            std::cout << (a == 0 ? "\n" : ",\n");
            std::cout << "    {\"name\": " << json_quote(g.actor(a).name)
                      << ", \"possibly_enabled\": "
                      << (ti.possibly_enabled[a] ? "true" : "false")
                      << ", \"max_firings\": " << json_opt_int(reach.max_firings[a])
                      << "}";
        }
        std::cout << (g.actor_count() == 0 ? "],\n" : "\n  ],\n");
        std::cout << "  \"invariants\": " << ti.invariants.size() << ",\n";
        if (certified) {
            std::cout << "  \"certificate\": {\"verified\": "
                      << (check.ok ? "true" : "false") << ", \"reason\": "
                      << json_quote(check.reason) << "},\n";
        }
        std::cout << "  \"verdicts\": {\"dead_actor\": "
                  << (dead_actor ? "true" : "false") << ", \"guaranteed_deadlock\": "
                  << (guaranteed_deadlock ? "true" : "false") << "}\n";
        std::cout << "}\n";
    } else {
        std::cout << "token intervals (per channel, over every admissible execution):\n";
        for (ChannelId c = 0; c < g.channel_count(); ++c) {
            const Channel& ch = g.channel(c);
            std::cout << "  #" << c << " " << g.actor(ch.src).name << " -> "
                      << g.actor(ch.dst).name << ": " << ti.channels[c].to_string();
            if (ti.caps[c].has_value()) {
                std::cout << "  (structural cap " << *ti.caps[c] << ")";
            }
            std::cout << "\n";
        }
        std::cout << "cycle invariants proving the caps: " << ti.invariants.size()
                  << " (solver steps: " << ti.solver_steps << ")\n";
        std::cout << "reachability (firing bounds over any admissible execution):\n";
        for (ActorId a = 0; a < g.actor_count(); ++a) {
            std::cout << "  " << g.actor(a).name << ": ";
            if (!reach.max_firings[a].has_value()) {
                std::cout << "unbounded\n";
            } else {
                std::cout << "at most " << *reach.max_firings[a]
                          << (reach.never_fires(a) ? " (dead)" : "") << "\n";
            }
        }
        if (certified) {
            std::cout << "certified buffer bounds:\n";
            for (const absint::BoundCertificate& cert : certified->certificates) {
                const Channel& ch = g.channel(cert.channel);
                std::cout << "  #" << cert.channel << " " << g.actor(ch.src).name
                          << " -> " << g.actor(ch.dst).name << ": "
                          << (cert.bound ? std::to_string(*cert.bound) : "unbounded")
                          << "\n";
            }
            std::cout << "certificate: "
                      << (check.ok ? "VERIFIED (independent checker accepts)"
                                   : "REJECTED: " + check.reason)
                      << "\n";
        }
        if (!inconsistency.empty()) {
            std::cout << "consistency: inconsistent — " << inconsistency << "\n";
        }
        if (dead_actor) {
            std::cout << "verdict: at least one actor provably never fires\n";
        }
        if (guaranteed_deadlock) {
            std::cout << "verdict: a firing bound is below the repetition count — "
                         "no iteration can complete\n";
        }
    }
    const bool broken = (certify && !check.ok) || !inconsistency.empty() ||
                        dead_actor || guaranteed_deadlock;
    return broken ? 1 : 0;
}

int cmd_deadlock(const Graph& g) {
    std::cout << diagnose_deadlock(g).describe(g);
    return 0;
}

int cmd_schedule(const Graph& g) {
    const PeriodicSchedule schedule = periodic_schedule(g);
    std::cout << "period: " << schedule.period.to_string() << "\n";
    std::cout << "start offsets (firing k of actor starts at offset + k*period):\n";
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        std::cout << "  " << g.actor(a).name << ": " << schedule.start[a].to_string()
                  << "\n";
    }
    return 0;
}

int cmd_convert(const Graph& g, const std::string& format,
                const std::optional<std::string>& out,
                const ExecutionBudget& budget) {
    // The graph-rewriting formats are one-pass pipelines: convert rides the
    // same executor as `pipeline`, so budget slicing and analysis adoption
    // behave identically on both entry points.
    std::string spec;
    if (format == "hsdf") {
        spec = "hsdf-classic";
    } else if (format == "reduced-hsdf") {
        spec = "hsdf-reduced";
    } else if (format == "abstract") {
        spec = "abstraction";
    } else if (format == "abstract-sdf") {
        spec = "sdf-abstraction";
    }
    if (!spec.empty()) {
        ExecutorOptions options;
        options.budget = budget;
        save(PipelineExecutor(std::move(options)).run(parse_pipeline(spec), g).graph,
             out);
        return 0;
    }
    if (format == "text" || format == "xml" || format == "dot") {
        if (!out) {
            if (format == "xml") {
                std::cout << write_xml_string(g);
            } else if (format == "dot") {
                std::cout << write_dot_string(g);
            } else {
                write_text(std::cout, g);
            }
        } else {
            save(g, out);
        }
    } else {
        return usage();
    }
    return 0;
}

int cmd_pipeline_list() {
    std::cout << "pass                     contract     preserves            summary\n";
    for (const Pass* pass : PassRegistry::instance().list()) {
        std::string name = pass->name();
        const std::vector<PassParamSpec> params = pass->params();
        if (!params.empty()) {
            name += "(";
            for (std::size_t i = 0; i < params.size(); ++i) {
                name += (i > 0 ? "," : "") + params[i].name;
                if (params[i].default_value) {
                    name += "=" + std::to_string(*params[i].default_value);
                }
            }
            name += ")";
        }
        name.resize(std::max<std::size_t>(name.size(), 23), ' ');
        // Contracts and preservation sets may be parameter-dependent;
        // the catalogue shows them for the default parameter values.
        PassParams defaults;
        for (const PassParamSpec& param : params) {
            defaults.set(param.name, param.default_value.value_or(param.minimum.value_or(1)));
        }
        std::string contract = period_contract_name(pass->period_contract(defaults));
        contract.resize(11, ' ');
        const Preservation preserved = pass->preserved(defaults);
        std::string kept = preserved.all ? "all" : join(preserved.analyses, ",");
        if (kept.empty()) {
            kept = "-";
        }
        kept.resize(std::max<std::size_t>(kept.size(), 19), ' ');
        std::cout << name << "  " << contract << "  " << kept << "  "
                  << pass->summary() << "\n";
    }
    std::cout << "\nspec grammar: NAME[(ARG,...)] joined by ','; ARG is INT or "
                 "name=INT\nexample: --passes \"selfloops,prune,unfold(2),"
                 "hsdf-reduced\"  (docs/PIPELINE.md)\n";
    return 0;
}

int cmd_pipeline(const std::string& path, const std::string& spec, bool verify_each,
                 bool time_passes, const std::optional<std::string>& dump_after,
                 const std::optional<std::string>& out,
                 const ExecutionBudget& budget) {
    Pipeline pipeline;
    try {
        pipeline = parse_pipeline(spec);
    } catch (const PipelineParseError& e) {
        std::cerr << "pipeline spec error [" << pipeline_error_kind_name(e.kind())
                  << "]: " << e.what() << "\n"
                  << "see: sdfred_cli pipeline --list\n";
        return 2;
    }
    const Graph input = load(path);
    ExecutorOptions options;
    options.budget = budget;
    options.verify_each = verify_each;
    if (dump_after) {
        options.after_pass = [&dump_after](const Graph& graph,
                                           const PassReport& report) {
            const std::string name =
                report.invocation.substr(0, report.invocation.find('('));
            if (name == *dump_after) {
                std::cout << "--- after " << report.invocation << " ---\n";
                write_text(std::cout, graph);
                std::cout << "--- end ---\n";
            }
        };
    }
    if (verify_each) {
        // Beyond the executor's built-in contract/preservation checks, put
        // the intermediate graph of every step through the full differential
        // oracle registry; a failing verdict aborts the pipeline loudly.
        options.verify_hook = [](const Graph& graph, const PassReport& report) {
            for (const Oracle& oracle : oracle_registry()) {
                const Verdict verdict = run_oracle(oracle, graph);
                if (verdict.failed()) {
                    throw PipelineVerificationError(
                        "oracle '" + oracle.id + "' failed after pass '" +
                        report.invocation + "':\n" + verdict.describe());
                }
            }
        };
    }
    const PipelineRun run = PipelineExecutor(std::move(options)).run(pipeline, input);
    std::cout << "pipeline: " << pipeline.to_string() << "\n";
    for (const PassReport& report : run.reports) {
        std::cout << "  " << report.invocation << ": "
                  << (report.changed ? "changed" : "no change");
        for (const auto& [key, value] : report.stats) {
            std::cout << ", " << key << "=" << value;
        }
        std::cout << " -> " << report.actors << " actors, " << report.channels
                  << " channels";
        if (!report.carried.empty()) {
            std::cout << "  [carried: " << join(report.carried, ", ") << "]";
        }
        if (report.kept > 0 || report.refined > 0) {
            std::cout << "  [delta: " << report.kept << " kept, " << report.refined
                      << " refined]";
        }
        if (report.verified) {
            std::cout << "  [verified]";
        }
        if (time_passes) {
            std::cout << "  (" << report.used.wall_ms << " ms";
            if (report.used.steps > 0) {
                std::cout << ", " << report.used.steps << " steps";
            }
            if (report.used.accounted_bytes > 0) {
                std::cout << ", " << report.used.accounted_bytes << " bytes";
            }
            std::cout << ")";
        }
        std::cout << "\n";
    }
    if (time_passes) {
        std::cout << "total: " << run.total.wall_ms << " ms, " << run.total.steps
                  << " steps, " << run.total.accounted_bytes << " accounted bytes\n";
        for (const AnalysisSlotStats& slot : run.graph.analyses()->stats()) {
            if (slot.hits + slot.misses + slot.adopted + slot.kept + slot.refined == 0) {
                continue;
            }
            std::cout << "cache " << slot.analysis << ": " << slot.hits << " hits, "
                      << slot.misses << " misses, " << slot.adopted << " adopted, "
                      << slot.kept << " kept, " << slot.refined << " refined\n";
        }
    }
    std::cout << "final graph: " << run.graph.actor_count() << " actors, "
              << run.graph.channel_count() << " channels\n";
    if (!is_consistent(run.graph)) {
        std::cout << "final graph is inconsistent: no throughput\n";
        return 1;
    }
    const auto throughput = cached_throughput(run.graph);
    switch (throughput->outcome) {
        case ThroughputOutcome::deadlocked:
            std::cout << "throughput: graph deadlocks (0)\n";
            break;
        case ThroughputOutcome::unbounded:
            std::cout << "throughput: unbounded (no constraining cycle)\n";
            break;
        case ThroughputOutcome::finite:
            std::cout << "iteration period: " << throughput->period.to_string()
                      << "\n";
            break;
    }
    if (out) {
        save(run.graph, out);
    }
    return 0;
}

int cmd_lint_list() {
    std::cout << "id      severity  title                        summary\n";
    for (const Rule& rule : lint_rules()) {
        std::string severity = severity_name(rule.severity);
        severity.resize(8, ' ');
        std::string title = rule.title;
        title.resize(27, ' ');
        std::cout << rule.id << "  " << severity << "  " << title << "  "
                  << rule.summary << "\n";
    }
    return 0;
}

int cmd_lint(const std::string& path, const std::string& format,
             const std::vector<std::string>& rules, Severity fail_on) {
    SourceMap locations;
    const Graph graph = load(path, &locations);
    LintOptions options;
    for (const std::string& id : rules) {
        if (find_rule(id) == nullptr) {
            std::cerr << "error: unknown lint rule '" << id
                      << "' (see: sdfred_cli lint --list)\n";
            return 2;
        }
        options.rules.push_back(id);
    }
    const LintReport report = lint_graph(graph, &locations, options);
    if (format == "json") {
        std::cout << render_json(report, path, graph.name());
    } else {
        std::cout << render_text(report, path);
        std::cout << path << ": " << report.count(Severity::error) << " errors, "
                  << report.count(Severity::warning) << " warnings, "
                  << report.count(Severity::note) << " notes\n";
    }
    return report.has_at_least(fail_on) ? 1 : 0;
}

int cmd_fuzz_list() {
    std::cout << "id                 invariant\n";
    for (const Oracle& oracle : oracle_registry()) {
        std::string id = oracle.id;
        id.resize(17, ' ');
        std::cout << id << "  " << oracle.invariant << "\n";
        std::cout << std::string(19, ' ') << oracle.summary << "\n";
    }
    return 0;
}

void print_fuzz_report(const FuzzReport& report) {
    std::cout << report.iterations << " iterations, " << report.checks
              << " oracle checks: " << report.passes << " pass, " << report.skips
              << " skip, " << report.rejects << " reject, " << report.failures.size()
              << " fail\n";
    for (const auto& [id, tally] : report.by_oracle) {
        std::string padded = id;
        padded.resize(17, ' ');
        std::cout << "  " << padded << "  " << tally[0] << " pass, " << tally[1]
                  << " skip, " << tally[2] << " reject, " << tally[3] << " fail\n";
    }
}

int cmd_fuzz(const FuzzOptions& options) {
    // A misspelt oracle id is a bad invocation, like --rules SDF999.
    for (const std::string& id : options.oracles) {
        if (find_oracle(id) == nullptr) {
            std::cerr << "error: unknown oracle '" << id
                      << "' (see: sdfred_cli fuzz --list)\n";
            return 2;
        }
    }
    const FuzzReport report = run_fuzz(options);
    print_fuzz_report(report);
    if (!report.clean()) {
        std::cout << "repro artifacts under " << options.failures_dir << "/\n";
        return 1;
    }
    return 0;
}

int cmd_fuzz_self_test(FuzzOptions options) {
    const SelfTestReport self_test = run_fuzz_self_test(std::move(options));
    print_fuzz_report(self_test.report);
    std::cout << "injected bug found: " << (self_test.bug_found ? "yes" : "NO") << "\n";
    if (self_test.bug_found) {
        std::cout << "shrunk repro: " << self_test.shrunk_actors << " actors, minimal "
                  << (self_test.shrunk_minimal ? "yes" : "NO") << "\n";
    }
    std::cout << "self-test " << (self_test.ok() ? "passed" : "FAILED") << "\n";
    return self_test.ok() ? 0 : 1;
}

/// `serve`: the concurrent analysis daemon (docs/SERVE.md).  Budget flags
/// become the default per-request budget; requests may override it.
struct ServeCliOptions {
    std::optional<std::string> socket;       ///< --socket PATH (Unix)
    std::optional<unsigned short> tcp_port;  ///< --tcp PORT (127.0.0.1)
    std::size_t threads = 4;
    std::size_t cache_entries = 64;
    std::size_t max_queue = 64;
    bool timings = false;
    std::string cache_dir;                   ///< --cache-dir DIR (persistent)
    std::optional<std::uint64_t> deadline_ms;  ///< --request-deadline-ms N
    std::optional<std::size_t> max_line_bytes;  ///< --max-line-bytes N
};

int cmd_serve(const ServeCliOptions& options, const GovernOptions& govern,
              bool governed) {
    // Daemon-grade signal discipline before the first connection: SIGTERM/
    // SIGINT request a graceful drain (stop accepting, finish in-flight,
    // fsync the cache index), SIGPIPE becomes a per-connection EPIPE.
    install_shutdown_signal_handlers();
    ignore_sigpipe();
    serve::ServeOptions core_options;
    core_options.cache_graphs = options.cache_entries;
    if (governed) {
        core_options.default_budget = govern.budget;
    }
    core_options.timings = options.timings;
    core_options.cache_dir = options.cache_dir;
    if (options.deadline_ms) {
        core_options.request_deadline =
            std::chrono::milliseconds(*options.deadline_ms);
    }
    if (options.max_line_bytes) {
        core_options.max_line_bytes = *options.max_line_bytes;
    }
    serve::ServeCore core(core_options);
    serve::ServerOptions server_options;
    server_options.threads = options.threads;
    server_options.max_queue = options.max_queue;
    serve::Server server(core, server_options);
    if (options.socket) {
        return server.run_unix(*options.socket);
    }
    if (options.tcp_port) {
        return server.run_tcp(*options.tcp_port);
    }
    return server.run_stdio(std::cin, std::cout);
}

/// The --lint guard: lints `path` before an analysis command runs and
/// reports whether errors block it.
bool lint_guard_passes(const std::string& path) {
    SourceMap locations;
    const Graph graph = load(path, &locations);
    const LintReport report = lint_graph(graph, &locations);
    if (!report.has_at_least(Severity::error)) {
        return true;
    }
    std::cerr << render_text(report, path);
    std::cerr << "error: model has lint errors; aborting (rerun without --lint "
                 "to force, or fix the model)\n";
    return false;
}

}  // namespace

int main(int argc, char** argv) {
    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        return usage();
    }
    if (args[0] == "--version" || args[0] == "version") {
        std::cout << "sdfred_cli " << SDFRED_VERSION << "\n";
        return 0;
    }
    try {
        // SDFRED_FAULT_INJECT=alloc:N|step:N|deadline:N arms deterministic
        // one-shot faults inside governed code (robustness testing).
        install_fault_injection_from_env();
        // Contribute the serve-route and crash-restart oracles so `fuzz`
        // sweeps the daemon stack — including its crash-safe persistence —
        // alongside the built-in battery (src/serve/oracle.hpp).
        serve::register_serve_oracle();
        serve::register_crash_restart_oracle();
        // Resolve the SDFRED_ISA kernel-dispatch override up front: a typo'd
        // tier must fail fast as a bad invocation, not silently no-op on
        // invocations that never reach a SIMD kernel.
        try {
            active_isa_tier();
        } catch (const Error& e) {
            std::cerr << "error: " << e.what() << "\n";
            return 2;
        }
        const std::string& command = args[0];
        // Gather positional arguments and options.
        std::optional<std::string> out;
        std::optional<std::string> format;
        std::optional<std::string> lint_format;
        std::vector<std::string> lint_rule_ids;
        Severity fail_on = Severity::error;
        bool guard = false;
        bool list_rules = false;
        bool self_test = false;
        GovernOptions govern_options;
        bool governed = false;  // any budget flag seen
        FuzzOptions fuzz_options;
        fuzz_options.log = &std::cout;
        std::optional<std::string> passes_spec;
        std::optional<std::string> dump_after;
        bool time_passes = false;
        bool verify_each = false;
        bool absint_json = false;
        bool certify = false;
        ServeCliOptions serve_options;
        std::vector<std::string> positional;
        for (std::size_t i = 1; i < args.size(); ++i) {
            if (args[i] == "-o" && i + 1 < args.size()) {
                out = args[++i];
            } else if (args[i] == "--to" && i + 1 < args.size()) {
                format = args[++i];
            } else if (args[i] == "--iterations" && i + 1 < args.size()) {
                const auto n = parse_int(args[++i]);
                if (!n || *n < 0) {
                    return usage();
                }
                fuzz_options.iterations = static_cast<std::uint64_t>(*n);
            } else if (args[i] == "--seed" && i + 1 < args.size()) {
                const auto n = parse_int(args[++i]);
                if (!n || *n < 0) {
                    return usage();
                }
                fuzz_options.seed = static_cast<std::uint64_t>(*n);
            } else if (args[i] == "--oracles" && i + 1 < args.size()) {
                for (const std::string& id : split(args[++i], ',')) {
                    if (!id.empty()) {
                        fuzz_options.oracles.push_back(id);
                    }
                }
            } else if (args[i] == "--corpus" && i + 1 < args.size()) {
                fuzz_options.corpus_dir = args[++i];
            } else if (args[i] == "--failures" && i + 1 < args.size()) {
                fuzz_options.failures_dir = args[++i];
            } else if (args[i] == "--max-mutations" && i + 1 < args.size()) {
                const auto n = parse_int(args[++i]);
                if (!n || *n < 0) {
                    return usage();
                }
                fuzz_options.max_mutations = static_cast<int>(*n);
            } else if (args[i] == "--timeout-ms" && i + 1 < args.size()) {
                const auto n = parse_int(args[++i]);
                if (!n || *n <= 0) {
                    return usage();
                }
                govern_options.budget.deadline = std::chrono::milliseconds(*n);
                governed = true;
            } else if (args[i] == "--max-steps" && i + 1 < args.size()) {
                const auto n = parse_int(args[++i]);
                if (!n || *n <= 0) {
                    return usage();
                }
                govern_options.budget.max_steps = static_cast<std::uint64_t>(*n);
                governed = true;
            } else if (args[i] == "--max-memory-mb" && i + 1 < args.size()) {
                const auto n = parse_int(args[++i]);
                if (!n || *n <= 0) {
                    return usage();
                }
                govern_options.budget.max_bytes =
                    static_cast<std::uint64_t>(*n) * 1024 * 1024;
                governed = true;
            } else if (args[i] == "--degrade" && i + 1 < args.size()) {
                const std::string& mode = args[++i];
                if (mode == "never") {
                    govern_options.degrade = DegradeMode::never;
                } else if (mode == "auto") {
                    govern_options.degrade = DegradeMode::auto_;
                } else {
                    return usage();
                }
                governed = true;
            } else if (args[i] == "--passes" && i + 1 < args.size()) {
                passes_spec = args[++i];
            } else if (args[i].rfind("--passes=", 0) == 0) {
                passes_spec = args[i].substr(9);
            } else if (args[i] == "--dump-after" && i + 1 < args.size()) {
                dump_after = args[++i];
            } else if (args[i].rfind("--dump-after=", 0) == 0) {
                dump_after = args[i].substr(13);
            } else if (args[i] == "--time-passes") {
                time_passes = true;
            } else if (args[i] == "--verify-each") {
                verify_each = true;
            } else if (args[i] == "--json") {
                absint_json = true;
            } else if (args[i] == "--certify") {
                certify = true;
            } else if (args[i] == "--no-shrink") {
                fuzz_options.shrink = false;
            } else if (args[i] == "--self-test") {
                self_test = true;
            } else if (args[i] == "--format" && i + 1 < args.size()) {
                // For lint this picks the report format; for convert it is
                // an alias of --to (a format of the output graph).
                lint_format = args[++i];
                if (command == "lint" && *lint_format != "text" &&
                    *lint_format != "json") {
                    return usage();
                }
            } else if (args[i] == "--rules" && i + 1 < args.size()) {
                for (const std::string& id : split(args[++i], ',')) {
                    if (!id.empty()) {
                        lint_rule_ids.push_back(id);
                    }
                }
            } else if (args[i] == "--fail-on" && i + 1 < args.size()) {
                const auto severity = parse_severity(args[++i]);
                if (!severity) {
                    return usage();
                }
                fail_on = *severity;
            } else if (args[i] == "--lint") {
                guard = true;
            } else if (args[i] == "--list") {
                list_rules = true;
            } else if (args[i] == "--stdio") {
                serve_options.socket.reset();
                serve_options.tcp_port.reset();
            } else if (args[i] == "--socket" && i + 1 < args.size()) {
                serve_options.socket = args[++i];
            } else if (args[i] == "--tcp" && i + 1 < args.size()) {
                const auto n = parse_int(args[++i]);
                if (!n || *n <= 0 || *n > 65535) {
                    return usage();
                }
                serve_options.tcp_port = static_cast<unsigned short>(*n);
            } else if (args[i] == "--threads" && i + 1 < args.size()) {
                const auto n = parse_int(args[++i]);
                if (!n || *n <= 0) {
                    return usage();
                }
                serve_options.threads = static_cast<std::size_t>(*n);
            } else if (args[i] == "--cache-entries" && i + 1 < args.size()) {
                const auto n = parse_int(args[++i]);
                if (!n || *n <= 0) {
                    return usage();
                }
                serve_options.cache_entries = static_cast<std::size_t>(*n);
            } else if (args[i] == "--max-queue" && i + 1 < args.size()) {
                const auto n = parse_int(args[++i]);
                if (!n || *n <= 0) {
                    return usage();
                }
                serve_options.max_queue = static_cast<std::size_t>(*n);
            } else if (args[i] == "--timings") {
                serve_options.timings = true;
            } else if (args[i] == "--cache-dir" && i + 1 < args.size()) {
                serve_options.cache_dir = args[++i];
            } else if (args[i] == "--request-deadline-ms" && i + 1 < args.size()) {
                const auto n = parse_int(args[++i]);
                if (!n || *n <= 0) {
                    return usage();
                }
                serve_options.deadline_ms = static_cast<std::uint64_t>(*n);
            } else if (args[i] == "--max-line-bytes" && i + 1 < args.size()) {
                const auto n = parse_int(args[++i]);
                if (!n || *n <= 0) {
                    return usage();
                }
                serve_options.max_line_bytes = static_cast<std::size_t>(*n);
            } else {
                positional.push_back(args[i]);
            }
        }
        if (command == "serve" && positional.empty()) {
            return cmd_serve(serve_options, govern_options, governed);
        }
        if (command == "lint" && list_rules && positional.empty()) {
            return cmd_lint_list();
        }
        if (command == "fuzz" && positional.empty()) {
            if (list_rules) {
                return cmd_fuzz_list();
            }
            if (governed) {
                // Each oracle run is governed; a tripped budget surfaces as
                // a typed reject verdict, not a lost fuzzing campaign.
                fuzz_options.limits.budget = govern_options.budget;
            }
            return self_test ? cmd_fuzz_self_test(std::move(fuzz_options))
                             : cmd_fuzz(fuzz_options);
        }
        if (command == "lint" && positional.size() == 1) {
            return cmd_lint(positional[0], lint_format.value_or("text"),
                            lint_rule_ids, fail_on);
        }
        // The --lint guard: validate the model before the requested
        // analysis touches it.
        if (guard && positional.size() == 1 && command != "csdf-analyze" &&
            command != "csdf-reduce" && !lint_guard_passes(positional[0])) {
            return 1;
        }
        if (command == "info" && positional.size() == 1) {
            return cmd_info(load(positional[0]));
        }
        if (command == "analyze" && positional.size() == 1) {
            const Graph g = load(positional[0]);
            if (certify || absint_json) {
                return cmd_analyze_absint(g, absint_json, certify,
                                          govern_options.budget);
            }
            return governed ? cmd_analyze_governed(g, govern_options) : cmd_analyze(g);
        }
        if (command == "deadlock" && positional.size() == 1) {
            return cmd_deadlock(load(positional[0]));
        }
        if (command == "schedule" && positional.size() == 1) {
            return cmd_schedule(load(positional[0]));
        }
        if (command == "pipeline" && list_rules && positional.empty()) {
            return cmd_pipeline_list();
        }
        if (command == "pipeline" && positional.size() == 1) {
            if (!passes_spec) {
                std::cerr << "error: pipeline requires --passes \"SPEC\", e.g. "
                             "--passes \"selfloops,prune,hsdf-reduced\"\n"
                             "see: sdfred_cli pipeline --list\n";
                return 2;
            }
            // Conversions have no bound to degrade to: the budget either
            // fits or the pipeline aborts with exit code 4.
            return cmd_pipeline(positional[0], *passes_spec, verify_each, time_passes,
                                dump_after, out, govern_options.budget);
        }
        if (command == "convert" && positional.size() == 1) {
            if (!format) {
                // --format doubles as the lint report format, so it lands in
                // lint_format; accept it as the conversion target here.
                format = lint_format;
            }
            if (!format) {
                std::cerr << "error: convert requires an output format\n"
                             "  add --to FMT (alias: --format FMT) with FMT one of:\n"
                             "  hsdf | reduced-hsdf | abstract | abstract-sdf | "
                             "text | xml | dot\n";
                return 2;
            }
            return cmd_convert(load(positional[0]), *format, out,
                               govern_options.budget);
        }
        if (command == "pareto" && positional.size() == 1) {
            return cmd_pareto(load(positional[0]));
        }
        if (command == "sensitivity" && positional.size() == 1) {
            return cmd_sensitivity(load(positional[0]));
        }
        if (command == "storage" && positional.size() == 1) {
            return cmd_storage(load(positional[0]));
        }
        if (command == "csdf-analyze" && positional.size() == 1) {
            return cmd_csdf_analyze(read_csdf_xml_file(positional[0]));
        }
        if (command == "csdf-reduce" && positional.size() == 1) {
            save(csdf_to_reduced_hsdf(read_csdf_xml_file(positional[0])), out);
            return 0;
        }
        if (command == "unfold" && positional.size() == 2) {
            const auto n = parse_int(positional[0]);
            if (!n || *n <= 0) {
                return usage();
            }
            if (guard && !lint_guard_passes(positional[1])) {
                return 1;
            }
            // Unfolding is the unfold(n) pass: ride the executor so budget
            // flags govern it like every other transformation.
            ExecutorOptions options;
            options.budget = govern_options.budget;
            save(PipelineExecutor(std::move(options))
                     .run(parse_pipeline("unfold(" + std::to_string(*n) + ")"),
                          load(positional[1]))
                     .graph,
                 out);
            return 0;
        }
        return usage();
    } catch (const ParseError& e) {
        // Bad input file: distinct from bad invocation (2) and failed
        // analysis (1) so scripts and CI can triage without text matching.
        std::cerr << "parse error: " << e.what() << "\n";
        return 3;
    } catch (const BudgetExceeded& e) {
        std::cerr << "aborted by resource budget (" << budget_cause_name(e.cause())
                  << "): " << e.what() << "\n";
        return 4;
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    } catch (const std::bad_alloc&) {
        std::cerr << "aborted by resource budget (memory): allocation failed\n";
        return 4;
    }
}
