// Unit tests for sdf/repetition.hpp: balance equations, consistency,
// iteration length.
#include "sdf/repetition.hpp"

#include <gtest/gtest.h>

#include "base/errors.hpp"
#include "gen/benchmarks.hpp"

namespace sdf {
namespace {

TEST(Repetition, HomogeneousGraphIsAllOnes) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 1);
    EXPECT_EQ(repetition_vector(g), (std::vector<Int>{1, 1}));
    EXPECT_EQ(iteration_length(g), 2);
}

TEST(Repetition, SimpleRateChange) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    g.add_channel(a, b, 2, 3, 0);
    EXPECT_EQ(repetition_vector(g), (std::vector<Int>{3, 2}));
}

TEST(Repetition, PaperFigure3StyleGraph) {
    // Two firings of the left actor feed one of the right (p=1, c=2).
    Graph g;
    const ActorId left = g.add_actor("left", 3);
    const ActorId right = g.add_actor("right", 1);
    g.add_channel(left, right, 1, 2, 0);
    g.add_channel(right, left, 2, 1, 2);
    EXPECT_EQ(repetition_vector(g), (std::vector<Int>{2, 1}));
    EXPECT_EQ(iteration_length(g), 3);  // "An iteration consists of three firings"
}

TEST(Repetition, ScalesToSmallestIntegerSolution) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    const ActorId c = g.add_actor("c");
    g.add_channel(a, b, 4, 6, 0);   // 2 q(a) = 3 q(b)
    g.add_channel(b, c, 10, 4, 0);  // 5 q(b) = 2 q(c)
    EXPECT_EQ(repetition_vector(g), (std::vector<Int>{3, 2, 5}));
}

TEST(Repetition, InconsistentGraphThrows) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    g.add_channel(a, b, 1, 1, 0);
    g.add_channel(a, b, 1, 2, 0);  // contradicts the first channel
    EXPECT_THROW(repetition_vector(g), InconsistentGraphError);
    EXPECT_FALSE(is_consistent(g));
}

TEST(Repetition, InconsistentSelfLoopDetected) {
    Graph g;
    const ActorId a = g.add_actor("a");
    g.add_channel(a, a, 2, 1, 5);  // q(a)*2 == q(a)*1 has no positive solution
    EXPECT_THROW(repetition_vector(g), InconsistentGraphError);
}

TEST(Repetition, InconsistentCycleDetected) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    const ActorId c = g.add_actor("c");
    g.add_channel(a, b, 2, 1, 0);
    g.add_channel(b, c, 2, 1, 0);
    g.add_channel(c, a, 2, 1, 0);  // rates multiply to 8 != 1 around the cycle
    EXPECT_FALSE(is_consistent(g));
}

TEST(Repetition, ComponentsNormalisedIndependently) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    const ActorId c = g.add_actor("c");
    const ActorId d = g.add_actor("d");
    g.add_channel(a, b, 2, 3, 0);  // component 1: q = (3, 2)
    g.add_channel(c, d, 1, 1, 0);  // component 2: q = (1, 1)
    EXPECT_EQ(repetition_vector(g), (std::vector<Int>{3, 2, 1, 1}));
}

TEST(Repetition, EmptyGraphRejected) {
    Graph g;
    EXPECT_THROW(repetition_vector(g), InvalidGraphError);
}

TEST(Repetition, ActorWithoutChannelsHasEntryOne) {
    Graph g;
    g.add_actor("lonely");
    EXPECT_EQ(repetition_vector(g), (std::vector<Int>{1}));
}

// The reconstructed Table 1 benchmarks must reproduce the paper's
// traditional-conversion sizes exactly (they equal the iteration length).
TEST(Repetition, Table1IterationLengths) {
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        EXPECT_EQ(iteration_length(bench.graph), bench.paper_traditional)
            << bench.label;
    }
}

TEST(Repetition, H263DecoderVector) {
    const Graph g = h263_decoder();
    EXPECT_EQ(repetition_vector(g), (std::vector<Int>{1, 594, 594, 1}));
}

TEST(Repetition, SamplerateVector) {
    const Graph g = samplerate_converter();
    EXPECT_EQ(repetition_vector(g), (std::vector<Int>{147, 147, 98, 28, 32, 160}));
}

}  // namespace
}  // namespace sdf
