// Unit + property tests for mapping/bind.hpp — multiprocessor binding.
#include "mapping/bind.hpp"

#include <gtest/gtest.h>

#include <random>

#include "analysis/liveness.hpp"
#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "gen/random_sdf.hpp"
#include "gen/regular.hpp"
#include "transform/compare.hpp"

namespace sdf {
namespace {

Graph pipeline3() {
    Graph g("p3");
    const ActorId a = g.add_actor("a", 2);
    const ActorId b = g.add_actor("b", 3);
    const ActorId c = g.add_actor("c", 4);
    g.add_channel(a, b, 0);
    g.add_channel(b, c, 0);
    g.add_channel(c, a, 3);  // three frames in flight
    return g;
}

Mapping uniform_mapping(const Graph& g, std::size_t processors,
                        const std::vector<std::size_t>& assignment) {
    Mapping m;
    m.processor_count = processors;
    m.processor_of = assignment;
    (void)g;
    return m;
}

TEST(Mapping, ValidationCatchesBadMappings) {
    const Graph g = pipeline3();
    Mapping m;
    m.processor_count = 0;
    EXPECT_THROW(validate_mapping(g, m), InvalidGraphError);
    m.processor_count = 2;
    m.processor_of = {0, 1};  // too short
    EXPECT_THROW(validate_mapping(g, m), InvalidGraphError);
    m.processor_of = {0, 1, 2};  // out of range
    EXPECT_THROW(validate_mapping(g, m), InvalidGraphError);
    m.processor_of = {0, 1, 1};
    EXPECT_NO_THROW(validate_mapping(g, m));
}

TEST(Mapping, SingleProcessorSerialisesEverything) {
    const Graph g = pipeline3();
    const Graph bound = bind(g, uniform_mapping(g, 1, {0, 0, 0}));
    EXPECT_TRUE(is_live(bound));
    const ThroughputResult t = throughput_symbolic(bound);
    ASSERT_TRUE(t.is_finite());
    EXPECT_EQ(t.period, Rational(9));  // 2+3+4 on one processor
}

TEST(Mapping, DedicatedProcessorsKeepThePipelineRate) {
    const Graph g = pipeline3();
    const Graph bound = bind(g, uniform_mapping(g, 3, {0, 1, 2}));
    const ThroughputResult t = throughput_symbolic(bound);
    ASSERT_TRUE(t.is_finite());
    // Each actor on its own (non-pipelined) processor: the bottleneck actor
    // sets the rate.
    EXPECT_EQ(t.period, Rational(4));
}

TEST(Mapping, TwoProcessorSplit) {
    const Graph g = pipeline3();
    // {a, c} share processor 0, b alone.  The availability token of
    // processor 0 (c -> a) closes a cycle through the data path a -> b ->
    // c: iteration i+1's a waits for c_i, which waits for b_i, which waits
    // for a_i — the split is fully serialised at 2+3+4 = 9 because b sits
    // between the two co-located actors.
    const Graph bound = bind(g, uniform_mapping(g, 2, {0, 1, 0}));
    EXPECT_EQ(throughput_symbolic(bound).period, Rational(9));
    // Co-locating the *adjacent* actors a and b instead pipelines: cycles
    // are the processor ring (2+3) and c's own loop (4), plus the data
    // ring at (2+3+4)/3; period max(5, 4) = 5.
    const Graph adjacent = bind(g, uniform_mapping(g, 2, {0, 0, 1}));
    EXPECT_EQ(throughput_symbolic(adjacent).period, Rational(5));
}

TEST(Mapping, BindAddsTheExpectedChannels) {
    const Graph g = pipeline3();
    const Graph bound = bind(g, uniform_mapping(g, 2, {0, 1, 0}));
    // Processor 0 holds two actors: one chain channel + one availability
    // token; processor 1 holds one actor: a self availability loop.
    EXPECT_EQ(bound.channel_count(), g.channel_count() + 3);
    // Binding never removes anything: the identity mapping satisfies
    // Proposition 1 with the original as the fast graph.
    std::vector<ActorId> identity{0, 1, 2};
    std::string why;
    EXPECT_TRUE(covers_conservatively(g, bound, identity, &why)) << why;
}

TEST(Mapping, ExplicitOrderValidation) {
    const Graph g = pipeline3();
    const Mapping m = uniform_mapping(g, 2, {0, 1, 0});
    StaticOrder order;
    order.order = {{0}, {1}};  // actor 2 missing
    EXPECT_THROW(bind(g, m, order), InvalidGraphError);
    order.order = {{0, 2}, {1}, {}};  // processor count mismatch
    EXPECT_THROW(bind(g, m, order), InvalidGraphError);
    order.order = {{0, 1}, {2}};  // actor 1 on the wrong processor
    EXPECT_THROW(bind(g, m, order), InvalidGraphError);
    order.order = {{0, 0, 2}, {1}};  // duplicated
    EXPECT_THROW(bind(g, m, order), InvalidGraphError);
    order.order = {{2, 0}, {1}};  // valid (c before a)
    EXPECT_NO_THROW(bind(g, m, order));
}

TEST(Mapping, BadStaticOrderCanDeadlockGoodDefaultCannot) {
    // a -> b with no tokens, both on one processor: order (b, a) deadlocks.
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 1);
    const Mapping m = uniform_mapping(g, 1, {0, 0});
    StaticOrder bad;
    bad.order = {{b, a}};
    EXPECT_FALSE(is_live(bind(g, m, bad)));
    EXPECT_TRUE(is_live(bind(g, m)));  // default order from a PASS
}

TEST(Mapping, RequiresHomogeneousGraph) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 2, 1, 0);
    EXPECT_THROW(bind(g, uniform_mapping(g, 1, {0, 0})), InvalidGraphError);
}

TEST(Mapping, BalanceLoadDistributesByTime) {
    const Graph g = figure1_graph(6);
    const Mapping m = balance_load(g, 3);
    EXPECT_EQ(m.processor_count, 3u);
    std::vector<Int> load(3, 0);
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        load[m.processor_of[a]] += g.actor(a).execution_time;
    }
    const Int total = load[0] + load[1] + load[2];
    for (const Int l : load) {
        // LPT keeps every processor within [avg - max_task, avg + max_task].
        EXPECT_GE(l, total / 3 - 5);
        EXPECT_LE(l, total / 3 + 5);
    }
    EXPECT_THROW(balance_load(g, 0), InvalidGraphError);
}

class MappingProperty : public ::testing::TestWithParam<int> {};

TEST_P(MappingProperty, BindingIsConservativeAndLive) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    const Graph g = random_hsdf(rng);
    const ThroughputResult unmapped = throughput_symbolic(g);
    std::uniform_int_distribution<std::size_t> pick(1, 3);
    const std::size_t processors = pick(rng);
    const Graph bound = bind(g, balance_load(g, processors));
    // Liveness is preserved by PASS-projected orders.
    EXPECT_TRUE(is_live(bound));
    const ThroughputResult mapped = throughput_symbolic(bound);
    // Proposition 1: more channels, never faster.
    if (unmapped.is_finite() && mapped.is_finite()) {
        EXPECT_GE(mapped.period, unmapped.period);
    }
    // With every actor chained onto a processor ring, the period is at
    // least the heaviest processor load.
    if (mapped.is_finite()) {
        std::vector<Int> load(processors, 0);
        const Mapping m = balance_load(g, processors);
        for (ActorId a = 0; a < g.actor_count(); ++a) {
            load[m.processor_of[a]] += g.actor(a).execution_time;
        }
        const Int heaviest = *std::max_element(load.begin(), load.end());
        EXPECT_GE(mapped.period, Rational(heaviest));
    }
}

TEST_P(MappingProperty, MoreProcessorsNeverHurtWithSameOrders) {
    // Splitting one processor's suffix onto a fresh processor relaxes
    // constraints: period must not increase when the order prefixes stay.
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 300);
    const Graph g = random_hsdf(rng);
    const Mapping everything_on_one = balance_load(g, 1);
    const StaticOrder order1 = default_static_order(g, everything_on_one);
    if (order1.order[0].size() < 2) {
        return;
    }
    const ThroughputResult one = throughput_symbolic(bind(g, everything_on_one, order1));
    // Split: first half stays on 0, second half moves to 1, keeping order.
    Mapping two;
    two.processor_count = 2;
    two.processor_of.assign(g.actor_count(), 0);
    StaticOrder order2;
    order2.order.resize(2);
    const std::size_t half = order1.order[0].size() / 2;
    for (std::size_t i = 0; i < order1.order[0].size(); ++i) {
        const ActorId a = order1.order[0][i];
        const std::size_t p = i < half ? 0 : 1;
        two.processor_of[a] = p;
        order2.order[p].push_back(a);
    }
    const ThroughputResult split = throughput_symbolic(bind(g, two, order2));
    if (one.is_finite() && split.is_finite()) {
        EXPECT_LE(split.period, one.period);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MappingProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace sdf
