// Tests for the mutation-delta protocol: MutationLog recording, per-slot
// kept/refined/dropped behaviour under edits, adopt/adopt_all/adopt_untimed
// edge cases, the warm-state throughput refinement (analysis/incremental.hpp)
// and the certificate layer behind it (maxplus/mcm_certificate.hpp).  The
// fuzz oracle `incremental-route` covers random edit scripts; these are the
// deterministic corner cases.
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/incremental.hpp"
#include "analysis/throughput.hpp"
#include "gen/structured.hpp"
#include "maxplus/mcm.hpp"
#include "maxplus/mcm_certificate.hpp"
#include "pass/executor.hpp"
#include "pass/pipeline.hpp"
#include "sdf/analysis_manager.hpp"
#include "sdf/graph.hpp"
#include "sdf/repetition.hpp"
#include "sdf/schedule.hpp"

namespace sdf {
namespace {

/// a(1) -> b(2) -> c(3) -> d(4) -> a, two tokens closing the ring.
Graph ring4() {
    Graph g("ring4");
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 2);
    const ActorId c = g.add_actor("c", 3);
    const ActorId d = g.add_actor("d", 4);
    g.add_channel(a, b, 0);
    g.add_channel(b, c, 0);
    g.add_channel(c, d, 0);
    g.add_channel(d, a, 2);
    return g;
}

/// A structurally identical rebuild with a FRESH manager: the from-scratch
/// reference every refinement result is compared against.
Graph rebuild_cold(const Graph& g) {
    Graph cold(g.name());
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        cold.add_actor(g.actor(a).name, g.actor(a).execution_time);
    }
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        const auto& ch = g.channel(c);
        cold.add_channel(ch.src, ch.dst, ch.production, ch.consumption,
                         ch.initial_tokens);
    }
    return cold;
}

// ---------------------------------------------------------------- mutation log

TEST(MutationLog, MutatorsRecordTypedEvents) {
    Graph g = ring4();
    EXPECT_EQ(g.mutations().size(), 8u);  // 4 add_actor + 4 add_channel
    g.set_execution_time(1, 7);
    g.set_initial_tokens(3, 5);
    g.set_rates(0, 2, 3);

    const auto& events = g.mutations().events();
    ASSERT_EQ(events.size(), 11u);

    const MutationEvent& time = events[8];
    EXPECT_EQ(time.kind, MutationKind::execution_time);
    EXPECT_EQ(time.id, 1u);
    EXPECT_EQ(time.old_a, 2);
    EXPECT_EQ(time.new_a, 7);

    const MutationEvent& tokens = events[9];
    EXPECT_EQ(tokens.kind, MutationKind::initial_tokens);
    EXPECT_EQ(tokens.id, 3u);
    EXPECT_EQ(tokens.old_a, 2);
    EXPECT_EQ(tokens.new_a, 5);

    const MutationEvent& rates = events[10];
    EXPECT_EQ(rates.kind, MutationKind::rates);
    EXPECT_EQ(rates.id, 0u);
    EXPECT_EQ(rates.old_a, 1);
    EXPECT_EQ(rates.new_a, 2);
    EXPECT_EQ(rates.old_b, 1);
    EXPECT_EQ(rates.new_b, 3);
}

TEST(MutationLog, NoOpEditsRecordNothingAndKeepTheManager) {
    Graph g = ring4();
    repetition_vector(g);
    const auto manager = g.analyses();
    const std::size_t events = g.mutations().size();

    g.set_execution_time(0, g.actor(0).execution_time);
    g.set_initial_tokens(3, g.channel(3).initial_tokens);
    g.set_rates(0, g.channel(0).production, g.channel(0).consumption);

    // Nothing changed: same manager pointer, same cached results, no events.
    EXPECT_EQ(g.analyses(), manager);
    EXPECT_EQ(g.mutations().size(), events);
    EXPECT_TRUE(g.analyses()->is_cached<RepetitionVectorAnalysis>());
}

TEST(MutationLog, PredicatesClassifyEventBatches) {
    MutationLog log;
    MutationEvent time;
    time.kind = MutationKind::execution_time;
    log.push(time);
    EXPECT_TRUE(log.timing_only());
    EXPECT_TRUE(log.timing_or_tokens_only());
    EXPECT_TRUE(log.structure_preserving());

    MutationEvent tokens;
    tokens.kind = MutationKind::initial_tokens;
    tokens.old_a = 1;
    tokens.new_a = 3;
    log.push(tokens);
    EXPECT_FALSE(log.timing_only());
    EXPECT_TRUE(log.timing_or_tokens_only());
    EXPECT_TRUE(log.tokens_monotone(true));
    EXPECT_FALSE(log.tokens_monotone(false));

    MutationEvent added;
    added.kind = MutationKind::actor_added;
    log.push(added);
    EXPECT_FALSE(log.structure_preserving());
    EXPECT_TRUE(log.has(MutationKind::actor_added));
}

// ------------------------------------------------------ per-edit-kind refinement

TEST(Refinement, TimingEditKeepsUntimedSlotsByPointer) {
    Graph g = ring4();
    const auto reps = g.analyses()->get<RepetitionVectorAnalysis>(g);
    const auto sched = g.analyses()->get<SequentialScheduleAnalysis>(g);
    const auto live = g.analyses()->get<LivenessAnalysis>(g);
    const auto manager = g.analyses();

    Graph copy = g;
    EXPECT_EQ(copy.analyses(), manager);  // copies share until mutation
    copy.set_execution_time(2, 9);
    EXPECT_NE(copy.analyses(), manager);  // mutation swapped in a fresh one

    // A pure timing edit cannot move any untimed result: the new manager
    // KEEPS the very same shared objects, no recomputation.
    EXPECT_EQ(copy.analyses()->cached<RepetitionVectorAnalysis>(), reps);
    EXPECT_EQ(copy.analyses()->cached<SequentialScheduleAnalysis>(), sched);
    EXPECT_EQ(copy.analyses()->cached<LivenessAnalysis>(), live);
    // The original graph still serves its untouched manager.
    EXPECT_EQ(g.analyses(), manager);
    EXPECT_EQ(g.actor(2).execution_time, 3);
}

TEST(Refinement, TimingEditRefinesThroughputBitExact) {
    Graph g = ring4();
    const auto warm = warm_throughput(g);
    cached_throughput(g);  // prime the plain slot so phase 2 has one to refine
    ASSERT_TRUE(warm->result.is_finite());
    ASSERT_NE(warm->state, nullptr);  // small graph: warm state exists

    Graph copy = g;
    copy.set_execution_time(3, 11);  // d: 4 -> 11

    // The edit was absorbed without a from-scratch solve...
    const auto refined = copy.analyses()->cached<IncrementalThroughputAnalysis>();
    ASSERT_NE(refined, nullptr);
    EXPECT_EQ(refined->refines, warm->refines + 1);
    // ...and phase 2 forwarded the answer into the plain throughput slot.
    const auto forwarded = copy.analyses()->cached<ThroughputAnalysis>();
    ASSERT_NE(forwarded, nullptr);

    // Bit-exact against a from-scratch solve on a cold rebuild.
    const ThroughputResult cold = throughput_symbolic(rebuild_cold(copy));
    EXPECT_EQ(refined->result.outcome, cold.outcome);
    EXPECT_EQ(refined->result.period, cold.period);
    EXPECT_EQ(refined->result.per_actor, cold.per_actor);
    EXPECT_EQ(forwarded->period, cold.period);
}

TEST(Refinement, EditChainStaysExactAndCountsRefines) {
    Graph g = fork_join_graph(8, 5, 2);
    const auto warm = warm_throughput(g);
    ASSERT_TRUE(warm->result.is_finite());
    ASSERT_NE(warm->state, nullptr);

    Graph edited = g;
    const std::vector<std::pair<ActorId, Int>> edits = {
        {1, 4}, {2, 9}, {1, 5}, {3, 1}, {0, 2}};
    for (const auto& [actor, time] : edits) {
        edited.set_execution_time(actor, time);
        const auto inc = edited.analyses()->cached<IncrementalThroughputAnalysis>();
        ASSERT_NE(inc, nullptr);
        const ThroughputResult cold = throughput_symbolic(rebuild_cold(edited));
        EXPECT_EQ(inc->result.period, cold.period);
        EXPECT_EQ(inc->result.per_actor, cold.per_actor);
    }
    const auto final_state = edited.analyses()->cached<IncrementalThroughputAnalysis>();
    EXPECT_EQ(final_state->refines, warm->refines + edits.size());
}

TEST(Refinement, TokenEditKeepsRateResultsAndStaysExact) {
    Graph g = ring4();
    const auto reps = g.analyses()->get<RepetitionVectorAnalysis>(g);
    const auto consistent = g.analyses()->get<ConsistencyAnalysis>(g);
    warm_throughput(g);

    Graph copy = g;
    copy.set_initial_tokens(3, 3);  // ring credit 2 -> 3

    // Tokens do not enter the balance equations: rate-only results survive.
    EXPECT_EQ(copy.analyses()->cached<RepetitionVectorAnalysis>(), reps);
    EXPECT_EQ(copy.analyses()->cached<ConsistencyAnalysis>(), consistent);

    // Whatever the timed slots did (refine or drop), the answers match a
    // cold rebuild exactly.
    const ThroughputResult cold = throughput_symbolic(rebuild_cold(copy));
    const auto now = cached_throughput(copy);
    EXPECT_EQ(now->outcome, cold.outcome);
    EXPECT_EQ(now->period, cold.period);
    EXPECT_EQ(now->per_actor, cold.per_actor);
}

TEST(Refinement, RateEditRefinedRepetitionMatchesColdSolve) {
    Graph g = ring4();
    repetition_vector(g);
    warm_throughput(g);

    Graph copy = g;
    copy.set_rates(1, 2, 1);  // b now produces 2 per firing

    const Graph cold = rebuild_cold(copy);
    EXPECT_EQ(is_consistent(copy), is_consistent(cold));
    if (is_consistent(cold)) {
        EXPECT_EQ(repetition_vector(copy), repetition_vector(cold));
        const ThroughputResult reference = throughput_symbolic(cold);
        const auto now = cached_throughput(copy);
        EXPECT_EQ(now->period, reference.period);
        EXPECT_EQ(now->per_actor, reference.per_actor);
    }
}

TEST(Refinement, StructuralEditsDropDerivedResultsButStayCorrect) {
    Graph g = ring4();
    repetition_vector(g);
    warm_throughput(g);

    // Splice a new actor into the ring: a -> b becomes a -> x -> b.
    Graph copy = g;
    const ActorId x = copy.add_actor("x", 6);
    copy.remove_channel(0);
    copy.add_channel(0, x, 0);
    copy.add_channel(x, 1, 0);

    EXPECT_TRUE(copy.mutations().has(MutationKind::actor_added));
    EXPECT_TRUE(copy.mutations().has(MutationKind::channel_removed));

    const Graph cold = rebuild_cold(copy);
    EXPECT_EQ(repetition_vector(copy), repetition_vector(cold));
    const ThroughputResult reference = throughput_symbolic(cold);
    const auto now = cached_throughput(copy);
    EXPECT_EQ(now->period, reference.period);
    EXPECT_EQ(now->per_actor, reference.per_actor);
}

// ------------------------------------------------------------------ slot stats

TEST(Refinement, StatsCountKeptAndRefinedSlots) {
    Graph g = ring4();
    g.analyses()->get<RepetitionVectorAnalysis>(g);
    g.analyses()->get<SequentialScheduleAnalysis>(g);
    warm_throughput(g);
    cached_throughput(g);

    Graph copy = g;
    copy.set_execution_time(0, 8);

    std::uint64_t kept = 0;
    std::uint64_t refined = 0;
    for (const AnalysisSlotStats& slot : copy.analyses()->stats()) {
        kept += slot.kept;
        refined += slot.refined;
        if (slot.analysis == "repetition" || slot.analysis == "schedule") {
            EXPECT_EQ(slot.kept, 1u) << slot.analysis;
            EXPECT_TRUE(slot.cached) << slot.analysis;
        }
        if (slot.analysis == "throughput-incremental") {
            EXPECT_EQ(slot.refined, 1u);
        }
    }
    EXPECT_GE(kept, 2u);     // repetition + schedule (at least)
    EXPECT_GE(refined, 2u);  // warm state + forwarded throughput
}

// --------------------------------------------------------------- adopt / install

TEST(Adoption, AdoptOnlyFillsEmptySlots) {
    Graph g = ring4();
    const auto first = g.analyses()->get<RepetitionVectorAnalysis>(g);

    Graph other = rebuild_cold(g);
    const auto own = other.analyses()->get<RepetitionVectorAnalysis>(other);
    ASSERT_NE(own, first);  // distinct objects, equal values

    // Adopting into the non-empty slot is a no-op: the first result wins.
    other.analyses()->adopt(*g.analyses(), {RepetitionVectorAnalysis::kName});
    EXPECT_EQ(other.analyses()->cached<RepetitionVectorAnalysis>(), own);
    for (const AnalysisSlotStats& slot : other.analyses()->stats()) {
        if (slot.analysis == "repetition") {
            EXPECT_EQ(slot.adopted, 0u);
        }
    }

    // An empty manager adopts the shared object itself, not a copy.
    AnalysisManager fresh;
    fresh.adopt(*g.analyses(), {RepetitionVectorAnalysis::kName});
    EXPECT_EQ(fresh.cached<RepetitionVectorAnalysis>(), first);
    for (const AnalysisSlotStats& slot : fresh.stats()) {
        if (slot.analysis == "repetition") {
            EXPECT_EQ(slot.adopted, 1u);
            EXPECT_EQ(slot.misses, 0u);
        }
    }
}

TEST(Adoption, AdoptAllAndUntimedRespectTimeSensitivity) {
    Graph g = ring4();
    g.analyses()->get<RepetitionVectorAnalysis>(g);
    cached_throughput(g);

    AnalysisManager untimed;
    untimed.adopt_untimed(*g.analyses());
    EXPECT_TRUE(untimed.is_cached<RepetitionVectorAnalysis>());
    EXPECT_FALSE(untimed.is_cached<ThroughputAnalysis>());

    AnalysisManager everything;
    everything.adopt_all(*g.analyses());
    EXPECT_TRUE(everything.is_cached<RepetitionVectorAnalysis>());
    EXPECT_TRUE(everything.is_cached<ThroughputAnalysis>());
}

TEST(Adoption, InstallRespectsFirstResultWins) {
    Graph g = ring4();
    AnalysisManager manager;
    auto value = std::make_shared<const std::vector<Int>>(std::vector<Int>{1, 1, 1, 1});
    manager.install<RepetitionVectorAnalysis>(value, /*as_refined=*/true);
    EXPECT_EQ(manager.cached<RepetitionVectorAnalysis>(), value);

    // A second install loses against the stored result.
    auto other = std::make_shared<const std::vector<Int>>(std::vector<Int>{2, 2, 2, 2});
    manager.install<RepetitionVectorAnalysis>(other, /*as_refined=*/false);
    EXPECT_EQ(manager.cached<RepetitionVectorAnalysis>(), value);
    for (const AnalysisSlotStats& slot : manager.stats()) {
        if (slot.analysis == "repetition") {
            EXPECT_EQ(slot.refined, 1u);
            EXPECT_EQ(slot.adopted, 0u);
        }
    }
}

TEST(Adoption, ConcurrentComputeReturnsOneSharedResult) {
    Graph g = fork_join_graph(16, 3, 2);
    std::vector<std::shared_ptr<const ThroughputResult>> results(8);
    std::vector<std::thread> threads;
    threads.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        threads.emplace_back([&g, &results, i] { results[i] = cached_throughput(g); });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    // Racing computes may happen, but every caller sees the SAME object.
    for (const auto& r : results) {
        EXPECT_EQ(r, results[0]);
    }
}

// ------------------------------------------------------------ certificate layer

TEST(Certificate, MatchesKarpAndRefinesWeightEdits) {
    // Two cyclic SCCs joined by a cross edge, plus an acyclic tail.
    Digraph d(5);
    const std::size_t ab = d.add_edge(0, 1, 4);
    d.add_edge(1, 0, 2);                        // SCC {0,1}: mean 3
    d.add_edge(1, 2, 1);                        // cross edge
    d.add_edge(2, 3, 5);
    const std::size_t dc = d.add_edge(3, 2, 5);  // SCC {2,3}: mean 5
    d.add_edge(3, 4, 9);                        // tail, on no cycle

    McmCertificate cert = max_cycle_mean_certified(d);
    const CycleMetric direct = max_cycle_mean_karp(d);
    ASSERT_TRUE(cert.metric.is_finite());
    EXPECT_EQ(cert.metric.value, direct.value);
    EXPECT_EQ(cert.metric.value, Rational(5));

    // A cross-SCC/tail edit can never move λ and must not re-solve anything.
    std::size_t rescored = 0;
    McmCertificate same =
        refine_cycle_mean(cert, {{2, Int{100}}, {5, Int{100}}}, &rescored);
    EXPECT_EQ(rescored, 0u);
    EXPECT_EQ(same.metric.value, Rational(5));

    // Raising a non-critical SCC below the max keeps λ; pushing it past the
    // max re-scores that SCC and the refined answer tracks Karp exactly.
    for (const Int weight : {Int{6}, Int{1}, Int{13}}) {
        std::vector<EdgeWeightDelta> deltas = {{ab, weight}};
        McmCertificate refined = refine_cycle_mean(cert, deltas, nullptr);
        Digraph edited = d;
        // Rebuild the edited digraph from scratch for the reference answer.
        Digraph reference(5);
        for (std::size_t e = 0; e < d.edge_count(); ++e) {
            const DigraphEdge& edge = d.edge(e);
            reference.add_edge(edge.from, edge.to, e == ab ? weight : edge.weight,
                               edge.tokens);
        }
        EXPECT_EQ(refined.metric.value, max_cycle_mean_karp(reference).value)
            << "weight " << weight;
        cert = std::move(refined);
        d = std::move(reference);
    }

    // Editing the critical SCC itself must re-solve exactly that SCC.
    std::size_t dirty = 0;
    McmCertificate lowered = refine_cycle_mean(cert, {{dc, Int{1}}}, &dirty);
    EXPECT_EQ(dirty, 1u);
    Digraph reference(5);
    for (std::size_t e = 0; e < d.edge_count(); ++e) {
        const DigraphEdge& edge = d.edge(e);
        reference.add_edge(edge.from, edge.to, e == dc ? Int{1} : edge.weight,
                           edge.tokens);
    }
    EXPECT_EQ(lowered.metric.value, max_cycle_mean_karp(reference).value);
}

// ------------------------------------------------------------- executor deltas

TEST(ExecutorDelta, RetimingRefinesTheScheduleThroughItsDelta) {
    // Three tokens on the closing channel: enough slack that the greedy
    // schedule stays admissible after retiming redistributes them (with a
    // tighter ring the old order goes stale and the slot correctly drops —
    // the admissibility re-validation is exactly the certificate contract).
    Graph g = ring4();
    g.set_initial_tokens(3, 3);
    sequential_schedule(g);
    const auto before = cached_throughput(g);
    ASSERT_TRUE(before->is_finite());

    const PipelineRun run = PipelineExecutor().run(parse_pipeline("retiming"), g);
    ASSERT_FALSE(run.reports.empty());
    if (!run.reports[0].changed) {
        GTEST_SKIP() << "retiming left the fixture unchanged";
    }

    // The pass emitted a MutationLog delta, so the executor refined the
    // post-pass manager instead of dropping to the preservation list alone.
    EXPECT_GT(run.reports[0].kept + run.reports[0].refined, 0u);

    // The schedule slot survived the token moves and is still admissible.
    const auto sched = run.graph.analyses()->cached<SequentialScheduleAnalysis>();
    if (sched != nullptr) {
        EXPECT_TRUE(validate_schedule(run.graph, *sched));
    }
    // And the carried throughput is the retiming-invariant period.
    const auto after = run.graph.analyses()->cached<ThroughputAnalysis>();
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(after->period, before->period);
    EXPECT_EQ(throughput_symbolic(rebuild_cold(run.graph)).period, before->period);
}

}  // namespace
}  // namespace sdf
