// Unit tests for sdf/properties.hpp: token enumeration, dependency digraph,
// connectivity predicates.
#include "sdf/properties.hpp"

#include <gtest/gtest.h>

namespace sdf {
namespace {

TEST(Properties, InitialTokensEnumeratedInCanonicalOrder) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    const ChannelId c0 = g.add_channel(a, b, 2);
    const ChannelId c1 = g.add_channel(b, a, 0);
    const ChannelId c2 = g.add_channel(a, a, 1);
    (void)c1;
    const auto tokens = initial_tokens(g);
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0], (TokenRef{c0, 0}));
    EXPECT_EQ(tokens[1], (TokenRef{c0, 1}));
    EXPECT_EQ(tokens[2], (TokenRef{c2, 0}));
}

TEST(Properties, DependencyDigraphCarriesTimesAndTokens) {
    Graph g;
    const ActorId a = g.add_actor("a", 7);
    const ActorId b = g.add_actor("b", 3);
    g.add_channel(a, b, 1, 1, 4);
    const Digraph d = dependency_digraph(g);
    ASSERT_EQ(d.edge_count(), 1u);
    EXPECT_EQ(d.edge(0).from, a);
    EXPECT_EQ(d.edge(0).to, b);
    EXPECT_EQ(d.edge(0).weight, 7);  // execution time of the source
    EXPECT_EQ(d.edge(0).tokens, 4);
}

TEST(Properties, StrongConnectivity) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    g.add_channel(a, b, 0);
    EXPECT_FALSE(is_strongly_connected(g));
    g.add_channel(b, a, 1);
    EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Properties, SingleActorIsStronglyConnected) {
    Graph g;
    g.add_actor("a");
    EXPECT_TRUE(is_strongly_connected(g));
    EXPECT_FALSE(is_strongly_connected(Graph{}));
}

TEST(Properties, EveryActorOnCycle) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    const ActorId c = g.add_actor("c");
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 1);
    EXPECT_FALSE(every_actor_on_cycle(g));  // c is isolated
    g.add_channel(c, c, 1);
    EXPECT_TRUE(every_actor_on_cycle(g));
}

TEST(Properties, EveryActorOnCycleRejectsDanglingTail) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    g.add_channel(a, a, 1);
    g.add_channel(a, b, 0);
    EXPECT_FALSE(every_actor_on_cycle(g));  // b only receives
}

}  // namespace
}  // namespace sdf
