// Unit + property tests for maxplus/transient.hpp.
#include "maxplus/transient.hpp"

#include <gtest/gtest.h>

#include <random>

#include "base/errors.hpp"
#include "gen/random_sdf.hpp"
#include "sdf/simulate.hpp"
#include "transform/symbolic.hpp"

namespace sdf {
namespace {

TEST(Transient, ScalarMatrixIsImmediatelyPeriodic) {
    MpMatrix m(1, 1);
    m.set(0, 0, MpValue(7));
    const auto t = transient_analysis(m);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->transient, 0);
    EXPECT_EQ(t->cyclicity, 1);
    EXPECT_EQ(t->rate, Rational(7));
}

TEST(Transient, TwoCycleHasCyclicityTwo) {
    // Pure swap with weights 3 and 5: powers alternate between the two
    // off-diagonal patterns; period 2, rate 4 (but 4 per step is only
    // realised over two steps: shift 8).
    MpMatrix m(2, 2);
    m.set(0, 1, MpValue(3));
    m.set(1, 0, MpValue(5));
    const auto t = transient_analysis(m);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->rate, Rational(4));
    EXPECT_EQ(t->cyclicity % 2, 0);  // den(λ)=1 but the pattern needs c=2
    EXPECT_EQ(t->cyclicity, 2);
}

TEST(Transient, SlowSideCycleCreatesTransient) {
    // Irreducible: heavy self-loop (10) at node 0, lighter one (9) at node
    // 1, connected both ways with weight 0.  Entry (1,1) follows its own
    // loop (9k) until the detour through node 0 (10k - 20) overtakes at
    // k = 20 — a genuine transient.
    MpMatrix m(2, 2);
    m.set(0, 0, MpValue(10));
    m.set(1, 1, MpValue(9));
    m.set(0, 1, MpValue(0));
    m.set(1, 0, MpValue(0));
    const auto t = transient_analysis(m);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->rate, Rational(10));
    EXPECT_EQ(t->cyclicity, 1);
    EXPECT_GT(t->transient, 10);
    EXPECT_LE(t->transient, 20);
}

TEST(Transient, FractionalRateUsesDenominatorCycles) {
    // One cycle of length 2 and total weight 7: λ = 7/2, so periodicity
    // needs even c.
    MpMatrix m(2, 2);
    m.set(0, 1, MpValue(3));
    m.set(1, 0, MpValue(4));
    const auto t = transient_analysis(m);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->rate, Rational(7, 2));
    EXPECT_EQ(t->cyclicity % 2, 0);
}

TEST(Transient, RejectsBadInput) {
    EXPECT_THROW(transient_analysis(MpMatrix(2, 3)), ArithmeticError);
    MpMatrix acyclic(2, 2);
    acyclic.set(0, 1, MpValue(1));
    EXPECT_THROW(transient_analysis(acyclic), ArithmeticError);
}

TEST(Transient, BudgetExhaustionReturnsNullopt) {
    // Two disconnected self-loops with rates 100 and 99: the matrix is
    // reducible and never becomes globally periodic (the slower SCC's
    // entries keep falling behind), so the search must give up cleanly.
    MpMatrix m(2, 2);
    m.set(0, 0, MpValue(100));
    m.set(1, 1, MpValue(99));
    m.set(1, 0, MpValue(0));
    // (1,0) entry grows like 99k while (0,0) grows like 100k — relative
    // shift never stabilises?  It does stabilise: (1,0) = max over paths
    // 1->1...->0...->0 = 99a + 100b; dominated by b: for large k it tracks
    // 100. So this IS eventually periodic.  Use genuinely incommensurate
    // growth instead: two SCCs with NO connection.
    MpMatrix disconnected(2, 2);
    disconnected.set(0, 0, MpValue(100));
    disconnected.set(1, 1, MpValue(99));
    const auto t = transient_analysis(disconnected, 32);
    EXPECT_FALSE(t.has_value());  // (1,1) falls behind (0,0) forever
}

class TransientProperty : public ::testing::TestWithParam<int> {};

TEST_P(TransientProperty, PeriodicPhaseMatchesSimulatedMakespans) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    RandomSdfOptions options;
    options.min_actors = 3;
    options.max_actors = 5;
    options.max_execution_time = 6;
    const Graph g = random_sdf(rng, options);
    const SymbolicIteration it = symbolic_iteration(g);
    const auto t = transient_analysis(it.matrix, 64);
    if (!t || t->rate.is_zero()) {
        return;
    }
    // Makespan(k) = max entry of G^k; once periodic, makespans advance by
    // exactly rate*cyclicity per cyclicity iterations.
    const Int k0 = t->transient;
    const Int c = t->cyclicity;
    const Int m1 = simulate_iterations(g, k0 + c).makespan;
    const Int m2 = simulate_iterations(g, k0 + 2 * c).makespan;
    const Rational step = t->rate * Rational(c);
    ASSERT_TRUE(step.is_integer());
    EXPECT_EQ(m2 - m1, step.num());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransientProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace sdf
