// End-to-end tests for tools/sdfred_cli.cpp: drive the installed binary on
// real files and check outputs and exit codes.  The binary path comes from
// the build system (SDFRED_CLI_PATH).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "csdf/graph.hpp"
#include "gen/benchmarks.hpp"
#include "io/csdf_xml.hpp"
#include "io/text.hpp"
#include "io/xml.hpp"
#include "transform/compare.hpp"

namespace sdf {
namespace {

struct CliResult {
    int exit_code = -1;
    std::string output;  // stdout + stderr
};

CliResult run_cli(const std::string& arguments, const std::string& env_prefix = {}) {
    const std::string log = ::testing::TempDir() + "/cli_out.txt";
    const std::string command =
        env_prefix + std::string(SDFRED_CLI_PATH) + " " + arguments + " > " + log + " 2>&1";
    const int status = std::system(command.c_str());
    CliResult result;
    result.exit_code = WEXITSTATUS(status);
    std::ifstream in(log);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    result.output = buffer.str();
    return result;
}

class CliTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = ::testing::TempDir();
        write_text_file(dir_ + "/h263.sdf", h263_decoder());
        write_xml_file(dir_ + "/h263.xml", h263_decoder());
    }
    std::string dir_;
};

TEST_F(CliTest, NoArgumentsPrintsUsage) {
    const CliResult r = run_cli("");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, SdfredIsaOverrideIsValidatedAtStartup) {
    // A typo'd tier must be a fast bad-invocation failure (exit 2), even on
    // commands that never reach a SIMD kernel — not a silent no-op.
    const CliResult bad = run_cli("info " + dir_ + "/h263.sdf", "SDFRED_ISA=sse2 ");
    EXPECT_EQ(bad.exit_code, 2);
    EXPECT_NE(bad.output.find("unknown ISA tier"), std::string::npos);
    const CliResult good = run_cli("info " + dir_ + "/h263.sdf", "SDFRED_ISA=scalar ");
    EXPECT_EQ(good.exit_code, 0);
}

TEST_F(CliTest, InfoOnTextFile) {
    const CliResult r = run_cli("info " + dir_ + "/h263.sdf");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("actors     : 4"), std::string::npos);
    EXPECT_NE(r.output.find("iteration  : 1190 firings"), std::string::npos);
    EXPECT_NE(r.output.find("live       : yes"), std::string::npos);
}

TEST_F(CliTest, InfoOnXmlFileMatchesTextFile) {
    const CliResult text = run_cli("info " + dir_ + "/h263.sdf");
    const CliResult xml = run_cli("info " + dir_ + "/h263.xml");
    EXPECT_EQ(xml.exit_code, 0);
    EXPECT_EQ(text.output, xml.output);
}

TEST_F(CliTest, AnalyzeReportsPeriodAndThroughput) {
    const CliResult r = run_cli("analyze " + dir_ + "/h263.sdf");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("iteration period:"), std::string::npos);
    EXPECT_NE(r.output.find("VLD:"), std::string::npos);
    EXPECT_NE(r.output.find("iteration makespan:"), std::string::npos);
}

TEST_F(CliTest, ConvertToReducedHsdfRoundTrips) {
    const std::string out = dir_ + "/reduced.sdf";
    const CliResult r =
        run_cli("convert --to reduced-hsdf " + dir_ + "/h263.sdf -o " + out);
    EXPECT_EQ(r.exit_code, 0);
    const Graph reduced = read_text_file(out);
    EXPECT_TRUE(reduced.is_homogeneous());
    EXPECT_LE(reduced.actor_count(), 15u);  // N(N+2) with N = 3
}

TEST_F(CliTest, ConvertToDotAndXml) {
    const std::string dot = dir_ + "/g.dot";
    EXPECT_EQ(run_cli("convert --to dot " + dir_ + "/h263.sdf -o " + dot).exit_code, 0);
    std::ifstream in(dot);
    std::string first_line;
    std::getline(in, first_line);
    EXPECT_NE(first_line.find("digraph"), std::string::npos);

    const std::string xml = dir_ + "/g2.xml";
    EXPECT_EQ(run_cli("convert --to xml " + dir_ + "/h263.sdf -o " + xml).exit_code, 0);
    EXPECT_TRUE(structurally_equal(read_xml_file(xml), h263_decoder()));
}

TEST_F(CliTest, UnfoldWritesLargerGraph) {
    const std::string out = dir_ + "/unfolded.sdf";
    const CliResult r = run_cli("unfold 3 " + dir_ + "/h263.sdf -o " + out);
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_EQ(read_text_file(out).actor_count(), 12u);
}

TEST_F(CliTest, DeadlockDiagnosisViaCli) {
    Graph dead;
    const ActorId a = dead.add_actor("a", 1);
    const ActorId b = dead.add_actor("b", 1);
    dead.add_channel(a, b, 0);
    dead.add_channel(b, a, 0);
    write_text_file(dir_ + "/dead.sdf", dead);
    const CliResult r = run_cli("deadlock " + dir_ + "/dead.sdf");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("deadlock"), std::string::npos);
    EXPECT_NE(r.output.find("blocked on channel"), std::string::npos);
}

TEST_F(CliTest, ScheduleOnHomogeneousGraph) {
    Graph ring;
    const ActorId a = ring.add_actor("a", 3);
    const ActorId b = ring.add_actor("b", 4);
    ring.add_channel(a, b, 0);
    ring.add_channel(b, a, 1);
    write_text_file(dir_ + "/ring.sdf", ring);
    const CliResult r = run_cli("schedule " + dir_ + "/ring.sdf");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("period: 7"), std::string::npos);
}

TEST_F(CliTest, SensitivityAndStorage) {
    Graph ring;
    const ActorId a = ring.add_actor("a", 3);
    const ActorId b = ring.add_actor("b", 4);
    ring.add_channel(a, b, 0);
    ring.add_channel(b, a, 1);
    write_text_file(dir_ + "/ring.sdf", ring);

    const CliResult sens = run_cli("sensitivity " + dir_ + "/ring.sdf");
    EXPECT_EQ(sens.exit_code, 0);
    EXPECT_NE(sens.output.find("a: +1  [critical]"), std::string::npos);

    const CliResult storage = run_cli("storage " + dir_ + "/ring.sdf");
    EXPECT_EQ(storage.exit_code, 0);
    EXPECT_NE(storage.output.find("a -> b: 1 tokens"), std::string::npos);
    EXPECT_NE(storage.output.find("total (excluding self-loops): 2"),
              std::string::npos);

    const CliResult pareto = run_cli("pareto " + dir_ + "/ring.sdf");
    EXPECT_EQ(pareto.exit_code, 0);
    EXPECT_NE(pareto.output.find("total buffer"), std::string::npos);
}

TEST_F(CliTest, CsdfAnalyzeAndReduce) {
    CsdfGraph g("cs");
    const CsdfActorId a = g.add_actor("stage", {3, 1, 2});
    g.add_channel(a, a, {1, 1, 1}, {1, 1, 1}, 1);
    write_csdf_xml_file(dir_ + "/cs.xml", g);

    const CliResult analyze = run_cli("csdf-analyze " + dir_ + "/cs.xml");
    EXPECT_EQ(analyze.exit_code, 0);
    EXPECT_NE(analyze.output.find("iteration period: 6"), std::string::npos);
    EXPECT_NE(analyze.output.find("stage: 1 (3 phases)"), std::string::npos);

    const std::string out = dir_ + "/cs_reduced.sdf";
    const CliResult reduce = run_cli("csdf-reduce " + dir_ + "/cs.xml -o " + out);
    EXPECT_EQ(reduce.exit_code, 0);
    const Graph reduced = read_text_file(out);
    EXPECT_TRUE(reduced.is_homogeneous());
    EXPECT_EQ(reduced.total_initial_tokens(), 1);
}

TEST_F(CliTest, ExitCodesDistinguishFailureKinds) {
    // 3: the input could not be parsed at all (missing or malformed file).
    const CliResult missing = run_cli("info /nonexistent/file.sdf");
    EXPECT_EQ(missing.exit_code, 3);
    EXPECT_NE(missing.output.find("parse error:"), std::string::npos);

    std::ofstream(dir_ + "/garbage.sdf") << "graph g\nactor a 1\nchannel a ?\n";
    const CliResult garbage = run_cli("info " + dir_ + "/garbage.sdf");
    EXPECT_EQ(garbage.exit_code, 3);
    EXPECT_NE(garbage.output.find("parse error:"), std::string::npos);
    EXPECT_NE(garbage.output.find("line 3"), std::string::npos);

    // 1: the input parsed but an analysis failed.
    Graph inconsistent;
    const ActorId a = inconsistent.add_actor("a", 1);
    const ActorId b = inconsistent.add_actor("b", 1);
    inconsistent.add_channel(a, b, 2, 3, 0);
    inconsistent.add_channel(b, a, 1, 1, 0);
    write_text_file(dir_ + "/bad.sdf", inconsistent);
    const CliResult analysis = run_cli("analyze " + dir_ + "/bad.sdf");
    EXPECT_EQ(analysis.exit_code, 1);
    EXPECT_NE(analysis.output.find("error:"), std::string::npos);

    // 2: the invocation itself was malformed.
    const CliResult bad_format =
        run_cli("convert --to bogus " + dir_ + "/h263.sdf");
    EXPECT_EQ(bad_format.exit_code, 2);
}

TEST_F(CliTest, VersionFlagPrintsToolVersion) {
    const CliResult r = run_cli("--version");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("sdfred_cli "), std::string::npos);
    EXPECT_EQ(r.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, LintCleanModelExitsZero) {
    const CliResult r = run_cli("lint " + dir_ + "/h263.sdf");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("0 errors"), std::string::npos);
}

TEST_F(CliTest, LintBrokenModelReportsRuleWithLocation) {
    const std::string path = std::string(SDFRED_DATA_DIR) + "/bad/deadlocked.sdf";
    const CliResult r = run_cli("lint " + path);
    EXPECT_EQ(r.exit_code, 1);  // errors at the default --fail-on
    EXPECT_NE(r.output.find("deadlocked.sdf:6:1: error:"), std::string::npos);
    EXPECT_NE(r.output.find("[SDF003]"), std::string::npos);
}

TEST_F(CliTest, LintJsonFormatIsStable) {
    const std::string path = std::string(SDFRED_DATA_DIR) + "/bad/inconsistent.xml";
    const CliResult r = run_cli("lint " + path + " --format json");
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.output.find("\"rule\": \"SDF002\""), std::string::npos);
    EXPECT_NE(r.output.find("\"graph\": \"inconsistent\""), std::string::npos);
    EXPECT_NE(r.output.find("\"counts\": "), std::string::npos);
    // The summary object carries per-severity counts and the worst severity.
    EXPECT_NE(r.output.find("\"summary\": {\"total\": "), std::string::npos);
    EXPECT_NE(r.output.find("\"worst\": \"error\""), std::string::npos);
    // Deterministic ordering: two runs render byte-identical reports.
    EXPECT_EQ(r.output, run_cli("lint " + path + " --format json").output);
}

TEST_F(CliTest, AnalyzeCertifyReportsIntervalsAndVerifiedCertificate) {
    const CliResult r = run_cli("analyze " + dir_ + "/h263.sdf --certify");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("token intervals"), std::string::npos);
    EXPECT_NE(r.output.find("certified buffer bounds:"), std::string::npos);
    EXPECT_NE(r.output.find("certificate: VERIFIED"), std::string::npos);
}

TEST_F(CliTest, AnalyzeCertifyJsonIsMachineReadable) {
    const CliResult r = run_cli("analyze " + dir_ + "/h263.sdf --certify --json");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("\"certificate\": {\"verified\": true"), std::string::npos);
    EXPECT_NE(r.output.find("\"verdicts\": {\"dead_actor\": false"), std::string::npos);
    EXPECT_NE(r.output.find("\"certified_bound\": "), std::string::npos);
    // Deterministic: identical runs render byte-identical JSON.
    EXPECT_EQ(r.output,
              run_cli("analyze " + dir_ + "/h263.sdf --certify --json").output);
}

TEST_F(CliTest, AnalyzeCertifyFlagsProvenlyBrokenModels) {
    const std::string bad = std::string(SDFRED_DATA_DIR) + "/bad";
    const CliResult dead = run_cli("analyze " + bad + "/deadlocked.sdf --certify");
    EXPECT_EQ(dead.exit_code, 1);
    EXPECT_NE(dead.output.find("provably never fires"), std::string::npos);
    const CliResult starved =
        run_cli("analyze " + bad + "/starved_selfloop.sdf --certify");
    EXPECT_EQ(starved.exit_code, 1);
    const CliResult inconsistent =
        run_cli("analyze " + bad + "/inconsistent.xml --certify");
    EXPECT_EQ(inconsistent.exit_code, 1);
    EXPECT_NE(inconsistent.output.find("inconsistent"), std::string::npos);
}

TEST_F(CliTest, AnalyzeCertifyUnderAStarvedBudgetExitsFour) {
    const CliResult r =
        run_cli("analyze " + dir_ + "/h263.sdf --certify --max-steps 2");
    EXPECT_EQ(r.exit_code, 4);
    EXPECT_NE(r.output.find("aborted by resource budget"), std::string::npos);
}

TEST_F(CliTest, LintRuleSelectionAndFailOn) {
    const std::string path = std::string(SDFRED_DATA_DIR) + "/bad/overflow.sdf";
    // overflow.sdf has only warnings and notes: clean at the default gate...
    EXPECT_EQ(run_cli("lint " + path).exit_code, 0);
    // ...but fails when the gate is lowered to warnings.
    EXPECT_EQ(run_cli("lint " + path + " --fail-on warning").exit_code, 1);
    // Restricting to a note-severity rule passes even the warning gate.
    const CliResult filtered =
        run_cli("lint " + path + " --rules SDF012 --fail-on warning");
    EXPECT_EQ(filtered.exit_code, 0);
    // Unknown rule ids are an invocation error.
    EXPECT_EQ(run_cli("lint " + path + " --rules SDF999").exit_code, 2);
}

TEST_F(CliTest, LintListEnumeratesRules) {
    const CliResult r = run_cli("lint --list");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("SDF001"), std::string::npos);
    EXPECT_NE(r.output.find("SDF012"), std::string::npos);
}

TEST_F(CliTest, ConvertWithoutFormatIsATargetedInvocationError) {
    const CliResult r = run_cli("convert " + dir_ + "/h263.sdf");
    EXPECT_EQ(r.exit_code, 2);
    // Not the generic usage dump: a diagnostic naming the missing flag.
    EXPECT_NE(r.output.find("--to"), std::string::npos);
    EXPECT_NE(r.output.find("requires an output format"), std::string::npos);
}

TEST_F(CliTest, PipelineRunsAndReportsPerPass) {
    const CliResult r = run_cli("pipeline " + dir_ + "/h263.sdf --passes " +
                                "\"selfloops,prune,hsdf-reduced\" --time-passes");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("selfloops"), std::string::npos);
    EXPECT_NE(r.output.find("hsdf-reduced"), std::string::npos);
    EXPECT_NE(r.output.find("iteration period:"), std::string::npos);
    EXPECT_NE(r.output.find("ms"), std::string::npos);  // --time-passes
}

TEST_F(CliTest, PipelineMatchesAnalyzeOfTheClosedGraph) {
    // The pipeline route and the direct route agree exactly: selfloops
    // closes the graph, so compare against analyze of the closed model.
    const std::string closed = dir_ + "/closed.sdf";
    ASSERT_EQ(run_cli("pipeline " + dir_ + "/h263.sdf --passes selfloops -o " +
                      closed)
                  .exit_code,
              0);
    const CliResult direct = run_cli("analyze " + closed);
    const CliResult via = run_cli("pipeline " + dir_ + "/h263.sdf --passes " +
                                  "\"selfloops,prune,hsdf-reduced\"");
    ASSERT_EQ(direct.exit_code, 0);
    ASSERT_EQ(via.exit_code, 0);
    const auto period_of = [](const std::string& output) {
        const std::size_t at = output.find("iteration period: ");
        EXPECT_NE(at, std::string::npos);
        return output.substr(at, output.find('\n', at) - at);
    };
    EXPECT_EQ(period_of(via.output), period_of(direct.output));
}

TEST_F(CliTest, PipelineSpecErrorsAreInvocationErrors) {
    const CliResult unknown = run_cli("pipeline " + dir_ + "/h263.sdf --passes bogus");
    EXPECT_EQ(unknown.exit_code, 2);
    EXPECT_NE(unknown.output.find("unknown-pass"), std::string::npos);
    const CliResult malformed =
        run_cli("pipeline " + dir_ + "/h263.sdf --passes \"unfold(x)\"");
    EXPECT_EQ(malformed.exit_code, 2);
    EXPECT_NE(malformed.output.find("malformed-parameter"), std::string::npos);
    // --passes itself is required.
    EXPECT_EQ(run_cli("pipeline " + dir_ + "/h263.sdf").exit_code, 2);
}

TEST_F(CliTest, PipelineVerifyEachCatchesTheUnsoundPass) {
    const CliResult r = run_cli("pipeline " + dir_ + "/h263.sdf --verify-each " +
                                "--passes selftest-unsound");
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_NE(r.output.find("violated its declaration"), std::string::npos);
    // Without --verify-each the same pipeline runs to completion.
    EXPECT_EQ(run_cli("pipeline " + dir_ + "/h263.sdf --passes selftest-unsound")
                  .exit_code,
              0);
}

TEST_F(CliTest, PipelineListShowsTheCatalogue) {
    const CliResult r = run_cli("pipeline --list");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("selfloops"), std::string::npos);
    EXPECT_NE(r.output.find("unfold"), std::string::npos);
    EXPECT_NE(r.output.find("preserves"), std::string::npos);
    // The unsound self-test pass stays out of the public catalogue.
    EXPECT_EQ(r.output.find("selftest-unsound"), std::string::npos);
}

TEST_F(CliTest, LintGuardBlocksBrokenInputs) {
    const std::string path = std::string(SDFRED_DATA_DIR) + "/bad/deadlocked.sdf";
    const CliResult guarded = run_cli("analyze --lint " + path);
    EXPECT_EQ(guarded.exit_code, 1);
    EXPECT_NE(guarded.output.find("[SDF003]"), std::string::npos);
    // The guard is silent on clean inputs and the command runs normally.
    const CliResult clean = run_cli("analyze --lint " + dir_ + "/h263.sdf");
    EXPECT_EQ(clean.exit_code, 0);
    EXPECT_NE(clean.output.find("iteration period:"), std::string::npos);
    EXPECT_EQ(clean.output.find("[SDF"), std::string::npos);
}

}  // namespace
}  // namespace sdf
