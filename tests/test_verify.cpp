// Tests for the verify subsystem's building blocks: the oracle registry and
// its graceful-degradation contract, the semantic mutator, and the
// delta-debugging shrinker.  The end-to-end harness is covered by
// tests/test_fuzz.cpp.
#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "base/errors.hpp"
#include "gen/benchmarks.hpp"
#include "gen/structured.hpp"
#include "io/text.hpp"
#include "verify/mutate.hpp"
#include "verify/oracles.hpp"
#include "verify/shrink.hpp"

namespace sdf {
namespace {

Graph two_actor_live() {
    Graph g("live");
    const ActorId a = g.add_actor("a", 2);
    const ActorId b = g.add_actor("b", 3);
    g.add_channel(a, b, 1, 1, 0);
    g.add_channel(b, a, 1, 1, 1);
    return g;
}

Graph inconsistent() {
    Graph g("inconsistent");
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 2, 1, 0);
    g.add_channel(b, a, 2, 1, 2);  // needs q(a)·2 == q(b) and q(b)·2 == q(a)
    return g;
}

Graph deadlocked() {
    Graph g("deadlocked");
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 1, 1, 0);
    g.add_channel(b, a, 1, 1, 0);  // no tokens on the cycle
    return g;
}

TEST(Oracles, RegistryIsPopulatedAndFindable) {
    const auto& registry = oracle_registry();
    ASSERT_GE(registry.size(), 8u);
    for (const Oracle& oracle : registry) {
        EXPECT_FALSE(oracle.id.empty());
        EXPECT_FALSE(oracle.invariant.empty());
        EXPECT_NE(oracle.run, nullptr);
        EXPECT_EQ(find_oracle(oracle.id), &oracle);
    }
    EXPECT_EQ(find_oracle("no-such-oracle"), nullptr);
    EXPECT_NE(find_oracle(self_test_oracle().id), nullptr);
}

TEST(Oracles, EveryOraclePassesOnLiveGraphs) {
    for (const Graph& g : {two_actor_live(), ring_graph(3, 2, 1), mp3_decoder_granule()}) {
        for (const Oracle& oracle : oracle_registry()) {
            const Verdict v = run_oracle(oracle, g);
            EXPECT_NE(v.status, VerdictStatus::fail)
                << oracle.id << " on " << g.name() << ": " << v.describe();
        }
    }
}

TEST(Oracles, InconsistentGraphsNeverFail) {
    for (const Oracle& oracle : oracle_registry()) {
        const Verdict v = run_oracle(oracle, inconsistent());
        EXPECT_NE(v.status, VerdictStatus::fail) << oracle.id << ": " << v.describe();
    }
}

TEST(Oracles, DeadlockedGraphsNeverFail) {
    for (const Oracle& oracle : oracle_registry()) {
        const Verdict v = run_oracle(oracle, deadlocked());
        EXPECT_NE(v.status, VerdictStatus::fail) << oracle.id << ": " << v.describe();
    }
}

TEST(Oracles, EmptyAndSingleActorGraphsResolve) {
    Graph empty("empty");
    Graph lonely("lonely");
    lonely.add_actor("a", 1);
    for (const Oracle& oracle : oracle_registry()) {
        EXPECT_NE(run_oracle(oracle, empty).status, VerdictStatus::fail) << oracle.id;
        EXPECT_NE(run_oracle(oracle, lonely).status, VerdictStatus::fail) << oracle.id;
    }
}

TEST(Oracles, SizeLimitsTurnIntoSkips) {
    OracleLimits tiny;
    tiny.max_actors = 1;
    const Graph g = two_actor_live();
    int skips = 0;
    for (const Oracle& oracle : oracle_registry()) {
        if (run_oracle(oracle, g, tiny).status == VerdictStatus::skip) {
            ++skips;
        }
    }
    EXPECT_GT(skips, 0);
}

TEST(Oracles, SelfTestOracleFailsOnFinitePeriodGraphs) {
    const Verdict v = run_oracle(self_test_oracle(), two_actor_live());
    EXPECT_EQ(v.status, VerdictStatus::fail);
    ASSERT_FALSE(v.disagreements.empty());
    EXPECT_EQ(v.disagreements[0].quantity, "iteration period");
}

TEST(Oracles, UntypedExceptionBecomesCrashFailure) {
    Oracle broken;
    broken.id = "throws-runtime-error";
    broken.run = [](const Graph&, const OracleLimits&) -> Verdict {
        throw std::runtime_error("not a typed sdf error");
    };
    const Verdict v = run_oracle(broken, two_actor_live());
    EXPECT_EQ(v.status, VerdictStatus::fail);
    EXPECT_NE(v.detail.find("crash"), std::string::npos);
}

TEST(Oracles, TypedErrorBecomesReject) {
    Oracle refusing;
    refusing.id = "throws-typed";
    refusing.run = [](const Graph&, const OracleLimits&) -> Verdict {
        throw InconsistentGraphError("outside the domain");
    };
    const Verdict v = run_oracle(refusing, two_actor_live());
    EXPECT_EQ(v.status, VerdictStatus::reject);
    EXPECT_NE(v.detail.find("outside the domain"), std::string::npos);
}

TEST(Mutate, IsDeterministicInTheSeed) {
    const Graph base = ring_graph(4, 3, 2);
    std::mt19937 a(99);
    std::mt19937 b(99);
    const Graph first = mutate_graph(base, a, 5);
    const Graph second = mutate_graph(base, b, 5);
    EXPECT_EQ(write_text_string(first), write_text_string(second));
}

TEST(Mutate, ProducesValidGraphsAndRecordsTrace) {
    const Graph base = chain_graph({1, 2, 3}, 2);
    for (unsigned seed = 0; seed < 50; ++seed) {
        std::mt19937 rng(seed);
        std::vector<std::string> trace;
        const Graph mutant = mutate_graph(base, rng, 3, &trace);
        // Rebuilding through Graph's validating constructor is the check:
        // rates positive, tokens non-negative, endpoints in range.
        EXPECT_GT(mutant.actor_count(), 0u);
        for (const Channel& ch : mutant.channels()) {
            EXPECT_GE(ch.production, 1);
            EXPECT_GE(ch.consumption, 1);
            EXPECT_GE(ch.initial_tokens, 0);
            EXPECT_LT(ch.src, mutant.actor_count());
            EXPECT_LT(ch.dst, mutant.actor_count());
        }
        EXPECT_LE(trace.size(), 3u);
    }
}

TEST(Mutate, ZeroCountIsIdentity) {
    const Graph base = two_actor_live();
    std::mt19937 rng(5);
    EXPECT_EQ(write_text_string(mutate_graph(base, rng, 0)),
              write_text_string(base));
}

TEST(Shrink, RemovesIrrelevantActors) {
    // Failure predicate: "some channel has production rate >= 4".  Only one
    // channel matters; everything else must shrink away.
    Graph g("padded");
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 2);
    const ActorId c = g.add_actor("c", 3);
    const ActorId d = g.add_actor("d", 4);
    g.add_channel(a, b, 4, 2, 1);
    g.add_channel(b, c, 1, 1, 5);
    g.add_channel(c, d, 2, 3, 2);
    g.add_channel(d, a, 1, 1, 7);
    const auto has_big_rate = [](const Graph& candidate) {
        for (const Channel& ch : candidate.channels()) {
            if (ch.production >= 4) {
                return true;
            }
        }
        return false;
    };
    ASSERT_TRUE(has_big_rate(g));
    const ShrinkOutcome outcome = shrink_failure(g, has_big_rate);
    EXPECT_TRUE(has_big_rate(outcome.graph));
    EXPECT_LE(outcome.graph.actor_count(), 2u);
    EXPECT_EQ(outcome.graph.channel_count(), 1u);
    // Attribute pulling: consumption and tokens reach their neutral values,
    // production stays at the smallest still-failing value.
    const Channel& ch = outcome.graph.channel(0);
    EXPECT_EQ(ch.production, 4);
    EXPECT_EQ(ch.consumption, 1);
    EXPECT_EQ(ch.initial_tokens, 0);
}

TEST(Shrink, RespectsAttemptBudget) {
    Graph g = ring_graph(6, 5, 3);
    ShrinkOptions options;
    options.max_attempts = 3;
    const ShrinkOutcome outcome =
        shrink_failure(g, [](const Graph&) { return true; }, options);
    EXPECT_LE(outcome.attempts, 3u);
}

TEST(Shrink, ThrowingPredicateCountsAsNotFailing) {
    const Graph g = two_actor_live();
    // Predicate throws on anything smaller than the original: the shrinker
    // must survive and return the original graph.
    const std::size_t original_actors = g.actor_count();
    const ShrinkOutcome outcome = shrink_failure(g, [&](const Graph& candidate) {
        if (candidate.actor_count() < original_actors) {
            throw std::runtime_error("boom");
        }
        return true;
    });
    EXPECT_EQ(outcome.graph.actor_count(), original_actors);
}

}  // namespace
}  // namespace sdf
