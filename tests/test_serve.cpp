// test_serve.cpp — protocol goldens, cache semantics and concurrency
// stress for the `sdfred serve` daemon stack.
//
// Three layers, mirroring the architecture:
//
//   * GOLDEN tests replay committed request lines (data/serve/*.request)
//     through a ServeCore and demand byte-identical response lines
//     (data/serve/*.golden).  The wire format is a compatibility promise —
//     a member rename or reorder must fail a test, not surprise a client.
//   * CACHE tests pin the content-addressed semantics: byte-different but
//     canonically-equal models share one cache entry, semantic mutations
//     miss, and a tiny capacity evicts LRU entries together with their
//     results.
//   * STRESS tests push N client threads × M mixed requests (valid,
//     pathological, budget-starved, malformed) through Server::submit and
//     check every reply arrives exactly once and equals a fresh one-shot
//     ServeCore's answer for the same line — the daemon must not trade
//     correctness for concurrency.  Run under TSan in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "base/signals.hpp"
#include "gen/structured.hpp"
#include "io/text.hpp"
#include "io/xml.hpp"
#include "serve/graph_store.hpp"
#include "serve/json.hpp"
#include "serve/oracle.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "verify/oracles.hpp"

namespace sdf {
namespace serve {
namespace {

std::string data_path(const std::string& relative) {
    return std::string(SDFRED_DATA_DIR) + "/" + relative;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing test input: " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    // Goldens are stored one line per file; the trailing newline is the
    // file format, not part of the response.
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
        text.pop_back();
    }
    return text;
}

/// The committed golden cases, in replay order.  Models are distinct per
/// (model, op) pair so the shared-core replay sees the same cache states
/// as the per-case fresh cores.
const std::vector<std::string> kGoldenCases = {
    "throughput_ok",   "lint_note",      "parse_error", "budget_rejected",
    "unknown_op",      "malformed_json", "certify_ok",  "nul_byte",
    "invalid_utf8",
};

constexpr const char* kCycleModel =
    "graph g\nactor a 2\nactor b 3\n"
    "channel a b 1 1 1\nchannel b a 1 1 1\n";

/// Builds a minimal throughput request line for `model`.
std::string throughput_line(std::int64_t id, const std::string& model) {
    Json request = Json::object();
    request.set("id", Json::integer(id));
    request.set("op", Json::string("throughput"));
    request.set("model", Json::string(model));
    return request.dump();
}

const Json* result_of(const Json& response) { return response.find("result"); }

std::string cache_of(const Json& response) {
    const Json* cache = response.find("cache");
    return cache != nullptr ? cache->as_string() : "";
}

// ---------------------------------------------------------------------------
// Golden protocol tests
// ---------------------------------------------------------------------------

TEST(ServeGolden, EachCaseOnFreshCore) {
    for (const std::string& name : kGoldenCases) {
        SCOPED_TRACE(name);
        ServeCore core;
        const std::string request = read_file(data_path("serve/" + name + ".request"));
        const std::string golden = read_file(data_path("serve/" + name + ".golden"));
        EXPECT_EQ(core.handle_line(request), golden);
    }
}

TEST(ServeGolden, SequentialReplayOnSharedCore) {
    // The same lines through ONE core must still match: the cases are
    // chosen so cross-request caching cannot change any response.
    ServeCore core;
    for (const std::string& name : kGoldenCases) {
        SCOPED_TRACE(name);
        const std::string request = read_file(data_path("serve/" + name + ".request"));
        const std::string golden = read_file(data_path("serve/" + name + ".golden"));
        EXPECT_EQ(core.handle_line(request), golden);
    }
}

TEST(ServeGolden, ResponsesAreCanonicalJson) {
    // Every golden must be parseable and already in canonical dump() form,
    // and must lead with the id/ok/op envelope the spec promises.
    for (const std::string& name : kGoldenCases) {
        SCOPED_TRACE(name);
        const std::string golden = read_file(data_path("serve/" + name + ".golden"));
        const Json response = Json::parse(golden);
        EXPECT_EQ(response.dump(), golden);
        ASSERT_GE(response.members().size(), 5u);
        EXPECT_EQ(response.members()[0].first, "id");
        EXPECT_EQ(response.members()[1].first, "ok");
        EXPECT_EQ(response.members()[2].first, "op");
        EXPECT_EQ(response.members()[3].first, "exit");
        EXPECT_EQ(response.members()[4].first, "cache");
        const bool ok = response.find("ok")->as_boolean();
        EXPECT_EQ(ok, response.find("error") == nullptr);
        EXPECT_EQ(ok, response.find("exit")->as_integer() <= 1);
    }
}

TEST(ServeGolden, StdioTransportMatchesGoldens) {
    // threads == 1 runs inline, so run_stdio must emit responses in
    // request order: exactly the concatenated goldens.
    std::string input;
    std::string expected;
    for (const std::string& name : kGoldenCases) {
        input += read_file(data_path("serve/" + name + ".request")) + "\n";
        expected += read_file(data_path("serve/" + name + ".golden")) + "\n";
    }
    ServeCore core;
    ServerOptions options;
    options.threads = 1;
    Server server(core, options);
    std::istringstream in(input);
    std::ostringstream out;
    EXPECT_EQ(server.run_stdio(in, out), 0);
    EXPECT_EQ(out.str(), expected);
}

TEST(ServeProtocol, PingStatsShutdown) {
    ServeCore core;
    const Json pong = Json::parse(core.handle_line("{\"id\":1,\"op\":\"ping\"}"));
    EXPECT_TRUE(pong.find("ok")->as_boolean());
    EXPECT_TRUE(result_of(pong)->find("pong")->as_boolean());

    core.handle_line(throughput_line(2, kCycleModel));
    const Json stats = Json::parse(core.handle_line("{\"id\":3,\"op\":\"stats\"}"));
    const Json* result = result_of(stats);
    ASSERT_NE(result, nullptr);
    // ping + throughput + this stats request itself
    EXPECT_EQ(result->find("requests")->find("total")->as_integer(), 3);
    EXPECT_EQ(result->find("cache")->find("graphs")->as_integer(), 1);
    EXPECT_EQ(result->find("queue_depth")->as_integer(), 0);

    EXPECT_FALSE(core.shutdown_requested());
    const Json bye = Json::parse(core.handle_line("{\"id\":4,\"op\":\"shutdown\"}"));
    EXPECT_TRUE(bye.find("ok")->as_boolean());
    EXPECT_TRUE(core.shutdown_requested());
}

TEST(ServeProtocol, RequestValidationIsTyped) {
    ServeCore core;
    const auto kind_of = [&](const std::string& line) {
        const Json response = Json::parse(core.handle_line(line));
        const Json* error = response.find("error");
        return error != nullptr ? error->find("kind")->as_string() : std::string();
    };
    // Unknown member, wrong member type, missing model, duplicate key and
    // model/model_path conflict are all 400-class "bad-request" refusals.
    EXPECT_EQ(kind_of("{\"id\":1,\"op\":\"ping\",\"bogus\":1}"), "bad-request");
    EXPECT_EQ(kind_of("{\"id\":1,\"op\":7}"), "bad-request");
    EXPECT_EQ(kind_of("{\"id\":1,\"op\":\"throughput\"}"), "bad-request");
    EXPECT_EQ(kind_of("{\"id\":1,\"id\":2,\"op\":\"ping\"}"), "bad-json");
    EXPECT_EQ(kind_of("{\"id\":1,\"op\":\"lint\",\"model\":\"graph g\\n\","
                      "\"model_path\":\"x\"}"),
              "bad-request");
    EXPECT_EQ(kind_of("{\"id\":1,\"op\":\"throughput\",\"model\":\"graph g\\n\","
                      "\"budget\":{\"max_steps\":0}}"),
              "bad-request");
    EXPECT_EQ(kind_of("{\"id\":1,\"op\":\"throughput\",\"model\":\"graph g\\n"
                      "actor a 1\\n\",\"pipeline\":\"no_such_pass\"}"),
              "bad-pipeline");
}

// ---------------------------------------------------------------------------
// Cache semantics
// ---------------------------------------------------------------------------

TEST(ServeCache, IdenticalResubmissionReplaysBitIdentically) {
    ServeCore core;
    const std::string line = throughput_line(1, kCycleModel);
    const Json first = Json::parse(core.handle_line(line));
    const Json second = Json::parse(core.handle_line(line));
    EXPECT_EQ(cache_of(first), "miss");
    EXPECT_EQ(cache_of(second), "hit");
    ASSERT_NE(result_of(first), nullptr);
    ASSERT_NE(result_of(second), nullptr);
    EXPECT_EQ(result_of(first)->dump(), result_of(second)->dump());
    EXPECT_EQ(first.find("exit")->as_integer(), second.find("exit")->as_integer());

    const StoreStats stats = core.store_stats();
    EXPECT_EQ(stats.graphs, 1u);
    EXPECT_EQ(stats.result_hits, 1u);
    EXPECT_EQ(stats.result_misses, 1u);
}

TEST(ServeCache, CanonicallyEqualModelsShareOneEntry) {
    // Same graph, different bytes: comments and whitespace do not defeat
    // content addressing, so the reformatted resubmission is a result HIT.
    ServeCore core;
    const std::string reformatted =
        "# a comment\ngraph   g\n  actor a 2\nactor b 3\n\n"
        "channel a b 1 1 1\nchannel b a 1 1 1\n";
    ASSERT_EQ(write_text_string(read_text_string(reformatted)),
              write_text_string(read_text_string(kCycleModel)))
        << "test premise: both spell the same canonical model";
    const Json first = Json::parse(core.handle_line(throughput_line(1, kCycleModel)));
    const Json second = Json::parse(core.handle_line(throughput_line(2, reformatted)));
    EXPECT_EQ(cache_of(first), "miss");
    EXPECT_EQ(cache_of(second), "hit");
    EXPECT_EQ(result_of(first)->dump(), result_of(second)->dump());
    EXPECT_EQ(core.store_stats().graphs, 1u);
}

TEST(ServeCache, SemanticMutationMisses) {
    ServeCore core;
    const std::string mutated =
        "graph g\nactor a 2\nactor b 3\n"
        "channel a b 1 1 1\nchannel b a 1 1 2\n";  // one more initial token
    const Json first = Json::parse(core.handle_line(throughput_line(1, kCycleModel)));
    const Json second = Json::parse(core.handle_line(throughput_line(2, mutated)));
    EXPECT_EQ(cache_of(second), "miss");
    EXPECT_NE(result_of(first)->dump(), result_of(second)->dump());
    EXPECT_EQ(core.store_stats().graphs, 2u);
}

TEST(ServeCache, NoCacheBypassesBothWays) {
    ServeCore core;
    Json request = Json::parse(throughput_line(1, kCycleModel));
    request.set("no_cache", Json::boolean(true));
    const Json first = Json::parse(core.handle_line(request.dump()));
    const Json second = Json::parse(core.handle_line(request.dump()));
    EXPECT_EQ(cache_of(first), "bypass");
    EXPECT_EQ(cache_of(second), "bypass");
    // Bypass neither reads nor writes the result cache...
    EXPECT_EQ(core.store_stats().result_hits, 0u);
    // ...but the graph itself is still interned once.
    EXPECT_EQ(core.store_stats().graphs, 1u);
}

TEST(ServeCache, TinyCapacityEvictsLruWithResults) {
    ServeOptions options;
    options.cache_graphs = 2;
    ServeCore core(options);
    const auto model = [](int tokens) {
        return "graph g\nactor a 1\nactor b 1\nchannel a b 1 1 1\n"
               "channel b a 1 1 " + std::to_string(tokens) + "\n";
    };
    EXPECT_EQ(cache_of(Json::parse(core.handle_line(throughput_line(1, model(1))))),
              "miss");
    EXPECT_EQ(cache_of(Json::parse(core.handle_line(throughput_line(2, model(2))))),
              "miss");
    EXPECT_EQ(cache_of(Json::parse(core.handle_line(throughput_line(3, model(3))))),
              "miss");
    StoreStats stats = core.store_stats();
    EXPECT_EQ(stats.graphs, 2u);
    EXPECT_EQ(stats.graph_evictions, 1u);
    // model(1) was the LRU victim: resubmitting it misses again (its
    // cached result went with it) and in turn evicts model(2).
    EXPECT_EQ(cache_of(Json::parse(core.handle_line(throughput_line(4, model(1))))),
              "miss");
    EXPECT_EQ(cache_of(Json::parse(core.handle_line(throughput_line(5, model(2))))),
              "miss");
    // That resubmission evicted model(3) — the LRU once model(1) was
    // touched — leaving {model(2), model(1)} resident, so model(1) is a hit.
    EXPECT_EQ(cache_of(Json::parse(core.handle_line(throughput_line(6, model(1))))),
              "hit");
    stats = core.store_stats();
    EXPECT_EQ(stats.graphs, 2u);
    EXPECT_EQ(stats.graph_evictions, 3u);
    EXPECT_LE(stats.results, 2u);
}

TEST(ServeCache, XmlAndTextSpellingsInternToOneEntry) {
    // Models are sniffed from content — an SDF3 XML submission and the
    // canonical text spelling of the same graph share one cache entry.
    ServeCore core;
    Json by_path = Json::object();
    by_path.set("id", Json::integer(1));
    by_path.set("op", Json::string("throughput"));
    by_path.set("model_path", Json::string(data_path("modem.xml")));
    const Json first = Json::parse(core.handle_line(by_path.dump()));
    ASSERT_TRUE(first.find("ok")->as_boolean()) << core.handle_line(by_path.dump());
    EXPECT_EQ(cache_of(first), "miss");

    const std::string as_text =
        write_text_string(read_xml_file(data_path("modem.xml")));
    const Json second = Json::parse(core.handle_line(throughput_line(2, as_text)));
    EXPECT_EQ(cache_of(second), "hit");
    EXPECT_EQ(result_of(first)->dump(), result_of(second)->dump());
    EXPECT_EQ(core.store_stats().graphs, 1u);
}

TEST(ServeCache, ContentIdIsStable) {
    // The display id is advertised as fnv1a-64 hex; pin one value so a
    // silent hash change cannot slip into logs and stats.
    EXPECT_EQ(GraphStore::content_id(""), "cbf29ce484222325");
    EXPECT_EQ(GraphStore::content_id("sdf"), GraphStore::content_id("sdf"));
    EXPECT_NE(GraphStore::content_id("sdf"), GraphStore::content_id("sdg"));
}

// ---------------------------------------------------------------------------
// Fuzz-smoke op and oracle registration
// ---------------------------------------------------------------------------

TEST(ServeOracle, RegistersAsExtraAndFuzzSmokeSkipsIt) {
    register_serve_oracle();
    register_serve_oracle();  // idempotent: replaces, not duplicates
    int seen = 0;
    bool extra = false;
    for (const Oracle& oracle : oracle_registry()) {
        if (std::string(oracle.id) == "serve-route") {
            ++seen;
            extra = oracle.extra;
        }
    }
    EXPECT_EQ(seen, 1);
    EXPECT_TRUE(extra);

    // The daemon's own fuzz-smoke op must not recurse into the daemon.
    ServeCore core;
    Json request = Json::object();
    request.set("id", Json::integer(1));
    request.set("op", Json::string("fuzz-smoke"));
    request.set("model", Json::string(kCycleModel));
    const Json response = Json::parse(core.handle_line(request.dump()));
    ASSERT_TRUE(response.find("ok")->as_boolean())
        << core.handle_line(request.dump());
    bool saw_serve_route = false;
    for (const Json& entry : result_of(response)->find("oracles")->items()) {
        if (entry.find("id")->as_string() == "serve-route") saw_serve_route = true;
    }
    EXPECT_FALSE(saw_serve_route);
}

// ---------------------------------------------------------------------------
// Adversarial wire input and the request-line bound
// ---------------------------------------------------------------------------

TEST(ServeWire, CrlfLineEndingsAreStrippedOverStdio) {
    // A CRLF client must get byte-identical responses to an LF client.
    const std::string request = read_file(data_path("serve/throughput_ok.request"));
    const std::string golden = read_file(data_path("serve/throughput_ok.golden"));
    ServeCore core;
    ServerOptions options;
    options.threads = 1;
    Server server(core, options);
    std::istringstream in(request + "\r\n");
    std::ostringstream out;
    EXPECT_EQ(server.run_stdio(in, out), 0);
    EXPECT_EQ(out.str(), golden + "\n");
}

TEST(ServeWire, OversizedLineIsRefusedInBandWithoutParsing) {
    ServeOptions options;
    options.max_line_bytes = 64;
    ServeCore core(options);
    const std::string oversized = throughput_line(1, kCycleModel);
    ASSERT_GT(oversized.size(), core.max_line_bytes()) << "test premise";
    const Json refused = Json::parse(core.handle_line(oversized));
    // The line is refused UNPARSED, so not even the id is echoed.
    EXPECT_TRUE(refused.find("id")->is_null());
    EXPECT_FALSE(refused.find("ok")->as_boolean());
    EXPECT_EQ(refused.find("exit")->as_integer(), 2);
    EXPECT_EQ(refused.find("error")->find("code")->as_integer(), 413);
    EXPECT_EQ(refused.find("error")->find("kind")->as_string(),
              "payload-too-large");
    // A line under the bound still works on the same core.
    const Json pong = Json::parse(core.handle_line("{\"id\":2,\"op\":\"ping\"}"));
    EXPECT_TRUE(pong.find("ok")->as_boolean());
    // ...and the refusal is tallied for the health op.
    const Json health = Json::parse(core.handle_line("{\"id\":3,\"op\":\"health\"}"));
    EXPECT_EQ(result_of(health)->find("rejected_oversize")->as_integer(), 1);
}

/// Connects to `path`, retrying while the listener binds.
int connect_unix(const std::string& path) {
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    std::snprintf(address.sun_path, sizeof(address.sun_path), "%s",
                  path.c_str());
    for (int attempt = 0; attempt < 200; ++attempt) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            return -1;
        }
        if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                      sizeof(address)) == 0) {
            return fd;
        }
        ::close(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return -1;
}

/// Reads from `fd` until one full line arrived; returns it without the
/// newline ("" on EOF before a line completed).
std::string recv_line(int fd) {
    std::string response;
    char buffer[4096];
    while (response.find('\n') == std::string::npos) {
        const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
        if (got <= 0) {
            return "";
        }
        response.append(buffer, static_cast<std::size_t>(got));
    }
    return response.substr(0, response.find('\n'));
}

TEST(ServeWire, EndlessLineIsCutOffAtTheBound) {
    // A client streaming a newline-free line past the bound gets a 413 and
    // a closed connection — the buffer must not grow without limit.
    const std::string path =
        "/tmp/sdfred_test_endless_" + std::to_string(::getpid()) + ".sock";
    ServeOptions serve_options;
    serve_options.max_line_bytes = 1024;
    ServeCore core(serve_options);
    ServerOptions options;
    options.threads = 2;
    Server server(core, options);
    std::thread daemon([&] { server.run_unix(path); });

    const int fd = connect_unix(path);
    ASSERT_GE(fd, 0);
    const std::string flood(4096, 'x');  // no newline anywhere
    ASSERT_EQ(::send(fd, flood.data(), flood.size(), 0),
              static_cast<ssize_t>(flood.size()));
    const std::string line = recv_line(fd);
    ASSERT_FALSE(line.empty()) << "expected an in-band 413 before the close";
    const Json refused = Json::parse(line);
    EXPECT_EQ(refused.find("error")->find("code")->as_integer(), 413);
    EXPECT_EQ(refused.find("error")->find("kind")->as_string(),
              "payload-too-large");
    // The server hangs up on the flooding connection.
    char drain_byte;
    EXPECT_EQ(::recv(fd, &drain_byte, 1, 0), 0) << "connection should be closed";
    ::close(fd);

    const int control = connect_unix(path);
    ASSERT_GE(control, 0);
    const std::string shutdown = "{\"id\":1,\"op\":\"shutdown\"}\n";
    ASSERT_EQ(::send(control, shutdown.data(), shutdown.size(), 0),
              static_cast<ssize_t>(shutdown.size()));
    daemon.join();
    ::close(control);
    ::unlink(path.c_str());
}

TEST(ServeWire, SlowLorisClientIsServedNotStalledOn) {
    // A byte-dribbling client exercises the incremental line assembly; the
    // server must answer once the newline finally arrives, and other
    // clients must not be blocked meanwhile (threads=2 covers the slot).
    const std::string path =
        "/tmp/sdfred_test_loris_" + std::to_string(::getpid()) + ".sock";
    ServeCore core;
    ServerOptions options;
    options.threads = 2;
    Server server(core, options);
    std::thread daemon([&] { server.run_unix(path); });

    const int slow = connect_unix(path);
    ASSERT_GE(slow, 0);
    const std::string request = throughput_line(7, kCycleModel) + "\n";
    for (std::size_t at = 0; at < request.size(); at += 16) {
        const std::size_t len = std::min<std::size_t>(16, request.size() - at);
        ASSERT_EQ(::send(slow, request.data() + at, len, 0),
                  static_cast<ssize_t>(len));
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const std::string line = recv_line(slow);
    ASSERT_FALSE(line.empty());
    const Json response = Json::parse(line);
    EXPECT_EQ(response.find("id")->as_integer(), 7);
    EXPECT_TRUE(response.find("ok")->as_boolean());
    EXPECT_EQ(result_of(response)->find("period")->as_string(), "5/2");

    const std::string shutdown = "{\"id\":8,\"op\":\"shutdown\"}\n";
    ASSERT_EQ(::send(slow, shutdown.data(), shutdown.size(), 0),
              static_cast<ssize_t>(shutdown.size()));
    daemon.join();
    ::close(slow);
    ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// Supervision: health, watchdog, graceful drain
// ---------------------------------------------------------------------------

TEST(ServeHealth, ReportsSupervisionAndPersistenceState) {
    ServeCore volatile_core;
    const Json health =
        Json::parse(volatile_core.handle_line("{\"id\":1,\"op\":\"health\"}"));
    ASSERT_TRUE(health.find("ok")->as_boolean());
    const Json* result = result_of(health);
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->find("status")->as_string(), "ok");
    // in_flight counts the health request reporting it.
    EXPECT_EQ(result->find("in_flight")->as_integer(), 1);
    EXPECT_EQ(result->find("reaped")->as_integer(), 0);
    EXPECT_TRUE(result->find("deadline_ms")->is_null());
    EXPECT_FALSE(result->find("persist")->find("enabled")->as_boolean());

    ServeOptions options;
    options.request_deadline = std::chrono::milliseconds(2500);
    ServeCore supervised(options);
    const Json deadline =
        Json::parse(supervised.handle_line("{\"id\":2,\"op\":\"health\"}"));
    EXPECT_EQ(result_of(deadline)->find("deadline_ms")->as_integer(), 2500);
}

TEST(ServeWatchdog, ArmedTokensAreCancelledDisarmedOnesAreNot) {
    Watchdog watchdog;
    CancellationToken hung;
    CancellationToken prompt;
    const std::uint64_t hung_handle =
        watchdog.arm(hung, std::chrono::milliseconds(5));
    const std::uint64_t prompt_handle =
        watchdog.arm(prompt, std::chrono::milliseconds(60'000));
    watchdog.disarm(prompt_handle);  // "completed" long before its deadline
    // The hung request's token fires within its deadline (plus scheduling
    // slack); the disarmed one never does.
    for (int i = 0; i < 1000 && !hung.cancelled(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(hung.cancelled());
    EXPECT_FALSE(prompt.cancelled());
    EXPECT_EQ(watchdog.reaped(), 1u);
    watchdog.disarm(hung_handle);  // late disarm of a reaped handle: no-op
    EXPECT_EQ(watchdog.reaped(), 1u);
}

TEST(ServeWatchdog, OverrunningRequestAnswers429) {
    // A deliberately heavy analysis against a 1ms hard deadline: whichever
    // observer fires first — the governor's own deadline check or the
    // watchdog's cancellation — the client gets a 429, never a hung worker.
    ServeOptions options;
    options.request_deadline = std::chrono::milliseconds(1);
    ServeCore core(options);
    Json request = Json::parse(
        throughput_line(1, write_text_string(fork_join_graph(192, 3))));
    request.set("degrade", Json::string("never"));
    const Json response = Json::parse(core.handle_line(request.dump()));
    EXPECT_FALSE(response.find("ok")->as_boolean());
    EXPECT_EQ(response.find("exit")->as_integer(), 4);
    EXPECT_EQ(response.find("error")->find("code")->as_integer(), 429);
    const std::string cause =
        response.find("error")->find("cause")->as_string();
    EXPECT_TRUE(cause == "deadline" || cause == "cancelled") << cause;
}

TEST(ServeWatchdog, DeadlineDoesNotChangeFastResults) {
    // The supervision layer must be invisible to requests that finish in
    // time: a generous deadline yields bit-identical results.
    ServeOptions options;
    options.request_deadline = std::chrono::milliseconds(60'000);
    ServeCore supervised(options);
    ServeCore plain;
    const std::string line = throughput_line(1, kCycleModel);
    const Json with_deadline = Json::parse(supervised.handle_line(line));
    const Json without = Json::parse(plain.handle_line(line));
    ASSERT_TRUE(with_deadline.find("ok")->as_boolean());
    EXPECT_EQ(result_of(with_deadline)->dump(), result_of(without)->dump());
    EXPECT_EQ(with_deadline.find("exit")->as_integer(),
              without.find("exit")->as_integer());
}

TEST(ServeDrain, SimulatedSignalStopsIntakeAndSyncsTheIndex) {
    reset_shutdown_signal();
    const std::string dir =
        "/tmp/sdfred_test_drain_" + std::to_string(::getpid());
    ServeOptions serve_options;
    serve_options.cache_dir = dir;
    serve_options.persist_fsync = false;
    {
        // One normal run persists an entry.
        ServeCore core(serve_options);
        ServerOptions options;
        options.threads = 1;
        Server server(core, options);
        std::istringstream in(throughput_line(1, kCycleModel) + "\n");
        std::ostringstream out;
        EXPECT_EQ(server.run_stdio(in, out), 0);
        EXPECT_FALSE(out.str().empty());
    }
    {
        // With the signal already raised, the loop takes in NOTHING more,
        // drains, syncs the index, and still exits 0.
        simulate_shutdown_signal();
        ServeCore core(serve_options);
        ServerOptions options;
        options.threads = 1;
        Server server(core, options);
        std::istringstream in(throughput_line(2, kCycleModel) + "\n");
        std::ostringstream out;
        EXPECT_EQ(server.run_stdio(in, out), 0);
        EXPECT_TRUE(out.str().empty()) << out.str();
        reset_shutdown_signal();
    }
    std::ifstream index(dir + "/index");
    std::string first_line;
    std::getline(index, first_line);
    EXPECT_EQ(first_line, "sdfred-persist-index v1");
    // Scratch cleanup (entry file, index, directory).
    std::string command = "rm -rf " + dir;
    EXPECT_EQ(std::system(command.c_str()), 0);
}

// ---------------------------------------------------------------------------
// Concurrency stress
// ---------------------------------------------------------------------------

/// Parses a response and re-dumps it without the `cache` member: a shared
/// server legitimately reports "hit" where a cold one-shot core reports
/// "miss", but everything else must be identical.
std::string sans_cache(const std::string& line) {
    const Json response = Json::parse(line);
    Json reduced = Json::object();
    for (const auto& member : response.members()) {
        if (member.first != "cache") reduced.set(member.first, member.second);
    }
    return reduced.dump();
}

TEST(ServeStress, ManyClientsMixedRequestsMatchOneShotRuns) {
    // The mixed request menu.  Budget-starved lines use models no other
    // request submits, so a cached result can never mask the refusal.
    std::vector<std::string> menu;
    for (int k = 2; k <= 5; ++k) {
        menu.push_back(write_text_string(ring_graph(k, k)));
    }
    for (const char* bad :
         {"bad/deadlocked.sdf", "bad/overflow.sdf", "bad/starved_selfloop.sdf"}) {
        Json request = Json::object();
        request.set("op", Json::string("throughput"));
        request.set("model_path", Json::string(data_path(bad)));
        menu.push_back(request.dump());
    }
    {
        Json starved = Json::object();
        starved.set("op", Json::string("throughput"));
        starved.set("model", Json::string(write_text_string(ring_graph(7, 1))));
        Json budget = Json::object();
        budget.set("max_steps", Json::integer(1));
        starved.set("budget", std::move(budget));
        starved.set("degrade", Json::string("never"));
        menu.push_back(starved.dump());
    }
    menu.push_back("{\"op\":\"lint\",\"model\":\"graph g\\nactor a 1\\n\"}");
    menu.push_back("{broken json");
    menu.push_back("{\"op\":\"warp\"}");
    // Entries 0..3 are raw models, not request lines; wrap them.
    for (int k = 0; k < 4; ++k) {
        Json request = Json::object();
        request.set("op", Json::string("throughput"));
        request.set("model", Json::string(menu[k]));
        menu[k] = request.dump();
    }

    constexpr int kClients = 8;
    constexpr int kPerClient = 24;

    // Expected answer per (client, slot): a fresh one-shot core per line,
    // the daemon analogue of running the CLI once.  Ids are per-slot so a
    // cross-wired reply cannot masquerade as the right one.
    std::vector<std::vector<std::string>> lines(kClients);
    std::vector<std::vector<std::string>> expected(kClients);
    for (int c = 0; c < kClients; ++c) {
        for (int s = 0; s < kPerClient; ++s) {
            const std::string& base = menu[(c * 7 + s * 5) % menu.size()];
            std::string line = base;
            std::int64_t id = c * 1000 + s;
            try {
                Json request = Json::parse(base);
                request.set("id", Json::integer(id));
                line = request.dump();
            } catch (const JsonParseError&) {
                // malformed stays malformed; its echo id is null
            }
            lines[c].push_back(line);
            ServeCore one_shot;
            expected[c].push_back(sans_cache(one_shot.handle_line(line)));
        }
    }

    ServeCore core;
    ServerOptions options;
    options.threads = 4;
    options.max_queue = 10'000;  // admission must not fire in this test
    Server server(core, options);

    std::vector<std::vector<std::string>> replies(
        kClients, std::vector<std::string>(kPerClient));
    std::vector<std::vector<std::atomic<int>>> reply_counts(kClients);
    for (auto& row : reply_counts) {
        row = std::vector<std::atomic<int>>(kPerClient);
    }
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (int s = 0; s < kPerClient; ++s) {
                server.submit(lines[c][s], [&, c, s](std::string response) {
                    replies[c][s] = std::move(response);
                    reply_counts[c][s].fetch_add(1);
                });
            }
        });
    }
    for (std::thread& t : clients) t.join();
    server.drain();

    for (int c = 0; c < kClients; ++c) {
        for (int s = 0; s < kPerClient; ++s) {
            SCOPED_TRACE("client " + std::to_string(c) + " slot " +
                         std::to_string(s));
            EXPECT_EQ(reply_counts[c][s].load(), 1) << "lost or duplicated reply";
            EXPECT_EQ(sans_cache(replies[c][s]), expected[c][s]);
        }
    }
    const ServeCounters counters = core.counters();
    EXPECT_EQ(counters.requests, kClients * kPerClient);
}

TEST(ServeStress, AdmissionControlShedsInsteadOfQueueing) {
    // A deliberately heavy model and a queue bound of 1: rapid submissions
    // must start bouncing with 503-style refusals, and every reply — served
    // or refused — still arrives exactly once.
    const std::string heavy = throughput_line(1, write_text_string(
        fork_join_graph(192, 3)));
    ServeCore core;
    ServerOptions options;
    options.threads = 2;
    options.max_queue = 1;
    Server server(core, options);

    constexpr int kSubmissions = 64;
    std::atomic<int> replies{0};
    std::atomic<int> refused{0};
    std::mutex sample_mutex;
    std::string refused_sample;
    for (int i = 0; i < kSubmissions; ++i) {
        server.submit(heavy, [&](std::string response) {
            const Json parsed = Json::parse(response);
            const Json* error = parsed.find("error");
            if (error != nullptr && error->find("kind")->as_string() == "overloaded") {
                refused.fetch_add(1);
                std::lock_guard<std::mutex> hold(sample_mutex);
                refused_sample = std::move(response);
            }
            replies.fetch_add(1);
        });
    }
    server.drain();
    EXPECT_EQ(replies.load(), kSubmissions);
    EXPECT_GT(refused.load(), 0);
    ASSERT_FALSE(refused_sample.empty());
    const Json sample = Json::parse(refused_sample);
    EXPECT_FALSE(sample.find("ok")->as_boolean());
    EXPECT_EQ(sample.find("exit")->as_integer(), 4);
    EXPECT_EQ(sample.find("error")->find("code")->as_integer(), 503);
}

TEST(ServeStress, UnixSocketRoundTrip) {
    const std::string path =
        "/tmp/sdfred_test_serve_" + std::to_string(::getpid()) + ".sock";
    ServeCore core;
    ServerOptions options;
    options.threads = 2;
    Server server(core, options);
    std::thread daemon([&] { server.run_unix(path); });

    int fd = -1;
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    std::snprintf(address.sun_path, sizeof(address.sun_path), "%s",
                  path.c_str());
    // The listener needs a moment to bind; retry briefly.
    for (int attempt = 0; attempt < 200; ++attempt) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&address),
                      sizeof(address)) == 0) {
            break;
        }
        ::close(fd);
        fd = -1;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_GE(fd, 0) << "could not connect to " << path;

    const std::string request = throughput_line(42, kCycleModel) + "\n";
    ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char buffer[4096];
    while (response.find('\n') == std::string::npos) {
        const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
        ASSERT_GT(got, 0) << "connection closed before a full response";
        response.append(buffer, static_cast<std::size_t>(got));
    }
    const Json parsed = Json::parse(response.substr(0, response.find('\n')));
    EXPECT_EQ(parsed.find("id")->as_integer(), 42);
    EXPECT_TRUE(parsed.find("ok")->as_boolean());
    EXPECT_EQ(result_of(parsed)->find("period")->as_string(), "5/2");

    const std::string shutdown = "{\"id\":43,\"op\":\"shutdown\"}\n";
    ASSERT_EQ(::send(fd, shutdown.data(), shutdown.size(), 0),
              static_cast<ssize_t>(shutdown.size()));
    daemon.join();
    ::close(fd);
    ::unlink(path.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace sdf
