// Property tests: the three throughput routes (symbolic matrix + Karp,
// classical HSDF + exact max cycle ratio, self-timed state-space
// simulation) are independent implementations of the same semantics; on
// randomly generated consistent live graphs they must agree exactly.
// Likewise the reduced HSDF (Section 6) must preserve the iteration period,
// and the two liveness characterisations must coincide.
#include <gtest/gtest.h>

#include <random>

#include "analysis/liveness.hpp"
#include "analysis/throughput.hpp"
#include "gen/random_sdf.hpp"
#include "sdf/simulate.hpp"
#include "transform/hsdf_classic.hpp"
#include "transform/hsdf_reduced.hpp"
#include "transform/symbolic.hpp"

namespace sdf {
namespace {

class ThroughputProperty : public ::testing::TestWithParam<int> {};

TEST_P(ThroughputProperty, ThreeRoutesAgree) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    const Graph g = random_sdf(rng);
    const ThroughputResult symbolic = throughput_symbolic(g);
    const ThroughputResult classic = throughput_via_classic_hsdf(g);
    ASSERT_EQ(symbolic.outcome, classic.outcome);
    if (symbolic.is_finite()) {
        EXPECT_EQ(symbolic.period, classic.period);
        EXPECT_EQ(symbolic.per_actor, classic.per_actor);
    }
    // Simulation needs non-zero cycle times; random execution times can be
    // zero on the critical cycle, making throughput unbounded — skip those.
    if (symbolic.is_finite() && !symbolic.period.is_zero()) {
        const ThroughputResult simulated = throughput_simulation(g);
        ASSERT_EQ(simulated.outcome, ThroughputOutcome::finite);
        EXPECT_EQ(simulated.period, symbolic.period);
        EXPECT_EQ(simulated.per_actor, symbolic.per_actor);
    }
}

TEST_P(ThroughputProperty, ReducedHsdfPreservesPeriod) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 1000);
    const Graph g = random_sdf(rng);
    const ThroughputResult original = throughput_symbolic(g);
    ASSERT_TRUE(original.is_finite() || original.outcome == ThroughputOutcome::unbounded);
    const Graph reduced = to_hsdf_reduced(g);
    const ThroughputResult converted = throughput_symbolic(reduced);
    if (original.is_finite() && !original.period.is_zero()) {
        ASSERT_TRUE(converted.is_finite());
        EXPECT_EQ(converted.period, original.period);
    } else {
        // Period zero or no cycle: the reduced graph may only contain
        // zero-time cycles.
        ASSERT_NE(converted.outcome, ThroughputOutcome::deadlocked);
        if (converted.is_finite()) {
            EXPECT_EQ(converted.period, Rational(0));
        }
    }
}

TEST_P(ThroughputProperty, ClassicHsdfPreservesPeriodUnderSymbolicRoute) {
    // Run the symbolic analysis on the classical expansion itself: the
    // period of the HSDF equals the period of the original graph.
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 2000);
    const Graph g = random_sdf(rng);
    const ThroughputResult original = throughput_symbolic(g);
    const ClassicHsdf hsdf = to_hsdf_classic(g);
    const ThroughputResult expanded = throughput_symbolic(hsdf.graph);
    ASSERT_EQ(expanded.outcome, original.outcome);
    if (original.is_finite()) {
        EXPECT_EQ(expanded.period, original.period);
    }
}

TEST_P(ThroughputProperty, LivenessCharacterisationsCoincide) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 3000);
    RandomSdfOptions options;
    options.self_loops = (GetParam() % 2) == 0;
    const Graph g = random_sdf(rng, options);
    EXPECT_EQ(is_live(g), is_live_via_hsdf(g));
}

TEST_P(ThroughputProperty, MakespanMatchesSymbolicMatrixPower) {
    // With every initial token available at time 0, the makespan of k
    // iterations equals the largest entry of G^k (every actor carries a
    // self-loop, so its last completion is recorded in a final token).
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 4000);
    const Graph g = random_sdf(rng);
    for (const Int k : {1, 2, 3}) {
        const MpMatrix power = symbolic_iteration_power(g, k);
        const FiniteRun run = simulate_iterations(g, k);
        ASSERT_TRUE(power.max_entry().is_finite());
        EXPECT_EQ(run.makespan, power.max_entry().value()) << "k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThroughputProperty, ::testing::Range(0, 60));

}  // namespace
}  // namespace sdf
