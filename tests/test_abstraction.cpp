// Unit tests for transform/abstraction.hpp — Definitions 3 and 4, the
// name-suffix and layering heuristics, and the paper's Section 4.1 numbers.
#include "transform/abstraction.hpp"

#include <gtest/gtest.h>

#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "gen/regular.hpp"
#include "sdf/repetition.hpp"
#include "transform/compare.hpp"

namespace sdf {
namespace {

TEST(Abstraction, Figure1SpecFromNames) {
    const Graph g = figure1_graph(6);
    const AbstractionSpec spec = abstraction_by_name_suffix(g);
    validate_abstraction(g, spec);
    EXPECT_EQ(spec.fold(), 6);
    EXPECT_EQ(spec.group[*g.find_actor("A3")], "A");
    EXPECT_EQ(spec.index[*g.find_actor("A3")], 3);
    EXPECT_EQ(spec.group[*g.find_actor("B4")], "B");
    EXPECT_EQ(spec.index[*g.find_actor("B4")], 4);
}

TEST(Abstraction, Figure1AbstractGraphMatchesPaper) {
    const Graph g = figure1_graph(6);
    const Graph abstract = abstract_graph(g, abstraction_by_name_suffix(g));
    // Figure 1(b): A (time 5) and B (time 4); self-edges with one token,
    // A->B with none, B->A with two.
    EXPECT_TRUE(structurally_equal(abstract, figure1_abstract()));
}

TEST(Abstraction, Figure1ThroughputBoundIsOneOverFiveN) {
    for (const Int n : {5, 6, 8, 12, 31}) {
        const Graph g = figure1_graph(n);
        const AbstractionSpec spec = abstraction_by_name_suffix(g);
        const Graph abstract = abstract_graph(g, spec);
        const ThroughputResult original = throughput_symbolic(g);
        const ThroughputResult reduced = throughput_symbolic(abstract);
        ASSERT_TRUE(original.is_finite());
        ASSERT_TRUE(reduced.is_finite());
        // Section 4.1: actual 1/(5n-7), abstract estimate 1/(5n).
        EXPECT_EQ(original.period, Rational(5 * n - 7)) << "n=" << n;
        EXPECT_EQ(reduced.period, Rational(5)) << "n=" << n;
        const Rational estimate =
            reduced.per_actor[*abstract.find_actor("A")] / Rational(spec.fold());
        EXPECT_EQ(estimate, Rational(1, 5 * n)) << "n=" << n;
        // Theorem 1: conservative.
        EXPECT_GE(original.per_actor[*g.find_actor("A1")], estimate) << "n=" << n;
    }
}

TEST(Abstraction, ValidationRejectsDuplicateIndexInGroup) {
    Graph g;
    g.add_actor("A1", 1);
    g.add_actor("A2", 1);
    AbstractionSpec spec;
    spec.group = {"A", "A"};
    spec.index = {1, 1};
    EXPECT_THROW(validate_abstraction(g, spec), InvalidAbstractionError);
    spec.index = {1, 2};
    EXPECT_NO_THROW(validate_abstraction(g, spec));
}

TEST(Abstraction, ValidationRejectsMixedRepetitionEntries) {
    Graph g;
    const ActorId a = g.add_actor("A1", 1);
    const ActorId b = g.add_actor("A2", 1);
    g.add_channel(a, b, 2, 1, 0);  // q = (1, 2): different entries
    AbstractionSpec spec;
    spec.group = {"A", "A"};
    spec.index = {1, 2};
    EXPECT_THROW(validate_abstraction(g, spec), InvalidAbstractionError);
}

TEST(Abstraction, ValidationRejectsBackwardZeroDelayEdge) {
    Graph g;
    const ActorId a = g.add_actor("x", 1);
    const ActorId b = g.add_actor("y", 1);
    g.add_channel(a, b, 0);
    AbstractionSpec spec;
    spec.group = {"x", "y"};
    spec.index = {2, 1};  // I(src) > I(dst) on a zero-delay edge
    EXPECT_THROW(validate_abstraction(g, spec), InvalidAbstractionError);
    spec.index = {1, 1};
    EXPECT_NO_THROW(validate_abstraction(g, spec));
}

TEST(Abstraction, TokensLiftTheIndexConstraint) {
    Graph g;
    const ActorId a = g.add_actor("x", 1);
    const ActorId b = g.add_actor("y", 1);
    g.add_channel(a, b, 1);  // d > 0: indices may decrease
    AbstractionSpec spec;
    spec.group = {"x", "y"};
    spec.index = {2, 1};
    EXPECT_NO_THROW(validate_abstraction(g, spec));
}

TEST(Abstraction, ValidationRejectsMalformedSpecs) {
    Graph g;
    g.add_actor("a", 1);
    AbstractionSpec spec;
    spec.group = {"a"};
    spec.index = {0};  // indices are 1-based
    EXPECT_THROW(validate_abstraction(g, spec), InvalidAbstractionError);
    spec.index = {1, 2};  // wrong length
    EXPECT_THROW(validate_abstraction(g, spec), InvalidAbstractionError);
    spec.group = {""};
    spec.index = {1};
    EXPECT_THROW(validate_abstraction(g, spec), InvalidAbstractionError);
    EXPECT_FALSE(is_valid_abstraction(g, spec));
}

TEST(Abstraction, AbstractGraphRequiresHomogeneousInput) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 2, 2, 2);  // consistent but not homogeneous
    AbstractionSpec spec;
    spec.group = {"a", "b"};
    spec.index = {1, 1};
    EXPECT_THROW(abstract_graph(g, spec), InvalidGraphError);
}

TEST(Abstraction, DelayFormulaMatchesDefinition4) {
    // Two-actor group with indices 1 and 3 (N = 3): edge with d tokens maps
    // to I(dst) - I(src) + N*d.
    Graph g;
    const ActorId a = g.add_actor("p", 1);
    const ActorId b = g.add_actor("q", 2);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 2);
    AbstractionSpec spec;
    spec.group = {"G", "G"};
    spec.index = {1, 3};
    const Graph abstract = abstract_graph(g, spec, /*prune=*/false);
    ASSERT_EQ(abstract.actor_count(), 1u);
    EXPECT_EQ(abstract.actor(0).execution_time, 2);  // max of the group
    ASSERT_EQ(abstract.channel_count(), 2u);
    EXPECT_EQ(abstract.channel(0).initial_tokens, 2);  // 3-1+3*0
    EXPECT_EQ(abstract.channel(1).initial_tokens, 4);  // 1-3+3*2
}

TEST(Abstraction, PruningCollapsesParallelAbstractChannels) {
    const Graph g = figure1_graph(6);
    const AbstractionSpec spec = abstraction_by_name_suffix(g);
    const Graph pruned = abstract_graph(g, spec, /*prune=*/true);
    const Graph unpruned = abstract_graph(g, spec, /*prune=*/false);
    EXPECT_EQ(pruned.channel_count(), 4u);
    EXPECT_EQ(unpruned.channel_count(), g.channel_count());
    // Pruning never changes the timing.
    EXPECT_EQ(throughput_symbolic(pruned).period, throughput_symbolic(unpruned).period);
}

TEST(Abstraction, AssignIndicesSatisfiesDefinition3) {
    // A1 -> B1 -> A2 -> B2 chain (all zero delay) plus a closing token edge;
    // group by stems and let the layering pick indices.
    Graph g;
    const ActorId a1 = g.add_actor("u", 1);
    const ActorId b1 = g.add_actor("v", 1);
    const ActorId a2 = g.add_actor("w", 1);
    const ActorId b2 = g.add_actor("x", 1);
    g.add_channel(a1, b1, 0);
    g.add_channel(b1, a2, 0);
    g.add_channel(a2, b2, 0);
    g.add_channel(b2, a1, 1);
    const AbstractionSpec spec = assign_indices(g, {"A", "B", "A", "B"});
    validate_abstraction(g, spec);
    EXPECT_LT(spec.index[a1], spec.index[a2]);
    EXPECT_LT(spec.index[b1], spec.index[b2]);
}

TEST(Abstraction, AssignIndicesRejectsZeroDelayCycle) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 0);
    EXPECT_THROW(assign_indices(g, {"A", "A"}), InvalidAbstractionError);
}

TEST(Abstraction, NameSuffixFallsBackToLayering) {
    // Suffixes violate Definition 3 (zero-delay edge from A2 to A1), so the
    // heuristic must re-assign indices.
    Graph g;
    const ActorId a2 = g.add_actor("A2", 1);
    const ActorId a1 = g.add_actor("A1", 1);
    g.add_channel(a2, a1, 0);
    g.add_channel(a1, a2, 1);
    const AbstractionSpec spec = abstraction_by_name_suffix(g);
    validate_abstraction(g, spec);
    EXPECT_LE(spec.index[a2], spec.index[a1]);
}

TEST(Abstraction, SigmaImageNameUsesZeroBasedCopies) {
    AbstractionSpec spec;
    spec.group = {"A", "B"};
    spec.index = {3, 1};
    EXPECT_EQ(sigma_image_name(spec, 0), "A@2");
    EXPECT_EQ(sigma_image_name(spec, 1), "B@0");
}

TEST(Abstraction, PrefetchModelAbstractionIsExact) {
    // Section 7: "in this case, [the abstract graph] has exactly the same
    // throughput as the original graph".
    const Graph g = prefetch_graph(24);
    const AbstractionSpec spec = abstraction_by_name_suffix(g);
    const Graph abstract = abstract_graph(g, spec);
    EXPECT_TRUE(structurally_equal(abstract, prefetch_abstract()));
    const Rational original = iteration_period(g);
    const Rational estimate = Rational(spec.fold()) * iteration_period(abstract);
    EXPECT_EQ(original, estimate);
}

}  // namespace
}  // namespace sdf
