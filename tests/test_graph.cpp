// Unit tests for sdf/graph.hpp (the Definition 1/2 model).
#include "sdf/graph.hpp"

#include <gtest/gtest.h>

#include "base/errors.hpp"

namespace sdf {
namespace {

TEST(Graph, AddActorsAndChannels) {
    Graph g("demo");
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 0);
    const ChannelId c = g.add_channel(a, b, 2, 3, 1);
    EXPECT_EQ(g.actor_count(), 2u);
    EXPECT_EQ(g.channel_count(), 1u);
    EXPECT_EQ(g.actor(a).name, "a");
    EXPECT_EQ(g.actor(a).execution_time, 3);
    EXPECT_EQ(g.channel(c).production, 2);
    EXPECT_EQ(g.channel(c).consumption, 3);
    EXPECT_EQ(g.channel(c).initial_tokens, 1);
    EXPECT_EQ(g.name(), "demo");
}

TEST(Graph, RejectsInvalidInput) {
    Graph g;
    const ActorId a = g.add_actor("a");
    EXPECT_THROW(g.add_actor("a"), InvalidGraphError);      // duplicate
    EXPECT_THROW(g.add_actor(""), InvalidGraphError);       // empty name
    EXPECT_THROW(g.add_actor("b", -1), InvalidGraphError);  // negative time
    EXPECT_THROW(g.add_channel(a, 5, 1, 1, 0), InvalidGraphError);
    EXPECT_THROW(g.add_channel(a, a, 0, 1, 0), InvalidGraphError);
    EXPECT_THROW(g.add_channel(a, a, 1, 0, 0), InvalidGraphError);
    EXPECT_THROW(g.add_channel(a, a, 1, 1, -1), InvalidGraphError);
}

TEST(Graph, FindActorByName) {
    Graph g;
    const ActorId a = g.add_actor("alpha");
    EXPECT_EQ(g.find_actor("alpha"), a);
    EXPECT_FALSE(g.find_actor("beta").has_value());
}

TEST(Graph, InAndOutChannels) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    const ChannelId ab = g.add_channel(a, b, 0);
    const ChannelId ba = g.add_channel(b, a, 1);
    const ChannelId self = g.add_channel(a, a, 1);
    EXPECT_EQ(g.out_channels(a), (std::vector<ChannelId>{ab, self}));
    EXPECT_EQ(g.in_channels(a), (std::vector<ChannelId>{ba, self}));
    EXPECT_EQ(g.in_channels(b), (std::vector<ChannelId>{ab}));
}

TEST(Graph, HomogeneityAndTokenTotals) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    g.add_channel(a, b, 2);
    EXPECT_TRUE(g.is_homogeneous());
    EXPECT_EQ(g.total_initial_tokens(), 2);
    g.add_channel(b, a, 3, 2, 1);
    EXPECT_FALSE(g.is_homogeneous());
    EXPECT_EQ(g.total_initial_tokens(), 3);
}

TEST(Graph, Setters) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ChannelId c = g.add_channel(a, a, 1);
    g.set_execution_time(a, 9);
    g.set_initial_tokens(c, 4);
    EXPECT_EQ(g.actor(a).execution_time, 9);
    EXPECT_EQ(g.channel(c).initial_tokens, 4);
    EXPECT_THROW(g.set_execution_time(a, -2), InvalidGraphError);
    EXPECT_THROW(g.set_initial_tokens(c, -1), InvalidGraphError);
    EXPECT_THROW(g.set_execution_time(7, 1), InvalidGraphError);
}

TEST(Channel, Predicates) {
    Channel self{0, 0, 1, 1, 2};
    EXPECT_TRUE(self.is_self_loop());
    EXPECT_TRUE(self.is_homogeneous());
    Channel rated{0, 1, 3, 2, 0};
    EXPECT_FALSE(rated.is_self_loop());
    EXPECT_FALSE(rated.is_homogeneous());
}

}  // namespace
}  // namespace sdf
