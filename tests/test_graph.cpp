// Unit tests for sdf/graph.hpp (the Definition 1/2 model).
#include "sdf/graph.hpp"

#include <gtest/gtest.h>

#include "base/errors.hpp"
#include "sdf/repetition.hpp"
#include "sdf/schedule.hpp"

namespace sdf {
namespace {

TEST(Graph, AddActorsAndChannels) {
    Graph g("demo");
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 0);
    const ChannelId c = g.add_channel(a, b, 2, 3, 1);
    EXPECT_EQ(g.actor_count(), 2u);
    EXPECT_EQ(g.channel_count(), 1u);
    EXPECT_EQ(g.actor(a).name, "a");
    EXPECT_EQ(g.actor(a).execution_time, 3);
    EXPECT_EQ(g.channel(c).production, 2);
    EXPECT_EQ(g.channel(c).consumption, 3);
    EXPECT_EQ(g.channel(c).initial_tokens, 1);
    EXPECT_EQ(g.name(), "demo");
}

TEST(Graph, RejectsInvalidInput) {
    Graph g;
    const ActorId a = g.add_actor("a");
    EXPECT_THROW(g.add_actor("a"), InvalidGraphError);      // duplicate
    EXPECT_THROW(g.add_actor(""), InvalidGraphError);       // empty name
    EXPECT_THROW(g.add_actor("b", -1), InvalidGraphError);  // negative time
    EXPECT_THROW(g.add_channel(a, 5, 1, 1, 0), InvalidGraphError);
    EXPECT_THROW(g.add_channel(a, a, 0, 1, 0), InvalidGraphError);
    EXPECT_THROW(g.add_channel(a, a, 1, 0, 0), InvalidGraphError);
    EXPECT_THROW(g.add_channel(a, a, 1, 1, -1), InvalidGraphError);
}

TEST(Graph, FindActorByName) {
    Graph g;
    const ActorId a = g.add_actor("alpha");
    EXPECT_EQ(g.find_actor("alpha"), a);
    EXPECT_FALSE(g.find_actor("beta").has_value());
}

TEST(Graph, InAndOutChannels) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    const ChannelId ab = g.add_channel(a, b, 0);
    const ChannelId ba = g.add_channel(b, a, 1);
    const ChannelId self = g.add_channel(a, a, 1);
    EXPECT_EQ(g.out_channels(a), (std::vector<ChannelId>{ab, self}));
    EXPECT_EQ(g.in_channels(a), (std::vector<ChannelId>{ba, self}));
    EXPECT_EQ(g.in_channels(b), (std::vector<ChannelId>{ab}));
}

TEST(Graph, HomogeneityAndTokenTotals) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    g.add_channel(a, b, 2);
    EXPECT_TRUE(g.is_homogeneous());
    EXPECT_EQ(g.total_initial_tokens(), 2);
    g.add_channel(b, a, 3, 2, 1);
    EXPECT_FALSE(g.is_homogeneous());
    EXPECT_EQ(g.total_initial_tokens(), 3);
}

TEST(Graph, Setters) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ChannelId c = g.add_channel(a, a, 1);
    g.set_execution_time(a, 9);
    g.set_initial_tokens(c, 4);
    EXPECT_EQ(g.actor(a).execution_time, 9);
    EXPECT_EQ(g.channel(c).initial_tokens, 4);
    EXPECT_THROW(g.set_execution_time(a, -2), InvalidGraphError);
    EXPECT_THROW(g.set_initial_tokens(c, -1), InvalidGraphError);
    EXPECT_THROW(g.set_execution_time(7, 1), InvalidGraphError);
}

TEST(AnalysisManager, RepetitionAndScheduleAreCachedPerGraph) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 1, 2, 0);  // a fires twice per b firing
    g.add_channel(b, a, 2, 1, 2);
    const std::vector<Int> reps = repetition_vector(g);
    const std::vector<ActorId> sched = sequential_schedule(g);
    ASSERT_TRUE(g.analyses()->is_cached<RepetitionVectorAnalysis>());
    ASSERT_TRUE(g.analyses()->is_cached<SequentialScheduleAnalysis>());
    EXPECT_EQ(*g.analyses()->cached<RepetitionVectorAnalysis>(), reps);
    EXPECT_EQ(*g.analyses()->cached<SequentialScheduleAnalysis>(), sched);
    // Repeated queries serve the cached values (hit counters move).
    EXPECT_EQ(repetition_vector(g), reps);
    EXPECT_EQ(sequential_schedule(g), sched);
    for (const AnalysisSlotStats& slot : g.analyses()->stats()) {
        if (slot.analysis == "repetition" || slot.analysis == "schedule") {
            EXPECT_EQ(slot.misses, 1u) << slot.analysis;
            EXPECT_GE(slot.hits, 1u) << slot.analysis;
        }
    }
}

TEST(AnalysisManager, StructuralMutationInvalidatesTheCache) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    g.add_channel(a, a, 1);
    EXPECT_EQ(repetition_vector(g), (std::vector<Int>{1}));

    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 2, 1, 0);   // a produces 2, b consumes 1 => b fires twice
    g.add_channel(b, b, 1);
    EXPECT_EQ(repetition_vector(g), (std::vector<Int>{1, 2}));

    // Retuning a token count is delta-aware: the repetition vector depends
    // on rates only and survives, and a token INCREASE keeps the cached
    // schedule (more tokens never disable a firing).  A token decrease that
    // breaks the order drops the schedule for lazy recomputation.
    sequential_schedule(g);
    g.set_initial_tokens(1, 2);
    EXPECT_TRUE(g.analyses()->is_cached<RepetitionVectorAnalysis>());
    EXPECT_TRUE(g.analyses()->is_cached<SequentialScheduleAnalysis>());
    EXPECT_TRUE(validate_schedule(g, *g.analyses()->cached<SequentialScheduleAnalysis>()));
    g.set_initial_tokens(0, 0);  // the self-loop token a->a: deadlocks a
    EXPECT_TRUE(g.analyses()->is_cached<RepetitionVectorAnalysis>());
    EXPECT_FALSE(g.analyses()->is_cached<SequentialScheduleAnalysis>());
}

TEST(AnalysisManager, ExecutionTimeRetuningKeepsTheUntimedSlots) {
    // Repetition vector and admissible schedule are untimed properties, so
    // the DSE-style loop "retime, reanalyse" keeps its cache; the timed
    // throughput slot (filled via cached_throughput in src/analysis) must
    // not survive — covered in test_pass.cpp where that layer is linked.
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    g.add_channel(a, a, 1);
    repetition_vector(g);
    g.set_execution_time(a, 99);
    EXPECT_TRUE(g.analyses()->is_cached<RepetitionVectorAnalysis>());
}

TEST(AnalysisManager, CopiesShareUntilEitherSideMutates) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    g.add_channel(a, a, 1);
    repetition_vector(g);

    Graph copy = g;  // shares the manager snapshot
    EXPECT_EQ(copy.analyses(), g.analyses());
    const ActorId b = copy.add_actor("b", 1);
    copy.add_channel(b, b, 1);
    // The copy recomputes under its own (fresh) manager...
    EXPECT_NE(copy.analyses(), g.analyses());
    EXPECT_EQ(repetition_vector(copy), (std::vector<Int>{1, 1}));
    // ...and the original still serves its cached single-actor answer.
    EXPECT_EQ(repetition_vector(g), (std::vector<Int>{1}));
    ASSERT_TRUE(g.analyses()->is_cached<RepetitionVectorAnalysis>());
    EXPECT_EQ(g.analyses()->cached<RepetitionVectorAnalysis>()->size(), 1u);
}

TEST(AnalysisManager, AdoptMovesNamedSlotsAcrossManagers) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    g.add_channel(a, a, 1);
    repetition_vector(g);
    sequential_schedule(g);

    AnalysisManager fresh;
    fresh.adopt(*g.analyses(), {"repetition"});
    EXPECT_TRUE(fresh.is_cached<RepetitionVectorAnalysis>());
    EXPECT_FALSE(fresh.is_cached<SequentialScheduleAnalysis>());
    EXPECT_EQ(*fresh.cached<RepetitionVectorAnalysis>(), repetition_vector(g));

    AnalysisManager everything;
    everything.adopt_all(*g.analyses());
    EXPECT_TRUE(everything.is_cached<SequentialScheduleAnalysis>());
    for (const AnalysisSlotStats& slot : everything.stats()) {
        EXPECT_EQ(slot.adopted, 1u) << slot.analysis;
    }
}

TEST(AnalysisManager, FailuresAreNeverCached) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 2, 1, 0);
    g.add_channel(b, a, 2, 1, 0);  // inconsistent: q(a)*2 == q(b) and q(b)*2 == q(a)
    EXPECT_THROW(repetition_vector(g), InconsistentGraphError);
    EXPECT_FALSE(g.analyses()->is_cached<RepetitionVectorAnalysis>());
    // The derived consistency slot caches its (negative) answer fine.
    EXPECT_FALSE(is_consistent(g));
    EXPECT_TRUE(g.analyses()->is_cached<ConsistencyAnalysis>());
    EXPECT_THROW(repetition_vector(g), InconsistentGraphError);
}

TEST(Channel, Predicates) {
    Channel self{0, 0, 1, 1, 2};
    EXPECT_TRUE(self.is_self_loop());
    EXPECT_TRUE(self.is_homogeneous());
    Channel rated{0, 1, 3, 2, 0};
    EXPECT_FALSE(rated.is_self_loop());
    EXPECT_FALSE(rated.is_homogeneous());
}

}  // namespace
}  // namespace sdf
