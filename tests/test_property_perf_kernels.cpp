// test_property_perf_kernels — differential tests for the performance
// kernels against their reference implementations.
//
// The sparse symbolic engine (MpStamp FIFOs) and the blocked sparsity-aware
// matrix product are optimisations, not reformulations: on every input they
// must produce bit-identical results to the dense engine and the naive
// triple loop they replaced.  These suites hold that equality over hundreds
// of random consistent live SDF graphs from src/gen, which is what makes
// the fast paths safe to keep as the defaults.  The suites also run under
// ASan/UBSan and TSan in CI.
#include <gtest/gtest.h>

#include <random>

#include "gen/random_sdf.hpp"
#include "gen/structured.hpp"
#include "maxplus/matrix.hpp"
#include "transform/symbolic.hpp"

namespace sdf {
namespace {

/// Random-graph count per differential suite; together the two sweeps cover
/// well over 500 graphs.
constexpr int kRandomGraphs = 300;

RandomSdfOptions varied_options(int round) {
    RandomSdfOptions options;
    // Cycle through a few shapes so the sweep hits single-token graphs,
    // rate-heavy graphs and wide graphs rather than one distribution.
    options.min_actors = 3 + round % 3;
    options.max_actors = 5 + round % 5;
    options.max_repetition = 1 + round % 6;
    options.max_rate_scale = 1 + round % 3;
    options.max_execution_time = round % 2 == 0 ? 9 : 1000;
    options.extra_edge_probability = 0.2 + 0.05 * (round % 7);
    options.backward_edge_probability = 0.1 + 0.05 * (round % 5);
    return options;
}

TEST(PerfKernelsProperty, SparseAndDenseSymbolicEnginesAgree) {
    std::mt19937 rng(20090426);  // DAC'09 vintage
    for (int round = 0; round < kRandomGraphs; ++round) {
        const Graph g = random_sdf(rng, varied_options(round));
        const SymbolicIteration sparse = symbolic_iteration(g, SymbolicEngine::sparse);
        const SymbolicIteration dense = symbolic_iteration(g, SymbolicEngine::dense);
        ASSERT_EQ(sparse.tokens.size(), dense.tokens.size()) << "round " << round;
        ASSERT_EQ(sparse.matrix, dense.matrix) << "round " << round;
    }
}

TEST(PerfKernelsProperty, EnginesAgreeOnStructuredFamilies) {
    for (const Graph& g : {chain_graph({3, 1, 4, 1, 5}, 3), fork_join_graph(17, 5, 2),
                           ring_graph(9, 7, 2)}) {
        EXPECT_EQ(symbolic_iteration(g, SymbolicEngine::sparse).matrix,
                  symbolic_iteration(g, SymbolicEngine::dense).matrix);
    }
}

TEST(PerfKernelsProperty, BlockedMultiplyMatchesNaiveOnIterationMatrices) {
    std::mt19937 rng(71830);
    for (int round = 0; round < kRandomGraphs; ++round) {
        const Graph g = random_sdf(rng, varied_options(round));
        const MpMatrix m = symbolic_iteration(g).matrix;
        ASSERT_EQ(m.multiply(m), m.multiply_naive(m)) << "round " << round;
    }
}

/// A random rectangular matrix with the given finite-entry density — the
/// multiply kernels must agree on arbitrary matrices, not just the ones the
/// symbolic execution produces.
MpMatrix random_matrix(std::mt19937& rng, std::size_t rows, std::size_t cols,
                       double density) {
    MpMatrix m(rows, cols);
    std::bernoulli_distribution finite(density);
    std::uniform_int_distribution<Int> value(-50, 50);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if (finite(rng)) {
                m.set(r, c, MpValue(value(rng)));
            }
        }
    }
    return m;
}

TEST(PerfKernelsProperty, BlockedMultiplyMatchesNaiveOnRandomMatrices) {
    std::mt19937 rng(424242);
    std::uniform_int_distribution<std::size_t> dim(1, 40);
    std::uniform_real_distribution<double> density(0.0, 1.0);
    for (int round = 0; round < 200; ++round) {
        const std::size_t rows = dim(rng);
        const std::size_t inner = dim(rng);
        const std::size_t cols = dim(rng);
        const MpMatrix a = random_matrix(rng, rows, inner, density(rng));
        const MpMatrix b = random_matrix(rng, inner, cols, density(rng));
        ASSERT_EQ(a.multiply(b), a.multiply_naive(b)) << "round " << round;
    }
}

TEST(PerfKernelsProperty, BlockedMultiplyCrossesColumnBlockBoundary) {
    // The blocked kernel tiles columns in blocks of 512; a 1030-column
    // product exercises the partial last block and block seams.
    const Graph g = fork_join_graph(1024, 5, 4);
    const MpMatrix m = symbolic_iteration(g).matrix;
    EXPECT_EQ(m.multiply(m), m.multiply_naive(m));
}

TEST(PerfKernelsProperty, PowerComposesLikeRepeatedMultiplication) {
    std::mt19937 rng(1618);
    for (int round = 0; round < 40; ++round) {
        const Graph g = random_sdf(rng, varied_options(round));
        const MpMatrix m = symbolic_iteration(g).matrix;
        EXPECT_EQ(m.power(0), MpMatrix::identity(m.rows())) << "round " << round;
        EXPECT_EQ(m.power(1), m) << "round " << round;
        EXPECT_EQ(m.power(2), m.multiply_naive(m)) << "round " << round;
        EXPECT_EQ(m.power(5),
                  m.multiply_naive(m).multiply_naive(m).multiply_naive(m).multiply_naive(m))
            << "round " << round;
    }
}

TEST(PerfKernelsProperty, SymbolicPowerMatchesMatrixPower) {
    std::mt19937 rng(3141);
    for (int round = 0; round < 25; ++round) {
        const Graph g = random_sdf(rng, varied_options(round));
        const MpMatrix one = symbolic_iteration(g).matrix;
        EXPECT_EQ(symbolic_iteration_power(g, 0), MpMatrix::identity(one.rows()));
        EXPECT_EQ(symbolic_iteration_power(g, 1), one);
        EXPECT_EQ(symbolic_iteration_power(g, 3), one.power(3));
    }
}

TEST(PerfKernelsProperty, DensityCountsFiniteEntries) {
    MpMatrix m(2, 5);
    EXPECT_DOUBLE_EQ(m.density(), 0.0);
    m.set(0, 0, MpValue(1));
    m.set(1, 4, MpValue(-3));
    EXPECT_DOUBLE_EQ(m.density(), 0.2);
}

}  // namespace
}  // namespace sdf
