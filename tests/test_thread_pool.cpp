// test_thread_pool — the chunked parallel-for pool under base/.
//
// The pool backs the blocked matrix product, the per-SCC Karp dispatch and
// the benchmark sweeps, so these tests pin down the contract those callers
// rely on: every index runs exactly once, exceptions propagate to the
// caller after the loop drains, nested loops degrade to inline execution,
// and concurrent callers serialise without deadlock.  Explicit pool sizes
// are used throughout so the tests exercise real worker threads even on a
// single-core host (where the global pool runs everything inline).
#include "base/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace sdf {
namespace {

TEST(ThreadPool, SizeZeroClampsToOne) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, SizeIncludesCaller) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
    for (const std::size_t threads : {1u, 2u, 4u}) {
        ThreadPool pool(threads);
        constexpr std::size_t kCount = 10'000;
        std::vector<std::atomic<int>> hits(kCount);
        pool.parallel_for(0, kCount, 7, [&](std::size_t i) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < kCount; ++i) {
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
        }
    }
}

TEST(ThreadPool, RespectsHalfOpenRange) {
    ThreadPool pool(3);
    std::mutex mutex;
    std::set<std::size_t> seen;
    pool.parallel_for(5, 25, 4, [&](std::size_t i) {
        const std::lock_guard<std::mutex> lock(mutex);
        seen.insert(i);
    });
    EXPECT_EQ(seen.size(), 20u);
    EXPECT_EQ(*seen.begin(), 5u);
    EXPECT_EQ(*seen.rbegin(), 24u);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallel_for(3, 3, 1, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, PropagatesFirstException) {
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    EXPECT_THROW(
        pool.parallel_for(0, 1000, 1,
                          [&](std::size_t i) {
                              calls.fetch_add(1);
                              if (i == 17) {
                                  throw std::runtime_error("boom");
                              }
                          }),
        std::runtime_error);
    // The throw drains the cursor: well under the full range runs, and the
    // pool is reusable afterwards.
    std::atomic<int> after{0};
    pool.parallel_for(0, 64, 8, [&](std::size_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 64);
}

TEST(ThreadPool, NestedLoopsRunInline) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64 * 64);
    pool.parallel_for(0, 64, 1, [&](std::size_t outer) {
        // A nested call on the same pool must not deadlock waiting for the
        // outer loop's slot; it runs inline on this thread.
        pool.parallel_for(0, 64, 1, [&](std::size_t inner) {
            hits[outer * 64 + inner].fetch_add(1);
        });
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
    }
}

TEST(ThreadPool, ConcurrentCallersSerialiseWithoutDeadlock) {
    ThreadPool pool(3);
    constexpr std::size_t kCallers = 4;
    constexpr std::size_t kCount = 2'000;
    std::vector<std::atomic<int>> hits(kCallers * kCount);
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (std::size_t c = 0; c < kCallers; ++c) {
        callers.emplace_back([&, c] {
            pool.parallel_for(0, kCount, 16, [&, c](std::size_t i) {
                hits[c * kCount + i].fetch_add(1);
            });
        });
    }
    for (std::thread& t : callers) {
        t.join();
    }
    for (std::size_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
    }
}

TEST(ThreadPool, LargeGrainRunsInlineOnCaller) {
    ThreadPool pool(4);
    const std::thread::id caller = std::this_thread::get_id();
    std::mutex mutex;
    std::set<std::thread::id> ids;
    // range <= grain → the inline fast path, no worker hand-off.
    pool.parallel_for(0, 8, 8, [&](std::size_t) {
        const std::lock_guard<std::mutex> lock(mutex);
        ids.insert(std::this_thread::get_id());
    });
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(*ids.begin(), caller);
}

TEST(ThreadPool, SubmittedTasksAllRun) {
    ThreadPool pool(4);
    constexpr std::size_t kTasks = 500;
    std::vector<std::atomic<int>> hits(kTasks);
    for (std::size_t i = 0; i < kTasks; ++i) {
        pool.submit([&hits, i] { hits[i].fetch_add(1); });
    }
    pool.drain();
    for (std::size_t i = 0; i < kTasks; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "task " << i;
    }
}

TEST(ThreadPool, DrainWaitsForInFlightTasks) {
    ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 16; ++i) {
        pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            done.fetch_add(1);
        });
    }
    pool.drain();
    // drain() returning means every task finished, not merely dequeued.
    EXPECT_EQ(done.load(), 16);
    EXPECT_EQ(pool.pending_tasks(), 0u);
}

TEST(ThreadPool, DrainOnIdlePoolReturnsImmediately) {
    ThreadPool pool(2);
    pool.drain();  // nothing submitted: must not block
    EXPECT_EQ(pool.pending_tasks(), 0u);
}

TEST(ThreadPool, PoolIsReusableAfterDrain) {
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.submit([&calls] { calls.fetch_add(1); });
    pool.drain();
    pool.submit([&calls] { calls.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(calls.load(), 2);
}

TEST(ThreadPool, SingleLanePoolRunsTasksInline) {
    ThreadPool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::thread::id ran_on;
    pool.submit([&ran_on] { ran_on = std::this_thread::get_id(); });
    // A 1-lane pool has no workers: submit is synchronous on the caller,
    // so the task already ran and drain is a no-op.
    EXPECT_EQ(ran_on, caller);
    pool.drain();
}

TEST(ThreadPool, TasksMayRunParallelForLoops) {
    ThreadPool pool(4);
    constexpr std::size_t kTasks = 8;
    constexpr std::size_t kCount = 256;
    std::vector<std::atomic<int>> hits(kTasks * kCount);
    for (std::size_t t = 0; t < kTasks; ++t) {
        pool.submit([&pool, &hits, t] {
            pool.parallel_for(0, kCount, 16, [&hits, t](std::size_t i) {
                hits[t * kCount + i].fetch_add(1);
            });
        });
    }
    pool.drain();
    for (std::size_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
    }
}

TEST(ThreadPool, DestructionCompletesQueuedTasks) {
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i) {
            pool.submit([&done] { done.fetch_add(1); });
        }
        // No drain: the destructor must still run every queued task before
        // retiring the workers.
    }
    EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, ConcurrentSubmittersAndDrain) {
    ThreadPool pool(4);
    constexpr std::size_t kSubmitters = 4;
    constexpr std::size_t kPer = 200;
    std::atomic<int> done{0};
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (std::size_t s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&pool, &done] {
            for (std::size_t i = 0; i < kPer; ++i) {
                pool.submit([&done] { done.fetch_add(1); });
            }
        });
    }
    for (std::thread& t : submitters) {
        t.join();
    }
    pool.drain();
    EXPECT_EQ(done.load(), static_cast<int>(kSubmitters * kPer));
}

TEST(ThreadPool, GlobalPoolExistsAndRuns) {
    EXPECT_GE(global_thread_pool().size(), 1u);
    std::atomic<int> sum{0};
    parallel_for(0, 100, 10, [&](std::size_t i) {
        sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 4950);
}

}  // namespace
}  // namespace sdf
