// Unit + property tests for csdf/hsdf.hpp — the classical firing-level
// expansion of CSDF graphs, cross-validated against the symbolic route.
#include "csdf/hsdf.hpp"

#include <gtest/gtest.h>

#include <random>

#include "analysis/throughput.hpp"
#include "csdf/analysis.hpp"
#include "gen/random_sdf.hpp"
#include "maxplus/mcm.hpp"
#include "sdf/properties.hpp"
#include "transform/hsdf_classic.hpp"

namespace sdf {
namespace {

CsdfGraph three_phase_loop() {
    CsdfGraph g("loop");
    const CsdfActorId a = g.add_actor("a", {3, 1, 2});
    g.add_channel(a, a, {1, 1, 1}, {1, 1, 1}, 1);
    return g;
}

TEST(CsdfHsdf, ActorCountEqualsIterationLength) {
    const CsdfGraph g = three_phase_loop();
    EXPECT_EQ(csdf_iteration_length(g), 3);
    const CsdfClassicHsdf h = csdf_to_hsdf_classic(g);
    EXPECT_EQ(h.graph.actor_count(), 3u);
    EXPECT_TRUE(h.graph.is_homogeneous());
    // Copy names carry firing and phase.
    EXPECT_TRUE(h.graph.find_actor("a#0.0").has_value());
    EXPECT_TRUE(h.graph.find_actor("a#2.2").has_value());
    // Phase times transferred.
    EXPECT_EQ(h.graph.actor(h.copy_of[0][0]).execution_time, 3);
    EXPECT_EQ(h.graph.actor(h.copy_of[0][2]).execution_time, 2);
}

TEST(CsdfHsdf, SelfLoopSerialisesPhases) {
    const CsdfClassicHsdf h = csdf_to_hsdf_classic(three_phase_loop());
    // Phase firings chain 0 -> 1 -> 2 with the wrap edge carrying the token.
    const CycleMetric mcr = max_cycle_ratio_exact(dependency_digraph(h.graph));
    ASSERT_TRUE(mcr.is_finite());
    EXPECT_EQ(mcr.value, Rational(6));  // 3+1+2 per token
}

TEST(CsdfHsdf, MultiActorPeriodsMatchSymbolicRoute) {
    CsdfGraph g("two_phase");
    const CsdfActorId a = g.add_actor("a", {2, 4});
    const CsdfActorId b = g.add_actor("b", {5});
    g.add_channel(a, b, {1, 2}, {3}, 0);
    g.add_channel(b, a, {3}, {1, 2}, 3);
    const CsdfThroughput symbolic = csdf_throughput(g);
    ASSERT_FALSE(symbolic.deadlocked);
    const CsdfClassicHsdf h = csdf_to_hsdf_classic(g);
    const CycleMetric mcr = max_cycle_ratio_exact(dependency_digraph(h.graph));
    ASSERT_TRUE(mcr.is_finite());
    EXPECT_EQ(mcr.value, symbolic.period);
}

TEST(CsdfHsdf, ZeroRatePhasesProduceNoEdges) {
    // Producer emits only in phase 1; consumer only consumes in phase 0.
    CsdfGraph g("zeros");
    const CsdfActorId a = g.add_actor("a", {1, 2});
    const CsdfActorId b = g.add_actor("b", {3, 4});
    g.add_channel(a, b, {0, 2}, {2, 0}, 2);
    g.add_channel(b, a, {2, 0}, {0, 2}, 2);
    const CsdfThroughput symbolic = csdf_throughput(g);
    ASSERT_FALSE(symbolic.deadlocked);
    const CsdfClassicHsdf h = csdf_to_hsdf_classic(g);
    const CycleMetric mcr = max_cycle_ratio_exact(dependency_digraph(h.graph));
    ASSERT_TRUE(mcr.is_finite());
    EXPECT_EQ(mcr.value, symbolic.period);
}

class CsdfHsdfProperty : public ::testing::TestWithParam<int> {};

TEST_P(CsdfHsdfProperty, SinglePhaseEmbeddingMatchesSdfExpansion) {
    // For single-phase CSDF graphs the expansion must coincide with the
    // SDF classical conversion (same actor count, same period).
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    const Graph g = random_sdf(rng);
    const CsdfGraph embedded = csdf_from_sdf(g);
    const CsdfClassicHsdf csdf_side = csdf_to_hsdf_classic(embedded);
    const ClassicHsdf sdf_side = to_hsdf_classic(g);
    EXPECT_EQ(csdf_side.graph.actor_count(), sdf_side.graph.actor_count());
    const CycleMetric a = max_cycle_ratio_exact(dependency_digraph(csdf_side.graph));
    const CycleMetric b = max_cycle_ratio_exact(dependency_digraph(sdf_side.graph));
    ASSERT_EQ(a.outcome, b.outcome);
    if (a.is_finite()) {
        EXPECT_EQ(a.value, b.value);
    }
}

TEST_P(CsdfHsdfProperty, RandomPhaseSplitsKeepRoutesInAgreement) {
    // Split every actor of a random HSDF into 1-3 phases whose times sum to
    // the original and whose rates split the unit rate across phases (one
    // phase does the I/O); both CSDF routes must agree with each other.
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 400);
    const Graph g = random_hsdf(rng);
    std::uniform_int_distribution<Int> phases_of(1, 3);
    CsdfGraph split(g.name() + "_split");
    std::vector<Int> io_phase(g.actor_count());
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        const Int phases = phases_of(rng);
        std::vector<Int> times(static_cast<std::size_t>(phases), 0);
        times[static_cast<std::size_t>(rng() % phases)] = g.actor(a).execution_time;
        io_phase[a] = static_cast<Int>(rng() % phases);
        split.add_actor(g.actor(a).name, times);
    }
    for (const Channel& ch : g.channels()) {
        std::vector<Int> prod(split.actor(ch.src).phase_count(), 0);
        std::vector<Int> cons(split.actor(ch.dst).phase_count(), 0);
        prod[static_cast<std::size_t>(io_phase[ch.src])] = 1;
        cons[static_cast<std::size_t>(io_phase[ch.dst])] = 1;
        split.add_channel(ch.src, ch.dst, prod, cons, ch.initial_tokens);
    }
    if (!csdf_is_live(split)) {
        return;  // phase ordering can introduce deadlock; fine
    }
    const CsdfThroughput symbolic = csdf_throughput(split);
    const CsdfClassicHsdf h = csdf_to_hsdf_classic(split);
    const CycleMetric mcr = max_cycle_ratio_exact(dependency_digraph(h.graph));
    if (symbolic.unbounded) {
        EXPECT_NE(mcr.outcome, CycleOutcome::infinite);
        if (mcr.is_finite()) {
            EXPECT_EQ(mcr.value, Rational(0));
        }
    } else {
        ASSERT_FALSE(symbolic.deadlocked);
        ASSERT_TRUE(mcr.is_finite());
        EXPECT_EQ(mcr.value, symbolic.period);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsdfHsdfProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace sdf
