// Unit tests for maxplus/mcm.hpp: Karp's max cycle mean, the exact
// Stern–Brocot max cycle ratio, and Howard's floating-point solver —
// including cross-validation on random graphs.
#include "maxplus/mcm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace sdf {
namespace {

Digraph triangle(Int w01, Int w12, Int w20) {
    Digraph g(3);
    g.add_edge(0, 1, w01, 1);
    g.add_edge(1, 2, w12, 1);
    g.add_edge(2, 0, w20, 1);
    return g;
}

TEST(Karp, SimpleCycle) {
    const CycleMetric m = max_cycle_mean_karp(triangle(1, 2, 3));
    ASSERT_TRUE(m.is_finite());
    EXPECT_EQ(m.value, Rational(2));  // (1+2+3)/3
}

TEST(Karp, PicksMaximumCycle) {
    Digraph g = triangle(1, 2, 3);
    g.add_edge(0, 0, 5, 1);  // self-loop mean 5 > 2
    const CycleMetric m = max_cycle_mean_karp(g);
    ASSERT_TRUE(m.is_finite());
    EXPECT_EQ(m.value, Rational(5));
}

TEST(Karp, AcyclicHasNoCycle) {
    Digraph g(3);
    g.add_edge(0, 1, 10, 0);
    g.add_edge(1, 2, 10, 0);
    EXPECT_EQ(max_cycle_mean_karp(g).outcome, CycleOutcome::no_cycle);
}

TEST(Karp, MultipleSccs) {
    Digraph g(5);
    // SCC {0,1} with mean 3/2; SCC {2,3} with mean 7/2; node 4 acyclic.
    g.add_edge(0, 1, 1, 1);
    g.add_edge(1, 0, 2, 1);
    g.add_edge(2, 3, 3, 1);
    g.add_edge(3, 2, 4, 1);
    g.add_edge(1, 2, 100, 1);  // cross edge, on no cycle
    g.add_edge(3, 4, 100, 1);
    const CycleMetric m = max_cycle_mean_karp(g);
    ASSERT_TRUE(m.is_finite());
    EXPECT_EQ(m.value, Rational(7, 2));
}

TEST(Karp, ParallelEdgesAndNegativeWeights) {
    Digraph g(2);
    g.add_edge(0, 1, -3, 1);
    g.add_edge(0, 1, -1, 1);
    g.add_edge(1, 0, -2, 1);
    const CycleMetric m = max_cycle_mean_karp(g);
    ASSERT_TRUE(m.is_finite());
    EXPECT_EQ(m.value, Rational(-3, 2));  // (-1 + -2)/2
}

TEST(ZeroTokenCycle, Detection) {
    Digraph g(2);
    g.add_edge(0, 1, 1, 0);
    EXPECT_FALSE(has_zero_token_cycle(g));
    g.add_edge(1, 0, 1, 1);
    EXPECT_FALSE(has_zero_token_cycle(g));
    g.add_edge(1, 0, 1, 0);
    EXPECT_TRUE(has_zero_token_cycle(g));
}

TEST(PositiveCycleOracle, MatchesHandComputation) {
    // Cycle weight 6, tokens 3: ratio 2.  Reweight q*w - p*d positive
    // exactly when p/q < 2.
    const Digraph g = triangle(1, 2, 3);
    EXPECT_TRUE(has_positive_cycle(g, 1, 1));    // 1 < 2
    EXPECT_TRUE(has_positive_cycle(g, 19, 10));  // 1.9 < 2
    EXPECT_FALSE(has_positive_cycle(g, 2, 1));   // at the ratio: zero, not positive
    EXPECT_FALSE(has_positive_cycle(g, 21, 10));
    EXPECT_TRUE(has_zero_cycle(g, 2, 1));
    EXPECT_FALSE(has_zero_cycle(g, 21, 10));
    EXPECT_THROW(has_zero_cycle(g, 1, 1), ArithmeticError);
}

TEST(CycleRatio, SimpleRatios) {
    Digraph g(2);
    g.add_edge(0, 1, 5, 1);
    g.add_edge(1, 0, 2, 2);
    const CycleMetric m = max_cycle_ratio_exact(g);
    ASSERT_TRUE(m.is_finite());
    EXPECT_EQ(m.value, Rational(7, 3));
}

TEST(CycleRatio, ChoosesMaximumAmongCycles) {
    Digraph g(3);
    g.add_edge(0, 1, 10, 1);
    g.add_edge(1, 0, 0, 1);    // ratio 5
    g.add_edge(1, 2, 7, 1);
    g.add_edge(2, 1, 7, 2);    // ratio 14/3
    g.add_edge(2, 2, 9, 2);    // ratio 9/2
    const CycleMetric m = max_cycle_ratio_exact(g);
    ASSERT_TRUE(m.is_finite());
    EXPECT_EQ(m.value, Rational(5));
}

TEST(CycleRatio, ZeroWeightCycle) {
    Digraph g(2);
    g.add_edge(0, 1, 0, 1);
    g.add_edge(1, 0, 0, 1);
    const CycleMetric m = max_cycle_ratio_exact(g);
    ASSERT_TRUE(m.is_finite());
    EXPECT_EQ(m.value, Rational(0));
}

TEST(CycleRatio, InfiniteOnZeroTokenCycle) {
    Digraph g(2);
    g.add_edge(0, 1, 1, 0);
    g.add_edge(1, 0, 1, 0);
    EXPECT_EQ(max_cycle_ratio_exact(g).outcome, CycleOutcome::infinite);
}

TEST(CycleRatio, NoCycle) {
    Digraph g(2);
    g.add_edge(0, 1, 1, 1);
    EXPECT_EQ(max_cycle_ratio_exact(g).outcome, CycleOutcome::no_cycle);
}

TEST(CycleRatio, RejectsNegativeWeights) {
    Digraph g(1);
    g.add_edge(0, 0, -1, 1);
    EXPECT_THROW(max_cycle_ratio_exact(g), ArithmeticError);
}

TEST(CycleRatio, AwkwardFraction) {
    // Ratio 97/89 forces a deep Stern–Brocot descent.
    Digraph g(1);
    g.add_edge(0, 0, 97, 89);
    const CycleMetric m = max_cycle_ratio_exact(g);
    ASSERT_TRUE(m.is_finite());
    EXPECT_EQ(m.value, Rational(97, 89));
}

TEST(CycleRatio, AgreesWithKarpOnUnitTokenGraphs) {
    std::mt19937 rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 2 + rng() % 5;
        Digraph g(n);
        for (std::size_t i = 0; i < n; ++i) {
            g.add_edge(i, (i + 1) % n, static_cast<Int>(rng() % 20), 1);
        }
        for (int extra = 0; extra < 4; ++extra) {
            g.add_edge(rng() % n, rng() % n, static_cast<Int>(rng() % 20), 1);
        }
        const CycleMetric karp = max_cycle_mean_karp(g);
        const CycleMetric ratio = max_cycle_ratio_exact(g);
        ASSERT_TRUE(karp.is_finite());
        ASSERT_TRUE(ratio.is_finite());
        EXPECT_EQ(karp.value, ratio.value);
    }
}

TEST(Howard, MatchesExactSolverOnRandomGraphs) {
    std::mt19937 rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 2 + rng() % 6;
        Digraph g(n);
        for (std::size_t i = 0; i < n; ++i) {
            g.add_edge(i, (i + 1) % n, static_cast<Int>(rng() % 30),
                       static_cast<Int>(1 + rng() % 3));
        }
        for (int extra = 0; extra < 5; ++extra) {
            g.add_edge(rng() % n, rng() % n, static_cast<Int>(rng() % 30),
                       static_cast<Int>(1 + rng() % 3));
        }
        const CycleMetric exact = max_cycle_ratio_exact(g);
        const CycleMetricDouble howard = max_cycle_ratio_howard(g);
        ASSERT_TRUE(exact.is_finite());
        ASSERT_EQ(howard.outcome, CycleOutcome::finite);
        EXPECT_NEAR(howard.value, exact.value.to_double(), 1e-6);
    }
}

TEST(Howard, OutcomesMatchExactSolver) {
    Digraph acyclic(2);
    acyclic.add_edge(0, 1, 1, 1);
    EXPECT_EQ(max_cycle_ratio_howard(acyclic).outcome, CycleOutcome::no_cycle);

    Digraph dead(2);
    dead.add_edge(0, 1, 1, 0);
    dead.add_edge(1, 0, 1, 0);
    EXPECT_EQ(max_cycle_ratio_howard(dead).outcome, CycleOutcome::infinite);
}

}  // namespace
}  // namespace sdf
