// Unit tests for base/digraph.hpp.
#include "base/digraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "base/errors.hpp"

namespace sdf {
namespace {

TEST(Digraph, AddNodesAndEdges) {
    Digraph g(3);
    EXPECT_EQ(g.node_count(), 3u);
    EXPECT_EQ(g.add_node(), 3u);
    g.add_edge(0, 1, 5, 2);
    EXPECT_EQ(g.edge_count(), 1u);
    EXPECT_EQ(g.edge(0).weight, 5);
    EXPECT_EQ(g.edge(0).tokens, 2);
    EXPECT_THROW(g.add_edge(0, 9), InvalidGraphError);
}

TEST(Digraph, OutEdgesGroupsByingSource) {
    Digraph g(3);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(2, 1);
    const auto out = g.out_edges();
    EXPECT_EQ(out[0].size(), 2u);
    EXPECT_EQ(out[1].size(), 0u);
    EXPECT_EQ(out[2].size(), 1u);
}

TEST(Digraph, SccOfDag) {
    Digraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    std::size_t count = 0;
    const auto comp = g.strongly_connected_components(&count);
    EXPECT_EQ(count, 4u);
    // Components are in reverse topological order: edges go from higher
    // component index to lower.
    for (const auto& e : g.edges()) {
        EXPECT_GT(comp[e.from], comp[e.to]);
    }
}

TEST(Digraph, SccOfCycleAndTail) {
    Digraph g(5);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    g.add_edge(2, 3);
    g.add_edge(3, 4);
    std::size_t count = 0;
    const auto comp = g.strongly_connected_components(&count);
    EXPECT_EQ(count, 3u);
    EXPECT_EQ(comp[0], comp[1]);
    EXPECT_EQ(comp[1], comp[2]);
    EXPECT_NE(comp[2], comp[3]);
    EXPECT_NE(comp[3], comp[4]);
}

TEST(Digraph, SccHandlesDeepChainIteratively) {
    // A 100k-node cycle would overflow the stack with recursive Tarjan.
    const std::size_t n = 100000;
    Digraph g(n);
    for (std::size_t i = 0; i < n; ++i) {
        g.add_edge(i, (i + 1) % n);
    }
    std::size_t count = 0;
    g.strongly_connected_components(&count);
    EXPECT_EQ(count, 1u);
}

TEST(Digraph, HasCycleDetectsSelfLoop) {
    Digraph g(2);
    g.add_edge(0, 1);
    EXPECT_FALSE(g.has_cycle());
    g.add_edge(1, 1);
    EXPECT_TRUE(g.has_cycle());
}

TEST(Digraph, HasCycleDetectsLongCycle) {
    Digraph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    EXPECT_FALSE(g.has_cycle());
    g.add_edge(2, 0);
    EXPECT_TRUE(g.has_cycle());
}

TEST(Digraph, TopologicalOrderRespectsEdges) {
    Digraph g(4);
    g.add_edge(3, 1);
    g.add_edge(1, 0);
    g.add_edge(3, 2);
    g.add_edge(2, 0);
    const auto order = g.topological_order();
    ASSERT_EQ(order.size(), 4u);
    std::vector<std::size_t> position(4);
    for (std::size_t i = 0; i < order.size(); ++i) {
        position[order[i]] = i;
    }
    for (const auto& e : g.edges()) {
        EXPECT_LT(position[e.from], position[e.to]);
    }
}

TEST(Digraph, TopologicalOrderRejectsCycle) {
    Digraph g(2);
    g.add_edge(0, 1);
    g.add_edge(1, 0);
    EXPECT_THROW(g.topological_order(), InvalidGraphError);
}

TEST(Digraph, EmptyGraph) {
    Digraph g;
    EXPECT_FALSE(g.has_cycle());
    EXPECT_TRUE(g.topological_order().empty());
    std::size_t count = 99;
    g.strongly_connected_components(&count);
    EXPECT_EQ(count, 0u);
}

}  // namespace
}  // namespace sdf
