// Tests for the shipped benchmark files in data/: they must load, match
// the in-code generators exactly, and survive the full analysis pipeline.
// SDFRED_DATA_DIR is injected by the build system.
#include <gtest/gtest.h>

#include "analysis/throughput.hpp"
#include "gen/benchmarks.hpp"
#include "gen/regular.hpp"
#include "io/text.hpp"
#include "io/xml.hpp"
#include "sdf/repetition.hpp"
#include "transform/compare.hpp"

namespace sdf {
namespace {

const std::string kDataDir = SDFRED_DATA_DIR;

TEST(DataFiles, BenchmarksMatchGenerators) {
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        const Graph loaded = read_xml_file(kDataDir + "/" + bench.graph.name() + ".xml");
        EXPECT_TRUE(structurally_equal(loaded, bench.graph)) << bench.label;
        EXPECT_EQ(iteration_length(loaded), bench.paper_traditional) << bench.label;
    }
}

TEST(DataFiles, RegularExamplesMatchGenerators) {
    const Graph fig1 = read_text_file(kDataDir + "/figure1_n6.sdf");
    EXPECT_TRUE(structurally_equal(fig1, figure1_graph(6)));
    EXPECT_EQ(iteration_period(fig1), Rational(23));

    const Graph prefetch = read_text_file(kDataDir + "/prefetch_n8.sdf");
    EXPECT_TRUE(structurally_equal(prefetch, prefetch_graph(8)));
}

TEST(DataFiles, LoadedGraphsAnalyseCleanly) {
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        const Graph loaded = read_xml_file(kDataDir + "/" + bench.graph.name() + ".xml");
        const ThroughputResult t = throughput_symbolic(loaded);
        EXPECT_TRUE(t.is_finite()) << bench.label;
        EXPECT_EQ(t.period, throughput_symbolic(bench.graph).period) << bench.label;
    }
}

}  // namespace
}  // namespace sdf
