// Unit tests for transform/hsdf_classic.hpp — the traditional conversion
// [11, 15] that Table 1 uses as the baseline.
#include "transform/hsdf_classic.hpp"

#include <gtest/gtest.h>

#include "gen/benchmarks.hpp"
#include "sdf/repetition.hpp"

namespace sdf {
namespace {

TEST(HsdfClassic, HomogeneousGraphIsUnchangedStructurally) {
    Graph g;
    const ActorId a = g.add_actor("a", 2);
    const ActorId b = g.add_actor("b", 3);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 1);
    const ClassicHsdf h = to_hsdf_classic(g);
    EXPECT_EQ(h.graph.actor_count(), 2u);
    EXPECT_EQ(h.graph.channel_count(), 2u);
    EXPECT_TRUE(h.graph.is_homogeneous());
    EXPECT_EQ(h.graph.actor(h.copy_of[a][0]).name, "a#0");
    EXPECT_EQ(h.graph.actor(h.copy_of[a][0]).execution_time, 2);
}

TEST(HsdfClassic, ActorCountEqualsIterationLength) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 2, 3, 0);
    const ClassicHsdf h = to_hsdf_classic(g);
    EXPECT_EQ(static_cast<Int>(h.graph.actor_count()), iteration_length(g));  // 5
}

TEST(HsdfClassic, RateTwoChannelDependencies) {
    // a produces 2, b consumes 1: q = (1, 2); both b copies depend on a#0.
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 2, 1, 0);
    const ClassicHsdf h = to_hsdf_classic(g);
    ASSERT_EQ(h.graph.actor_count(), 3u);
    ASSERT_EQ(h.graph.channel_count(), 2u);
    for (const Channel& ch : h.graph.channels()) {
        EXPECT_EQ(ch.src, h.copy_of[a][0]);
        EXPECT_EQ(ch.initial_tokens, 0);
    }
}

TEST(HsdfClassic, InitialTokensBecomeIterationDelays) {
    // Self-loop with 1 token on a single-firing actor: copy depends on its
    // own previous iteration.
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    g.add_channel(a, a, 1);
    const ClassicHsdf h = to_hsdf_classic(g);
    ASSERT_EQ(h.graph.channel_count(), 1u);
    EXPECT_EQ(h.graph.channel(0).initial_tokens, 1);
    EXPECT_TRUE(h.graph.channel(0).is_self_loop());
}

TEST(HsdfClassic, SelfLoopSerialisesMultipleFirings) {
    // q(a) = 2 with one self-loop token: a#1 depends on a#0 (same
    // iteration), a#0 on a#1 of the previous iteration.
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 1, 2, 0);
    g.add_channel(a, a, 1, 1, 1);
    const ClassicHsdf h = to_hsdf_classic(g);
    bool found_forward = false;
    bool found_wrap = false;
    for (const Channel& ch : h.graph.channels()) {
        if (ch.src == h.copy_of[a][0] && ch.dst == h.copy_of[a][1]) {
            EXPECT_EQ(ch.initial_tokens, 0);
            found_forward = true;
        }
        if (ch.src == h.copy_of[a][1] && ch.dst == h.copy_of[a][0]) {
            EXPECT_EQ(ch.initial_tokens, 1);
            found_wrap = true;
        }
    }
    EXPECT_TRUE(found_forward);
    EXPECT_TRUE(found_wrap);
}

TEST(HsdfClassic, MultiTokenChannelSplitsDependencies) {
    // Paper Figure 3 shape: left (q=2) -> right (q=1) with feedback.
    Graph g;
    const ActorId left = g.add_actor("left", 3);
    const ActorId right = g.add_actor("right", 1);
    g.add_channel(left, right, 1, 2, 0);
    g.add_channel(right, left, 2, 1, 2);
    const ClassicHsdf h = to_hsdf_classic(g);
    EXPECT_EQ(h.graph.actor_count(), 3u);
    // right#0 consumes both left results of the same iteration.
    Int into_right = 0;
    for (const Channel& ch : h.graph.channels()) {
        if (ch.dst == h.copy_of[right][0]) {
            EXPECT_EQ(ch.initial_tokens, 0);
            ++into_right;
        }
    }
    EXPECT_EQ(into_right, 2);
}

TEST(HsdfClassic, DominatedParallelEdgesDropped) {
    // Channel with d = 3 on q = (1,1): single dependency with delay 3; a
    // second channel with d = 0 gives the tight edge; conversion emits one
    // channel per (src,dst) pair with the minimal delay per channel.
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 1, 1, 3);
    g.add_channel(a, b, 1, 1, 0);
    const ClassicHsdf h = to_hsdf_classic(g);
    // Two original channels -> two converted channels (dedup is per
    // original channel).
    ASSERT_EQ(h.graph.channel_count(), 2u);
}

TEST(HsdfClassic, Table1TraditionalSizes) {
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        const ClassicHsdf h = to_hsdf_classic(bench.graph);
        EXPECT_EQ(static_cast<Int>(h.graph.actor_count()), bench.paper_traditional)
            << bench.label;
        EXPECT_TRUE(h.graph.is_homogeneous()) << bench.label;
    }
}

}  // namespace
}  // namespace sdf
