// Unit tests for gen/structured.hpp — pipelines, fork/join, rings.
#include "gen/structured.hpp"

#include <gtest/gtest.h>

#include "analysis/liveness.hpp"
#include "analysis/sensitivity.hpp"
#include "analysis/storage.hpp"
#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "sdf/properties.hpp"

namespace sdf {
namespace {

TEST(Structured, ChainStructureAndRate) {
    const Graph g = chain_graph({2, 5, 3});
    EXPECT_EQ(g.actor_count(), 3u);
    EXPECT_TRUE(is_live(g));
    EXPECT_TRUE(is_strongly_connected(g));
    // One credit: the whole chain is serialised.
    EXPECT_EQ(iteration_period(g), Rational(10));
    // Enough credits: the slowest self-looped stage binds.
    EXPECT_EQ(iteration_period(chain_graph({2, 5, 3}, 8)), Rational(5));
    EXPECT_THROW(chain_graph({}), InvalidGraphError);
    EXPECT_THROW(chain_graph({1}, 0), InvalidGraphError);
}

TEST(Structured, ChainCreditSweepIsMonotone) {
    Rational previous(1000000);
    for (Int credits = 1; credits <= 6; ++credits) {
        const Rational period = iteration_period(chain_graph({4, 1, 3, 2}, credits));
        EXPECT_LE(period, previous);
        previous = period;
    }
    EXPECT_EQ(previous, Rational(4));  // saturates at the bottleneck stage
}

TEST(Structured, ForkJoinParallelism) {
    const Graph g = fork_join_graph(4, 9);
    EXPECT_EQ(g.actor_count(), 6u);
    EXPECT_TRUE(is_live(g));
    // One frame in flight: fork + worker + join serialise; workers overlap
    // each other.
    EXPECT_EQ(iteration_period(g), Rational(11));
    // Two frames in flight: the worker stage pipelines across frames but
    // each worker's self-loop still serialises it: period 9.
    EXPECT_EQ(iteration_period(fork_join_graph(4, 9, 2)), Rational(9));
    // Sensitivity: with one credit, every worker is critical (all paths run
    // through fork -> worker -> join).
    const SensitivityReport report = sensitivity_analysis(g);
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        EXPECT_TRUE(report.critical[a]) << g.actor(a).name;
    }
    EXPECT_THROW(fork_join_graph(0, 1), InvalidGraphError);
}

TEST(Structured, RingRateScalesWithTokens) {
    for (const Int tokens : {1, 2, 4}) {
        const Graph g = ring_graph(6, 5, tokens);
        EXPECT_EQ(iteration_period(g), Rational(30, tokens));
    }
    EXPECT_THROW(ring_graph(0, 1), InvalidGraphError);
    EXPECT_THROW(ring_graph(3, 1, 0), InvalidGraphError);
}

TEST(Structured, StorageOfAPipelineIsOneTokenPerHop) {
    const Graph g = chain_graph({2, 2, 2}, 1);
    const std::vector<Int> marks = self_timed_storage(g);
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        if (!g.channel(c).is_self_loop()) {
            EXPECT_EQ(marks[c], 1);
        }
    }
}

}  // namespace
}  // namespace sdf
