// Unit tests for transform/prune.hpp, transform/selfloops.hpp and
// transform/compare.hpp.
#include <gtest/gtest.h>

#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "gen/regular.hpp"
#include "transform/compare.hpp"
#include "transform/prune.hpp"
#include "transform/selfloops.hpp"

namespace sdf {
namespace {

TEST(Prune, KeepsMinimumDelayRepresentative) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 1, 1, 5);
    g.add_channel(a, b, 1, 1, 2);
    g.add_channel(a, b, 1, 1, 7);
    EXPECT_EQ(count_redundant_channels(g), 2u);
    const Graph p = prune_redundant_channels(g);
    ASSERT_EQ(p.channel_count(), 1u);
    EXPECT_EQ(p.channel(0).initial_tokens, 2);
}

TEST(Prune, DifferentRatesAreNotParallel) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 1, 1, 5);
    g.add_channel(a, b, 2, 2, 1);  // different rates: kept
    EXPECT_EQ(count_redundant_channels(g), 0u);
    EXPECT_EQ(prune_redundant_channels(g).channel_count(), 2u);
}

TEST(Prune, PreservesTiming) {
    Graph g = figure1_abstract();
    // Add redundant copies of every channel with extra tokens.
    const std::vector<Channel> channels = g.channels();
    for (const Channel& ch : channels) {
        g.add_channel(ch.src, ch.dst, ch.production, ch.consumption,
                      ch.initial_tokens + 3);
    }
    const Graph p = prune_redundant_channels(g);
    EXPECT_EQ(p.channel_count(), channels.size());
    EXPECT_EQ(iteration_period(p), iteration_period(g));
}

TEST(Prune, SelfEdgeExampleFromSection42) {
    // "the self-edge on actor A with three initial tokens is redundant
    // because there is another one with only one token".
    Graph g;
    const ActorId a = g.add_actor("A", 2);
    g.add_channel(a, a, 3);
    g.add_channel(a, a, 1);
    const Graph p = prune_redundant_channels(g);
    ASSERT_EQ(p.channel_count(), 1u);
    EXPECT_EQ(p.channel(0).initial_tokens, 1);
}

TEST(SelfLoops, AddsOnlyWhereMissing) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, a, 2);
    g.add_channel(a, b, 0);
    const Graph s = add_self_loops(g);
    EXPECT_EQ(s.channel_count(), 3u);
    // a keeps its 2-token loop; b gains a 1-token loop.
    Int b_loops = 0;
    for (const Channel& ch : s.channels()) {
        if (ch.is_self_loop() && ch.src == b) {
            EXPECT_EQ(ch.initial_tokens, 1);
            ++b_loops;
        }
    }
    EXPECT_EQ(b_loops, 1);
}

TEST(SelfLoops, RejectsZeroTokens) {
    Graph g;
    g.add_actor("a", 1);
    EXPECT_THROW(add_self_loops(g, 0), InvalidGraphError);
}

TEST(SelfLoops, BoundsThroughputOfSourceActor) {
    Graph g;
    const ActorId a = g.add_actor("a", 4);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 0);
    // Unbounded without loops (no cycles at all).
    EXPECT_EQ(throughput_symbolic(g).outcome, ThroughputOutcome::unbounded);
    const ThroughputResult bounded = throughput_symbolic(add_self_loops(g));
    ASSERT_TRUE(bounded.is_finite());
    EXPECT_EQ(bounded.period, Rational(4));
}

TEST(Compare, CoversConservativelyAcceptsIdentity) {
    const Graph g = figure1_abstract();
    std::vector<ActorId> image{0, 1};
    std::string why;
    EXPECT_TRUE(covers_conservatively(g, g, image, &why)) << why;
}

TEST(Compare, CoversDetectsFasterImage) {
    Graph fast;
    const ActorId a = fast.add_actor("a", 5);
    fast.add_channel(a, a, 1);
    Graph slow;
    slow.add_actor("a", 4);  // image is FASTER: premise violated
    slow.add_channel(0, 0, 1);
    std::string why;
    EXPECT_FALSE(covers_conservatively(fast, slow, {0}, &why));
    EXPECT_NE(why.find("execution time"), std::string::npos);
}

TEST(Compare, CoversDetectsMissingChannel) {
    Graph fast;
    const ActorId a = fast.add_actor("a", 1);
    const ActorId b = fast.add_actor("b", 1);
    fast.add_channel(a, b, 0);
    Graph slow;
    slow.add_actor("a", 1);
    slow.add_actor("b", 1);
    std::string why;
    EXPECT_FALSE(covers_conservatively(fast, slow, {0, 1}, &why));
}

TEST(Compare, CoversRequiresAtMostAsManyTokens) {
    Graph fast;
    const ActorId a = fast.add_actor("a", 1);
    fast.add_channel(a, a, 1);
    Graph slow;
    slow.add_actor("a", 1);
    slow.add_channel(0, 0, 2);  // MORE tokens: weaker dependency, rejected
    EXPECT_FALSE(covers_conservatively(fast, slow, {0}));
    Graph tight;
    tight.add_actor("a", 1);
    tight.add_channel(0, 0, 1);
    EXPECT_TRUE(covers_conservatively(fast, tight, {0}));
}

TEST(Compare, CoversRejectsNonInjectiveImage) {
    Graph fast;
    fast.add_actor("a", 1);
    fast.add_actor("b", 1);
    Graph slow;
    slow.add_actor("x", 5);
    EXPECT_FALSE(covers_conservatively(fast, slow, {0, 0}));
}

TEST(Compare, StructurallyEqualIsNameBased) {
    Graph g1;
    g1.add_actor("a", 1);
    g1.add_actor("b", 2);
    g1.add_channel(0, 1, 1, 1, 3);
    Graph g2;
    g2.add_actor("b", 2);  // declaration order differs
    g2.add_actor("a", 1);
    g2.add_channel(1, 0, 1, 1, 3);
    EXPECT_TRUE(structurally_equal(g1, g2));
    g2.set_initial_tokens(0, 4);
    EXPECT_FALSE(structurally_equal(g1, g2));
}

}  // namespace
}  // namespace sdf
