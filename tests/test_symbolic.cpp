// Unit tests for transform/symbolic.hpp — the symbolic execution at the
// heart of Algorithm 1.
#include "transform/symbolic.hpp"

#include <gtest/gtest.h>

#include "base/errors.hpp"
#include "gen/regular.hpp"
#include "maxplus/mcm.hpp"

namespace sdf {
namespace {

TEST(Symbolic, PaperFigure3Example) {
    // The worked example of Section 6 / Figure 3: the left actor (time 3)
    // fires twice, the right actor (time 1) once; four initial tokens.
    //   t1, t3 on the feedback right->left (p=2, c=1),
    //   t2 on a left self-loop (sequentialising left's firings),
    //   t4 on a right self-loop.
    // Paper trace: first left firing consumes t1, t2 and ends at
    // max(t1+3, t2+3); the second consumes t3 and the first result and ends
    // at max(t1+6, t2+6, t3+3); the right firing closes the iteration.
    Graph g;
    const ActorId left = g.add_actor("left", 3);
    const ActorId right = g.add_actor("right", 1);
    g.add_channel(right, left, 2, 1, 2);  // tokens 0, 1  (t1, t3)
    g.add_channel(left, left, 1, 1, 1);   // token 2      (t2)
    g.add_channel(left, right, 1, 2, 0);  // data
    g.add_channel(right, right, 1, 1, 1); // token 3      (t4)
    const SymbolicIteration it = symbolic_iteration(g);
    ASSERT_EQ(it.tokens.size(), 4u);
    // Left's second firing: max(t1+6, t3+3, t2+6).
    const MpVector left2 = [&] {
        MpVector v(4);
        v[0] = MpValue(6);
        v[1] = MpValue(3);
        v[2] = MpValue(6);
        return v;
    }();
    EXPECT_EQ(it.matrix.column(2), left2);  // new left self-loop token
    // Right's firing: max over both data tokens and t4, plus 1:
    // max(t1+7, t3+4, t2+7, t4+1) — the new feedback and right-self tokens.
    const MpVector right1 = [&] {
        MpVector v(4);
        v[0] = MpValue(7);
        v[1] = MpValue(4);
        v[2] = MpValue(7);
        v[3] = MpValue(1);
        return v;
    }();
    EXPECT_EQ(it.matrix.column(0), right1);
    EXPECT_EQ(it.matrix.column(1), right1);
    EXPECT_EQ(it.matrix.column(3), right1);
}

TEST(Symbolic, MatrixSizeEqualsTokenCount) {
    const Graph g = figure1_graph(6);
    const SymbolicIteration it = symbolic_iteration(g);
    EXPECT_EQ(it.matrix.rows(), 1u);  // figure 1(a) has a single token
    EXPECT_EQ(it.matrix.at(0, 0), MpValue(23));
}

TEST(Symbolic, UntouchedTokenKeepsIdentityStamp) {
    // A channel whose tokens are never consumed: its column is the unit
    // vector (distance 0 to itself).
    Graph g;
    const ActorId a = g.add_actor("a", 5);
    const ActorId sink = g.add_actor("sink", 1);
    g.add_channel(a, a, 1);
    // sink never consumes the spare token on this channel (c=2 needs 2,
    // only 1 arrives... make it simple: a separate token-holding channel
    // from sink to sink that sink does not consume is impossible in SDF) —
    // instead: token on a channel into an actor that fires zero times is
    // impossible for consistent graphs, so model "untouched" as d larger
    // than consumed: d=3, one firing consumes 1, the two leftover tokens
    // shift position.
    g.add_channel(a, sink, 1, 1, 0);
    g.add_channel(sink, a, 1, 1, 3);
    const SymbolicIteration it = symbolic_iteration(g);
    ASSERT_EQ(it.tokens.size(), 4u);
    // Token order: self (index 0), then feedback positions 0..2 (indices
    // 1..3).  a consumes the self token and feedback head (index 1); the
    // new feedback queue is [old pos 1, old pos 2, sink-produced]; so new
    // column for feedback position 0 is the unit of old index 2.
    EXPECT_EQ(it.matrix.column(1), MpVector::unit(4, 2));
    EXPECT_EQ(it.matrix.column(2), MpVector::unit(4, 3));
    // The last feedback slot is the sink's output: a fired at max(t0, t1),
    // done +5, sink +1 => entries 6 on rows 0 and 1.
    MpVector produced(4);
    produced[0] = MpValue(6);
    produced[1] = MpValue(6);
    EXPECT_EQ(it.matrix.column(3), produced);
}

TEST(Symbolic, DeadlockAndInconsistencyPropagate) {
    Graph dead;
    const ActorId a = dead.add_actor("a", 1);
    const ActorId b = dead.add_actor("b", 1);
    dead.add_channel(a, b, 0);
    dead.add_channel(b, a, 0);
    EXPECT_THROW(symbolic_iteration(dead), DeadlockError);

    Graph inconsistent;
    const ActorId c = inconsistent.add_actor("c", 1);
    inconsistent.add_channel(c, c, 2, 1, 4);
    EXPECT_THROW(symbolic_iteration(inconsistent), InconsistentGraphError);
}

TEST(Symbolic, ZeroExecutionTimesGiveZeroMatrix) {
    Graph g;
    const ActorId a = g.add_actor("a", 0);
    g.add_channel(a, a, 1);
    const SymbolicIteration it = symbolic_iteration(g);
    EXPECT_EQ(it.matrix.at(0, 0), MpValue(0));
}

TEST(Symbolic, PowerMatchesRepeatedIterations) {
    // G^2 must describe two iterations: verify against a 2-iteration
    // "long" graph built by doubling the repetition vector via a doubled
    // self-loop trick — instead compare against explicit multiply.
    Graph g;
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 4);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 2);
    const SymbolicIteration it = symbolic_iteration(g);
    EXPECT_EQ(symbolic_iteration_power(g, 2), it.matrix.multiply(it.matrix));
    EXPECT_EQ(symbolic_iteration_power(g, 0), MpMatrix::identity(2));
}

TEST(Symbolic, EigenvalueIsIterationPeriod) {
    // Ring with two tokens: lambda = (3+4)/2.
    Graph g;
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 4);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 2);
    const SymbolicIteration it = symbolic_iteration(g);
    const CycleMetric m = max_cycle_mean_karp(it.matrix.precedence_graph());
    ASSERT_TRUE(m.is_finite());
    EXPECT_EQ(m.value, Rational(7, 2));
}

TEST(Symbolic, DenseEngineMatchesSparseOnWorkedExample) {
    Graph g;
    const ActorId left = g.add_actor("left", 3);
    const ActorId right = g.add_actor("right", 1);
    g.add_channel(right, left, 2, 1, 2);
    g.add_channel(left, left, 1, 1, 1);
    g.add_channel(left, right, 1, 2, 0);
    g.add_channel(right, right, 1, 1, 1);
    const SymbolicIteration sparse = symbolic_iteration(g, SymbolicEngine::sparse);
    const SymbolicIteration dense = symbolic_iteration(g, SymbolicEngine::dense);
    EXPECT_EQ(sparse.matrix, dense.matrix);
    EXPECT_EQ(sparse.tokens.size(), dense.tokens.size());
}

TEST(Symbolic, PowerShortCircuitsStillValidateTheGraph) {
    // Powers 0 and 1 skip the matrix exponentiation but must reject the
    // same graphs a real execution would.
    Graph dead;
    const ActorId a = dead.add_actor("a", 1);
    const ActorId b = dead.add_actor("b", 1);
    dead.add_channel(a, b, 0);
    dead.add_channel(b, a, 0);
    EXPECT_THROW(symbolic_iteration_power(dead, 0), DeadlockError);
    EXPECT_THROW(symbolic_iteration_power(dead, 1), DeadlockError);

    Graph inconsistent;
    const ActorId c = inconsistent.add_actor("c", 1);
    inconsistent.add_channel(c, c, 2, 1, 4);
    EXPECT_THROW(symbolic_iteration_power(inconsistent, 0), InconsistentGraphError);
    EXPECT_THROW(symbolic_iteration_power(inconsistent, 1), InconsistentGraphError);
}

TEST(Symbolic, PowerOneEqualsSingleIteration) {
    Graph g;
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 4);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 2);
    EXPECT_EQ(symbolic_iteration_power(g, 1), symbolic_iteration(g).matrix);
    EXPECT_THROW(symbolic_iteration_power(g, -1), Error);
}

TEST(Symbolic, ScheduleIndependence) {
    // SDF determinacy: the matrix must not depend on schedule order.  Build
    // the same graph with actors declared in different orders (which flips
    // the greedy schedule's tie-breaking) and compare matrices modulo the
    // identical token order.
    Graph g1;
    {
        const ActorId a = g1.add_actor("a", 2);
        const ActorId b = g1.add_actor("b", 5);
        g1.add_channel(a, b, 0);     // channel 0
        g1.add_channel(b, a, 1);     // channel 1: token 0
        g1.add_channel(a, a, 1);     // channel 2: token 1
    }
    Graph g2;
    {
        const ActorId b = g2.add_actor("b", 5);
        const ActorId a = g2.add_actor("a", 2);
        g2.add_channel(a, b, 0);
        g2.add_channel(b, a, 1);
        g2.add_channel(a, a, 1);
    }
    EXPECT_EQ(symbolic_iteration(g1).matrix, symbolic_iteration(g2).matrix);
}

}  // namespace
}  // namespace sdf
