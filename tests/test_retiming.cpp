// Unit + property tests for transform/retiming.hpp.
#include "transform/retiming.hpp"

#include <gtest/gtest.h>

#include <random>

#include "analysis/liveness.hpp"
#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "gen/random_sdf.hpp"
#include "gen/regular.hpp"
#include "transform/hsdf_reduced.hpp"

namespace sdf {
namespace {

Graph ring4() {
    // a(1) -> b(2) -> c(3) -> d(4) -> a with two tokens on d -> a.
    Graph g("ring4");
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 2);
    const ActorId c = g.add_actor("c", 3);
    const ActorId d = g.add_actor("d", 4);
    g.add_channel(a, b, 0);
    g.add_channel(b, c, 0);
    g.add_channel(c, d, 0);
    g.add_channel(d, a, 2);
    return g;
}

TEST(Retiming, LegalityCheck) {
    const Graph g = ring4();
    EXPECT_TRUE(is_legal_retiming(g, {0, 0, 0, 0}));
    EXPECT_TRUE(is_legal_retiming(g, {1, 1, 1, 1}));   // uniform shift: no-op
    EXPECT_TRUE(is_legal_retiming(g, {0, 0, 0, 1}));   // move one token to c->d
    EXPECT_FALSE(is_legal_retiming(g, {1, 0, 0, 0}));  // a->b would go negative
    EXPECT_FALSE(is_legal_retiming(g, {0, 0, 0}));     // wrong size
}

TEST(Retiming, MovesTokensAsSpecified) {
    const Graph g = ring4();
    const Graph r = retime(g, {0, 0, 0, 1});
    // d lags one iteration: c->d gains a token, d->a loses one.
    EXPECT_EQ(r.channel(2).initial_tokens, 1);
    EXPECT_EQ(r.channel(3).initial_tokens, 1);
    EXPECT_EQ(r.channel(0).initial_tokens, 0);
    EXPECT_THROW(retime(g, {1, 0, 0, 0}), InvalidGraphError);
}

TEST(Retiming, UniformShiftIsIdentity) {
    const Graph g = ring4();
    const Graph r = retime(g, {5, 5, 5, 5});
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        EXPECT_EQ(r.channel(c).initial_tokens, g.channel(c).initial_tokens);
    }
}

TEST(Retiming, RejectsMultiRateGraphs) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 2, 1, 0);
    EXPECT_THROW(retime(g, {0, 0}), InvalidGraphError);
    EXPECT_THROW(max_token_free_path(g), InvalidGraphError);
    EXPECT_THROW(minimize_token_free_path(g), InvalidGraphError);
}

TEST(Retiming, MaxTokenFreePath) {
    EXPECT_EQ(max_token_free_path(ring4()), 10);  // a+b+c+d all token-free
    const Graph balanced = retime(ring4(), {0, 0, 1, 1});
    // Chains: a+b (3), c+d (7).
    EXPECT_EQ(max_token_free_path(balanced), 7);
    Graph dead;
    const ActorId x = dead.add_actor("x", 1);
    const ActorId y = dead.add_actor("y", 1);
    dead.add_channel(x, y, 0);
    dead.add_channel(y, x, 0);
    EXPECT_THROW(max_token_free_path(dead), InvalidGraphError);
}

TEST(Retiming, MinimisationFindsTheBalancedPipeline) {
    const RetimingResult result = minimize_token_free_path(ring4());
    // Two tokens on a 10-weight ring: chains can be split into (4+1) and
    // (2+3) or similar; the single heaviest actor is 4, and with 2 tokens
    // the ring splits into two chains, the better split reaching 5.
    EXPECT_EQ(result.period, 5);
    EXPECT_TRUE(is_legal_retiming(ring4(), result.lag));
    EXPECT_EQ(max_token_free_path(result.graph), 5);
}

TEST(Retiming, MinimisationOnFigure1) {
    const Graph g = figure1_graph(6);
    const RetimingResult result = minimize_token_free_path(g);
    EXPECT_LE(result.period, max_token_free_path(g));
    EXPECT_GE(result.period, 5);  // heaviest actor
    EXPECT_TRUE(is_live(result.graph));
}

class RetimingProperty : public ::testing::TestWithParam<int> {};

TEST_P(RetimingProperty, LegalRetimingsPreserveLivenessAndPeriod) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    const Graph g = random_hsdf(rng);
    // Random candidate lags; test those that happen to be legal (uniform
    // and zero lags always are, so every seed exercises something).
    std::uniform_int_distribution<Int> pick(0, 2);
    for (int attempt = 0; attempt < 8; ++attempt) {
        std::vector<Int> lag(g.actor_count());
        for (Int& l : lag) {
            l = attempt == 0 ? 1 : pick(rng);
        }
        if (!is_legal_retiming(g, lag)) {
            continue;
        }
        const Graph r = retime(g, lag);
        EXPECT_EQ(is_live(r), is_live(g));
        const ThroughputResult before = throughput_symbolic(g);
        const ThroughputResult after = throughput_symbolic(r);
        ASSERT_EQ(before.outcome, after.outcome);
        if (before.is_finite()) {
            EXPECT_EQ(before.period, after.period);
        }
    }
}

TEST_P(RetimingProperty, MinimisationNeverWorsensAndStaysEquivalent) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 500);
    const Graph g = random_hsdf(rng);
    const RetimingResult result = minimize_token_free_path(g);
    EXPECT_LE(result.period, max_token_free_path(g));
    const ThroughputResult before = throughput_symbolic(g);
    const ThroughputResult after = throughput_symbolic(result.graph);
    ASSERT_EQ(before.outcome, after.outcome);
    if (before.is_finite()) {
        EXPECT_EQ(before.period, after.period);
    }
}

TEST_P(RetimingProperty, ComposesWithTheReducedConversion) {
    // Retiming the reduced HSDF re-balances its pipeline without touching
    // the iteration period.
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 900);
    const Graph g = random_sdf(rng);
    const ThroughputResult original = throughput_symbolic(g);
    if (!original.is_finite() || original.period.is_zero()) {
        return;
    }
    const Graph reduced = to_hsdf_reduced(g);
    const RetimingResult result = minimize_token_free_path(reduced);
    EXPECT_EQ(throughput_symbolic(result.graph).period, original.period);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetimingProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace sdf
