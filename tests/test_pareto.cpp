// Unit + property tests for analysis/pareto.hpp — the throughput/buffer
// trade-off exploration.
#include "analysis/pareto.hpp"

#include <gtest/gtest.h>

#include <random>

#include "analysis/buffers.hpp"
#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "gen/random_sdf.hpp"

namespace sdf {
namespace {

Graph pipeline() {
    // a -> b -> c ring of self-looped actors: classic buffer-sizing demo.
    Graph g("pipeline");
    const ActorId a = g.add_actor("a", 2);
    const ActorId b = g.add_actor("b", 3);
    const ActorId c = g.add_actor("c", 1);
    g.add_channel(a, b, 0);
    g.add_channel(b, c, 0);
    g.add_channel(a, a, 2);
    g.add_channel(b, b, 2);
    g.add_channel(c, c, 2);
    g.add_channel(c, a, 4);  // return credits keep the ring bounded
    return g;
}

TEST(Pareto, CurveIsMonotoneAndReachesUnboundedRate) {
    const Graph g = pipeline();
    const std::vector<ParetoPoint> curve = buffer_throughput_tradeoff(g);
    ASSERT_FALSE(curve.empty());
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GT(curve[i].total_buffer, curve[i - 1].total_buffer);
        EXPECT_LT(curve[i].period, curve[i - 1].period);
    }
    EXPECT_EQ(curve.back().period, throughput_symbolic(g).period);
}

TEST(Pareto, EveryPointIsRealisable) {
    const Graph g = pipeline();
    for (const ParetoPoint& point : buffer_throughput_tradeoff(g)) {
        const ThroughputResult t =
            throughput_symbolic(with_buffer_capacities(g, point.capacities));
        ASSERT_TRUE(t.is_finite());
        EXPECT_EQ(t.period, point.period);
    }
}

TEST(Pareto, SingleChannelRing) {
    // One bounded channel: capacity k allows k in-flight tokens; period
    // drops from (2+3) serialised to the self-loop-bound rate.
    Graph g;
    const ActorId a = g.add_actor("a", 2);
    const ActorId b = g.add_actor("b", 3);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 4);
    g.add_channel(a, a, 1);
    g.add_channel(b, b, 1);
    const std::vector<ParetoPoint> curve = buffer_throughput_tradeoff(g);
    ASSERT_GE(curve.size(), 2u);
    EXPECT_EQ(curve.front().period, Rational(5));  // capacity 1: a then b
    EXPECT_EQ(curve.back().period, Rational(3));   // b is the bottleneck
}

TEST(Pareto, RejectsUnboundedGraphs) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 0);  // no cycles: unbounded open-capacity rate
    EXPECT_THROW(buffer_throughput_tradeoff(g), Error);
}

class ParetoProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParetoProperty, CurvesAreValidOnRandomGraphs) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    RandomSdfOptions options;
    options.min_actors = 3;
    options.max_actors = 5;
    options.max_repetition = 3;
    const Graph g = random_sdf(rng, options);
    const ThroughputResult open = throughput_symbolic(g);
    if (!open.is_finite() || open.period.is_zero()) {
        return;
    }
    std::vector<ParetoPoint> curve;
    try {
        curve = buffer_throughput_tradeoff(g);
    } catch (const Error&) {
        return;  // step budget exhausted on adversarial cases is acceptable
    }
    ASSERT_FALSE(curve.empty());
    EXPECT_EQ(curve.back().period, open.period);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_LT(curve[i].period, curve[i - 1].period);
        EXPECT_GT(curve[i].total_buffer, curve[i - 1].total_buffer);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace sdf
