// Unit tests for io/csdf_xml.hpp.
#include "io/csdf_xml.hpp"

#include <gtest/gtest.h>

#include "base/errors.hpp"
#include "csdf/analysis.hpp"

namespace sdf {
namespace {

CsdfGraph scaler() {
    CsdfGraph g("scaler");
    const CsdfActorId reader = g.add_actor("reader", {4});
    const CsdfActorId scale = g.add_actor("scale", {10, 10, 16});
    g.add_channel(reader, scale, {1}, {1, 1, 2}, 0);
    g.add_channel(scale, reader, {1, 1, 2}, {1}, 4);
    g.add_channel(scale, scale, {1, 1, 1}, {1, 1, 1}, 1);
    return g;
}

bool csdf_equal(const CsdfGraph& a, const CsdfGraph& b) {
    if (a.actor_count() != b.actor_count() || a.channel_count() != b.channel_count()) {
        return false;
    }
    for (const CsdfActor& actor : a.actors()) {
        const auto id = b.find_actor(actor.name);
        if (!id || b.actor(*id).phase_times != actor.phase_times) {
            return false;
        }
    }
    for (std::size_t c = 0; c < a.channel_count(); ++c) {
        const CsdfChannel& ca = a.channel(c);
        const CsdfChannel& cb = b.channel(c);
        if (a.actor(ca.src).name != b.actor(cb.src).name ||
            a.actor(ca.dst).name != b.actor(cb.dst).name ||
            ca.production != cb.production || ca.consumption != cb.consumption ||
            ca.initial_tokens != cb.initial_tokens) {
            return false;
        }
    }
    return true;
}

TEST(CsdfXml, RoundTripPreservesStructure) {
    const CsdfGraph g = scaler();
    const CsdfGraph parsed = read_csdf_xml_string(write_csdf_xml_string(g));
    EXPECT_TRUE(csdf_equal(g, parsed));
    EXPECT_EQ(parsed.name(), "scaler");
}

TEST(CsdfXml, RoundTripPreservesAnalyses) {
    const CsdfGraph g = scaler();
    const CsdfGraph parsed = read_csdf_xml_string(write_csdf_xml_string(g));
    EXPECT_EQ(csdf_repetition(parsed), csdf_repetition(g));
    const CsdfThroughput a = csdf_throughput(g);
    const CsdfThroughput b = csdf_throughput(parsed);
    ASSERT_FALSE(a.deadlocked);
    EXPECT_EQ(a.period, b.period);
}

TEST(CsdfXml, ParsesHandWrittenDocument) {
    const CsdfGraph g = read_csdf_xml_string(
        "<sdf3 type=\"csdf\" version=\"1.0\">"
        " <applicationGraph name=\"tiny\">"
        "  <csdf name=\"tiny\" type=\"tiny\">"
        "   <actor name=\"a\" type=\"a\"><port name=\"p\" type=\"out\" rate=\"1,2\"/></actor>"
        "   <actor name=\"b\" type=\"b\"><port name=\"q\" type=\"in\" rate=\"3\"/></actor>"
        "   <channel name=\"ch\" srcActor=\"a\" srcPort=\"p\" dstActor=\"b\" dstPort=\"q\""
        "            initialTokens=\"2\"/>"
        "  </csdf>"
        "  <csdfProperties>"
        "   <actorProperties actor=\"a\">"
        "    <processor type=\"p0\" default=\"true\"><executionTime time=\"5,7\"/></processor>"
        "   </actorProperties>"
        "   <actorProperties actor=\"b\">"
        "    <processor type=\"p0\" default=\"true\"><executionTime time=\"9\"/></processor>"
        "   </actorProperties>"
        "  </csdfProperties>"
        " </applicationGraph>"
        "</sdf3>");
    ASSERT_EQ(g.actor_count(), 2u);
    EXPECT_EQ(g.actor(0).phase_times, (std::vector<Int>{5, 7}));
    EXPECT_EQ(g.actor(1).phase_times, (std::vector<Int>{9}));
    ASSERT_EQ(g.channel_count(), 1u);
    EXPECT_EQ(g.channel(0).production, (std::vector<Int>{1, 2}));
    EXPECT_EQ(g.channel(0).consumption, (std::vector<Int>{3}));
    EXPECT_EQ(g.channel(0).initial_tokens, 2);
}

TEST(CsdfXml, RejectsStructurallyWrongDocuments) {
    EXPECT_THROW(read_csdf_xml_string("<sdf3></sdf3>"), ParseError);
    EXPECT_THROW(read_csdf_xml_string(
                     "<sdf3><applicationGraph name=\"g\"/></sdf3>"),
                 ParseError);
    // Actor without executionTime: phase count unknown.
    EXPECT_THROW(read_csdf_xml_string(
                     "<sdf3><applicationGraph name=\"g\"><csdf name=\"g\" type=\"g\">"
                     "<actor name=\"a\" type=\"a\"/></csdf>"
                     "</applicationGraph></sdf3>"),
                 ParseError);
    // Rate list length mismatching the phase count.
    EXPECT_THROW(read_csdf_xml_string(
                     "<sdf3><applicationGraph name=\"g\"><csdf name=\"g\" type=\"g\">"
                     "<actor name=\"a\" type=\"a\">"
                     "<port name=\"p\" type=\"out\" rate=\"1,2,3\"/></actor>"
                     "<channel name=\"c\" srcActor=\"a\" srcPort=\"p\" dstActor=\"a\""
                     " dstPort=\"p\"/>"
                     "</csdf><csdfProperties><actorProperties actor=\"a\">"
                     "<processor type=\"p\" default=\"true\">"
                     "<executionTime time=\"1,2\"/></processor></actorProperties>"
                     "</csdfProperties></applicationGraph></sdf3>"),
                 ParseError);
}

TEST(CsdfXml, FileRoundTrip) {
    const std::string path = ::testing::TempDir() + "/scaler.xml";
    write_csdf_xml_file(path, scaler());
    EXPECT_TRUE(csdf_equal(read_csdf_xml_file(path), scaler()));
    EXPECT_THROW(read_csdf_xml_file("/nonexistent/x.xml"), ParseError);
    EXPECT_THROW(write_csdf_xml_file("/nonexistent/dir/x.xml", scaler()), ParseError);
}

}  // namespace
}  // namespace sdf
