// Unit + property tests for analysis/sensitivity.hpp.
#include "analysis/sensitivity.hpp"

#include <gtest/gtest.h>

#include <random>

#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "gen/random_sdf.hpp"
#include "gen/regular.hpp"

namespace sdf {
namespace {

TEST(Sensitivity, RingIsFullyCritical) {
    Graph g;
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 4);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 1);
    const SensitivityReport report = sensitivity_analysis(g);
    EXPECT_EQ(report.period, Rational(7));
    EXPECT_TRUE(report.critical[a]);
    EXPECT_TRUE(report.critical[b]);
    EXPECT_EQ(report.delta[a], Rational(1));
    EXPECT_EQ(report.slack[a], Rational(0));
}

TEST(Sensitivity, SideBranchHasSlack) {
    // Ring a<->b (period 7) with a light parallel path a -> c -> a carrying
    // two tokens: c can grow until the (3 + T(c))/2 cycle catches 7, i.e.
    // T(c) may reach 11; it starts at 1 so the slack is 10.
    Graph g;
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 4);
    const ActorId c = g.add_actor("c", 1);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 1);
    g.add_channel(a, c, 0);
    g.add_channel(c, a, 2);
    const SensitivityReport report = sensitivity_analysis(g);
    EXPECT_EQ(report.period, Rational(7));
    EXPECT_TRUE(report.critical[a]);
    EXPECT_TRUE(report.critical[b]);
    EXPECT_FALSE(report.critical[c]);
    EXPECT_EQ(report.slack[c], Rational(10));
    EXPECT_EQ(report.slack[a], Rational(0));
}

TEST(Sensitivity, MultipleFiringsAmplifyTheDelta) {
    // q(a) = 2 with a serialising self-loop: both firings sit on the
    // critical cycle, so +1 on T(a) adds 2 to the period.
    Graph g;
    const ActorId a = g.add_actor("a", 2);
    const ActorId b = g.add_actor("b", 3);
    g.add_channel(a, b, 1, 2, 0);
    g.add_channel(b, a, 2, 1, 2);
    g.add_channel(a, a, 1);
    g.add_channel(b, b, 1);
    const SensitivityReport report = sensitivity_analysis(g);
    EXPECT_EQ(report.period, Rational(7));
    EXPECT_EQ(report.delta[a], Rational(2));
    EXPECT_EQ(report.delta[b], Rational(1));
}

TEST(Sensitivity, Figure1CriticalCycle) {
    // Section 4.1: the 23-cycle is A1 -> B1 -> A3 -> A4 -> B4 -> A6; those
    // actors are critical, the others have slack.
    const Graph g = figure1_graph(6);
    const SensitivityReport report = sensitivity_analysis(g);
    EXPECT_EQ(report.period, Rational(23));
    for (const char* name : {"A1", "B1", "A3", "A4", "B4", "A6"}) {
        EXPECT_TRUE(report.critical[*g.find_actor(name)]) << name;
    }
    for (const char* name : {"A2", "B2", "B3", "A5"}) {
        EXPECT_FALSE(report.critical[*g.find_actor(name)]) << name;
    }
}

TEST(Sensitivity, RejectsNonFinitePeriods) {
    Graph g;
    g.add_actor("a", 1);
    EXPECT_THROW(sensitivity_analysis(g), Error);  // no cycle: unbounded
}

class SensitivityProperty : public ::testing::TestWithParam<int> {};

TEST_P(SensitivityProperty, DeltasAreNonNegativeAndSomeActorIsCritical) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    RandomSdfOptions options;
    options.min_actors = 3;
    options.max_actors = 5;
    const Graph g = random_sdf(rng, options);
    const ThroughputResult t = throughput_symbolic(g);
    if (!t.is_finite() || t.period.is_zero()) {
        return;
    }
    const SensitivityReport report = sensitivity_analysis(g, 1 << 12);
    bool any_critical = false;
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        EXPECT_GE(report.delta[a], Rational(0));
        EXPECT_EQ(report.critical[a], !report.delta[a].is_zero());
        if (report.critical[a]) {
            EXPECT_EQ(report.slack[a], Rational(0));
            any_critical = true;
        } else {
            // Slack is tight: one past it, the period moves.
            Graph bumped = g;
            bumped.set_execution_time(
                a, g.actor(a).execution_time + report.slack[a].num() + 1);
            EXPECT_GT(throughput_symbolic(bumped).period, report.period);
        }
    }
    EXPECT_TRUE(any_critical) << "a finite positive period needs a critical cycle";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SensitivityProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace sdf
