// Unit tests for transform/unfold.hpp — Definition 5 and Proposition 2.
#include "transform/unfold.hpp"

#include <gtest/gtest.h>

#include <random>

#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "gen/random_sdf.hpp"
#include "gen/regular.hpp"
#include "sdf/repetition.hpp"

namespace sdf {
namespace {

TEST(Unfold, CopiesActorsAndTimes) {
    Graph g;
    g.add_actor("a", 7);
    const Graph u = unfold(g, 3);
    ASSERT_EQ(u.actor_count(), 3u);
    for (Int i = 0; i < 3; ++i) {
        const auto id = u.find_actor(unfolded_actor_name("a", i));
        ASSERT_TRUE(id.has_value());
        EXPECT_EQ(u.actor(*id).execution_time, 7);
    }
}

TEST(Unfold, EdgeRuleMatchesDefinition5) {
    // Channel with d = 1 unfolded 3-fold: copy i feeds copy (i+1) mod 3;
    // only the wrapping copy keeps a token (1 div 3 = 0, +1 on wrap).
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    g.add_channel(a, a, 1);
    const Graph u = unfold(g, 3);
    ASSERT_EQ(u.channel_count(), 3u);
    Int wraps = 0;
    for (const Channel& ch : u.channels()) {
        const Int i = static_cast<Int>(ch.src);  // ids follow copy order
        const Int j = static_cast<Int>(ch.dst);
        EXPECT_EQ(j, (i + 1) % 3);
        if (j < i) {
            EXPECT_EQ(ch.initial_tokens, 1);
            ++wraps;
        } else {
            EXPECT_EQ(ch.initial_tokens, 0);
        }
    }
    EXPECT_EQ(wraps, 1);
}

TEST(Unfold, LargeDelaysSplitAcrossCopies) {
    // d = 5, N = 2: copy i feeds copy (i+5) mod 2 = (i+1) mod 2; delays are
    // 5 div 2 = 2, +1 for the wrapping copy.
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    g.add_channel(a, a, 5);
    const Graph u = unfold(g, 2);
    ASSERT_EQ(u.channel_count(), 2u);
    std::vector<Int> delays;
    for (const Channel& ch : u.channels()) {
        delays.push_back(ch.initial_tokens);
    }
    std::sort(delays.begin(), delays.end());
    EXPECT_EQ(delays, (std::vector<Int>{2, 3}));
    // Token count is preserved by Definition 5.
    EXPECT_EQ(u.total_initial_tokens(), 5);
}

TEST(Unfold, TokenCountPreservedInGeneral) {
    const Graph g = figure1_abstract();
    for (const Int n : {1, 2, 3, 6, 10}) {
        EXPECT_EQ(unfold(g, n).total_initial_tokens(), g.total_initial_tokens())
            << "n=" << n;
    }
}

TEST(Unfold, FactorOneIsIsomorphicCopy) {
    const Graph g = figure1_abstract();
    const Graph u = unfold(g, 1);
    EXPECT_EQ(u.actor_count(), g.actor_count());
    EXPECT_EQ(u.channel_count(), g.channel_count());
    EXPECT_EQ(iteration_period(u), iteration_period(g));
}

TEST(Unfold, RejectsNonPositiveFactor) {
    Graph g;
    g.add_actor("a", 1);
    EXPECT_THROW(unfold(g, 0), InvalidGraphError);
    EXPECT_THROW(unfold(g, -2), InvalidGraphError);
}

// Proposition 2's exact mimicry is a statement about homogeneous graphs
// (the case the paper's conservativity proof uses — see unfold.hpp): for
// every random HSDF, period(unf(g, N)) == N * period(g).
TEST(Unfold, Proposition2HoldsOnRandomHomogeneousGraphs) {
    std::mt19937 rng(2009);
    for (int trial = 0; trial < 40; ++trial) {
        const Graph g = random_hsdf(rng);
        const ThroughputResult original = throughput_symbolic(g);
        if (!original.is_finite()) {
            continue;
        }
        for (const Int n : {2, 3, 5}) {
            const Graph u = unfold(g, n);
            const ThroughputResult unfolded = throughput_symbolic(u);
            ASSERT_TRUE(unfolded.is_finite());
            EXPECT_EQ(unfolded.period, Rational(n) * original.period)
                << "trial " << trial << " n=" << n;
        }
    }
}

// Proposition 2: the N-fold unfolding has throughput tau(a)/N per copy —
// equivalently, its iteration period is N times larger... the unfolded
// graph fires each copy once where the original fires the actor N times,
// so period(unf) == N * period(original) for HSDF inputs.
TEST(Unfold, Proposition2PeriodScaling) {
    const Graph g = figure1_abstract();
    const Rational period = iteration_period(g);
    for (const Int n : {2, 3, 6, 12}) {
        const Graph u = unfold(g, n);
        EXPECT_EQ(iteration_period(u), Rational(n) * period) << "n=" << n;
        // Per-actor throughput scales by 1/N.
        const ThroughputResult to = throughput_symbolic(g);
        const ThroughputResult tu = throughput_symbolic(u);
        const ActorId a0 = *u.find_actor(unfolded_actor_name("A", 0));
        EXPECT_EQ(tu.per_actor[a0], to.per_actor[*g.find_actor("A")] / Rational(n));
    }
}

}  // namespace
}  // namespace sdf
