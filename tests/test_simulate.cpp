// Unit tests for sdf/simulate.hpp: self-timed execution, makespans,
// recurrent-state throughput.
#include "sdf/simulate.hpp"

#include <gtest/gtest.h>

#include "base/errors.hpp"
#include "gen/regular.hpp"

namespace sdf {
namespace {

/// a --0--> b --1 token--> a ring with times 3 and 4.
Graph two_ring() {
    Graph g;
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 4);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 1);
    return g;
}

TEST(Simulate, SingleIterationMakespan) {
    const FiniteRun run = simulate_iterations(two_ring(), 1);
    // a at [0,3), b at [3,7).
    EXPECT_EQ(run.makespan, 7);
    EXPECT_EQ(run.firings, (std::vector<Int>{1, 1}));
    EXPECT_EQ(run.completion_times, (std::vector<Int>{3, 7}));
    EXPECT_EQ(run.first_completion_times, (std::vector<Int>{3, 7}));
}

TEST(Simulate, ZeroIterationsIsEmptyRun) {
    const FiniteRun run = simulate_iterations(two_ring(), 0);
    EXPECT_EQ(run.makespan, 0);
    EXPECT_EQ(run.firings, (std::vector<Int>{0, 0}));
    EXPECT_EQ(run.first_completion_times, (std::vector<Int>{-1, -1}));
}

TEST(Simulate, IterationsAccumulateLinearlyOnARing) {
    // One ring lap takes 7; k iterations take 7k (no pipelining possible).
    for (Int k = 1; k <= 4; ++k) {
        EXPECT_EQ(simulate_iterations(two_ring(), k).makespan, 7 * k);
    }
}

TEST(Simulate, Figure1TakesTwentyThreeTimeUnits) {
    // Section 4.1: "a single execution of the graph of Figure 1(a) takes
    // 23 time units".
    EXPECT_EQ(simulate_iterations(figure1_graph(6), 1).makespan, 23);
}

TEST(Simulate, AutoConcurrencyAllowsOverlappedFirings) {
    // Two tokens on the ring: two firings of a can overlap.
    Graph g;
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 4);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 2);
    const FiniteRun run = simulate_iterations(g, 2);
    // Both a firings start at 0; both b firings start at 3.
    EXPECT_EQ(run.makespan, 7);
}

TEST(Simulate, RatedGraphMakespan) {
    // left fires twice (3 each, sequential via data), right once (1).
    Graph g;
    const ActorId left = g.add_actor("left", 3);
    const ActorId right = g.add_actor("right", 1);
    g.add_channel(left, right, 1, 2, 0);
    g.add_channel(right, left, 2, 1, 2);
    const FiniteRun run = simulate_iterations(g, 1);
    // Both left firings can start at 0 (two tokens available): done at 3;
    // right consumes both results: done at 4.
    EXPECT_EQ(run.makespan, 4);
    EXPECT_EQ(run.firings, (std::vector<Int>{2, 1}));
}

TEST(Simulate, DeadlockedGraphThrows) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 0);
    EXPECT_THROW(simulate_iterations(g, 1), DeadlockError);
}

TEST(SimulateThroughput, RingPeriod) {
    const ThroughputRun run = simulate_throughput(two_ring());
    EXPECT_FALSE(run.deadlocked);
    EXPECT_EQ(run.throughput[0], Rational(1, 7));
    EXPECT_EQ(run.throughput[1], Rational(1, 7));
}

TEST(SimulateThroughput, PipelinedRingDoublesRate) {
    Graph g;
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 4);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 2);
    const ThroughputRun run = simulate_throughput(g);
    // Two tokens in a 7-cycle: rate limited by the slower actor?  No self
    // loops, so firings overlap; cycle mean is 7/2.
    EXPECT_EQ(run.throughput[0], Rational(2, 7));
}

TEST(SimulateThroughput, SelfLoopLimitsRate) {
    Graph g;
    const ActorId a = g.add_actor("a", 5);
    g.add_channel(a, a, 1);
    const ThroughputRun run = simulate_throughput(g);
    EXPECT_EQ(run.throughput[0], Rational(1, 5));
}

TEST(SimulateThroughput, RejectsActorsOffAnyCycle) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 0);  // no cycle: unbounded
    EXPECT_THROW(simulate_throughput(g), Error);
}

TEST(SimulateThroughput, DeadlockReported) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 0);
    const ThroughputRun run = simulate_throughput(g);
    EXPECT_TRUE(run.deadlocked);
    EXPECT_EQ(run.throughput[0], Rational(0));
}

TEST(SimulateThroughput, ZeroTimeCycleRejected) {
    Graph g;
    const ActorId a = g.add_actor("a", 0);
    g.add_channel(a, a, 1);
    EXPECT_THROW(simulate_throughput(g), Error);
}

TEST(SimulateThroughput, TransientThenPeriodic) {
    // Unbalanced double ring: a slow stage upstream of a fast one shows a
    // transient before the periodic phase.
    Graph g;
    const ActorId a = g.add_actor("a", 10);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 1);
    g.add_channel(b, b, 1);
    const ThroughputRun run = simulate_throughput(g);
    EXPECT_EQ(run.throughput[0], Rational(1, 11));
    EXPECT_EQ(run.throughput[1], Rational(1, 11));
}

TEST(SimulateThroughput, MultiRateRing) {
    Graph g;
    const ActorId a = g.add_actor("a", 2);
    const ActorId b = g.add_actor("b", 3);
    g.add_channel(a, b, 1, 2, 0);
    g.add_channel(b, a, 2, 1, 2);
    g.add_channel(a, a, 1, 1, 1);
    g.add_channel(b, b, 1, 1, 1);
    const ThroughputRun run = simulate_throughput(g);
    EXPECT_FALSE(run.deadlocked);
    // q = (2, 1); the a self-loop serialises a: lambda = 2*2+3 = 7.
    EXPECT_EQ(run.throughput[0], Rational(2, 7));
    EXPECT_EQ(run.throughput[1], Rational(1, 7));
}

}  // namespace
}  // namespace sdf
