// Robustness and failure-injection tests: the library must fail loudly
// (typed exceptions) rather than overflow, crash or hang on adversarial
// inputs — overflowing execution times, exploding conversions, mutated
// documents.
#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "io/text.hpp"
#include "io/xml.hpp"
#include "sdf/repetition.hpp"
#include "sdf/simulate.hpp"
#include "transform/hsdf_classic.hpp"
#include "transform/symbolic.hpp"
#include "transform/unfold.hpp"

namespace sdf {
namespace {

constexpr Int kHuge = std::numeric_limits<Int>::max() / 2;

TEST(Robustness, HugeExecutionTimesOverflowLoudly) {
    Graph g;
    const ActorId a = g.add_actor("a", kHuge);
    const ActorId b = g.add_actor("b", kHuge + 10);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 1);
    // Symbolic stamps add execution times along paths: must throw, not wrap.
    EXPECT_THROW(symbolic_iteration(g), ArithmeticError);
    EXPECT_THROW(simulate_iterations(g, 2), ArithmeticError);
}

TEST(Robustness, HugeRatesOverflowLoudlyInRepetitionVector) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    const ActorId c = g.add_actor("c", 1);
    // Chained co-prime rate changes make q(c) overflow 64 bits.
    g.add_channel(a, b, (Int{1} << 31) - 1, 1, 0);
    g.add_channel(b, c, (Int{1} << 31) - 1, 1, 0);
    g.add_channel(c, a, 1, (Int{1} << 31), 0);
    EXPECT_THROW(repetition_vector(g), Error);
}

TEST(Robustness, HugeDelayTimesRateStaysChecked) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    g.add_channel(a, a, 1, 1, kHuge);
    // The unfolding adds/multiplies delays; it must stay in checked land.
    EXPECT_NO_THROW(unfold(g, 3));
    // The classical conversion enumerates tokens per consumer firing: the
    // huge self-loop delay must not take forever or overflow silently —
    // only one consumer firing exists here, so it terminates and the
    // delay arithmetic is checked.
    EXPECT_NO_THROW(to_hsdf_classic(g));
}

TEST(Robustness, SimulationEventBudgetStopsRunaways) {
    // A graph with enormous repetition counts would schedule billions of
    // firings; the event budget must cut it off.
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 1000000, 1, 0);
    g.add_channel(b, a, 1, 1000000, 1000000);
    g.add_channel(a, a, 1);
    g.add_channel(b, b, 1);
    EXPECT_THROW(simulate_throughput(g, /*max_events=*/1000), Error);
}

TEST(Robustness, TextParserNeverCrashesOnMutations) {
    const std::string seed = write_text_string(Graph{});
    const std::string base =
        "graph g\nactor a 3\nactor b 4\nchannel a b 2 3 1\nchannel b a 3 2 4\n";
    std::mt19937 rng(99);
    for (int trial = 0; trial < 300; ++trial) {
        std::string mutated = base;
        const std::size_t pos = rng() % mutated.size();
        switch (rng() % 3) {
            case 0: mutated[pos] = static_cast<char>(32 + rng() % 95); break;
            case 1: mutated.erase(pos, 1 + rng() % 4); break;
            default: mutated.insert(pos, 1, static_cast<char>(32 + rng() % 95)); break;
        }
        try {
            const Graph g = read_text_string(mutated);
            (void)g.actor_count();  // parsed fine: must be a usable graph
        } catch (const ParseError&) {
            // expected for most mutations
        } catch (const InvalidGraphError&) {
            // e.g. negative tokens after digit mutation
        }
    }
}

TEST(Robustness, XmlParserNeverCrashesOnMutations) {
    const std::string base = write_xml_string(
        [] {
            Graph g("m");
            const ActorId a = g.add_actor("a", 3);
            const ActorId b = g.add_actor("b", 4);
            g.add_channel(a, b, 2, 3, 1);
            return g;
        }());
    std::mt19937 rng(123);
    for (int trial = 0; trial < 300; ++trial) {
        std::string mutated = base;
        const std::size_t pos = rng() % mutated.size();
        switch (rng() % 3) {
            case 0: mutated[pos] = static_cast<char>(32 + rng() % 95); break;
            case 1: mutated.erase(pos, 1 + rng() % 6); break;
            default: mutated.insert(pos, 1, static_cast<char>(32 + rng() % 95)); break;
        }
        try {
            const Graph g = read_xml_string(mutated);
            (void)g.actor_count();
        } catch (const Error&) {
            // ParseError / InvalidGraphError are the accepted outcomes
        }
    }
}

TEST(Robustness, DeeplyNestedXmlRefusedBeforeStackOverflow) {
    // The recursive-descent parser recurses per nesting level, so hostile
    // depth must be refused with a typed error before the stack (far
    // shallower under sanitizers) runs out.  Real SDF3 documents nest a
    // handful of levels.
    std::string doc;
    const int depth = 2000;
    for (int i = 0; i < depth; ++i) {
        doc += "<n>";
    }
    for (int i = 0; i < depth; ++i) {
        doc += "</n>";
    }
    EXPECT_THROW(read_xml_string(doc), ParseError);
    // A depth well inside the cap still parses (and is then rejected as
    // not-an-sdf3-document, also a ParseError).
    std::string shallow;
    for (int i = 0; i < 100; ++i) {
        shallow += "<n>";
    }
    for (int i = 0; i < 100; ++i) {
        shallow += "</n>";
    }
    EXPECT_THROW(read_xml_string(shallow), ParseError);
}

TEST(Robustness, EmptyAndDegenerateGraphs) {
    Graph empty;
    EXPECT_THROW(repetition_vector(empty), InvalidGraphError);
    EXPECT_EQ(write_text_string(empty), "");
    EXPECT_NO_THROW(read_text_string(""));

    Graph lonely;
    lonely.add_actor("a", 0);
    EXPECT_EQ(iteration_length(lonely), 1);
    // Zero-time actor with no channels: unbounded throughput, not a hang.
    EXPECT_EQ(throughput_symbolic(lonely).outcome, ThroughputOutcome::unbounded);
}

TEST(Robustness, SymbolicIterationOnTokenFreeGraphs) {
    // Consistent, live, but zero initial tokens anywhere: a 0×0 matrix.
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 0);
    const SymbolicIteration it = symbolic_iteration(g);
    EXPECT_EQ(it.matrix.rows(), 0u);
    EXPECT_EQ(throughput_symbolic(g).outcome, ThroughputOutcome::unbounded);
}

}  // namespace
}  // namespace sdf
