// Unit tests for the I/O layer: text format, SDF3-style XML, DOT export.
#include <gtest/gtest.h>

#include "base/errors.hpp"
#include "gen/benchmarks.hpp"
#include "gen/regular.hpp"
#include "io/dot.hpp"
#include "io/text.hpp"
#include "io/xml.hpp"
#include "io/xml_node.hpp"
#include "transform/compare.hpp"

namespace sdf {
namespace {

TEST(TextIo, ParsesWellFormedInput) {
    const Graph g = read_text_string(
        "# a comment\n"
        "graph demo\n"
        "actor a 3\n"
        "actor b 0   # trailing comment\n"
        "channel a b 2 3 1\n");
    EXPECT_EQ(g.name(), "demo");
    EXPECT_EQ(g.actor_count(), 2u);
    ASSERT_EQ(g.channel_count(), 1u);
    EXPECT_EQ(g.channel(0).production, 2);
    EXPECT_EQ(g.channel(0).consumption, 3);
    EXPECT_EQ(g.channel(0).initial_tokens, 1);
    EXPECT_EQ(g.actor(0).execution_time, 3);
}

TEST(TextIo, ErrorsCarryLineNumbers) {
    try {
        read_text_string("actor a 3\nchannel a nosuch 1 1 0\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(TextIo, RejectsMalformedLines) {
    EXPECT_THROW(read_text_string("bogus x\n"), ParseError);
    EXPECT_THROW(read_text_string("actor a\n"), ParseError);
    EXPECT_THROW(read_text_string("actor a twelve\n"), ParseError);
    EXPECT_THROW(read_text_string("graph a b\n"), ParseError);
    EXPECT_THROW(read_text_string("actor a 1\nchannel a a 1 1\n"), ParseError);
    EXPECT_THROW(read_text_string("actor a 1\nactor a 2\n"), ParseError);
    EXPECT_THROW(read_text_file("/nonexistent/path.sdf"), ParseError);
}

TEST(TextIo, RoundTripsAllBenchmarks) {
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        const Graph parsed = read_text_string(write_text_string(bench.graph));
        EXPECT_TRUE(structurally_equal(parsed, bench.graph)) << bench.label;
        EXPECT_EQ(parsed.name(), bench.graph.name()) << bench.label;
    }
}

TEST(XmlNode, ParsesElementsAttributesAndComments) {
    const XmlNode root = parse_xml(
        "<?xml version=\"1.0\"?>\n"
        "<!-- header comment -->\n"
        "<top a=\"1\" b=\"x &amp; y\">\n"
        "  <child/>\n"
        "  <!-- inner comment -->\n"
        "  <child name=\"two\">text is skipped</child>\n"
        "</top>\n");
    EXPECT_EQ(root.name, "top");
    EXPECT_EQ(root.required_attribute("a"), "1");
    EXPECT_EQ(root.required_attribute("b"), "x & y");
    EXPECT_EQ(root.children.size(), 2u);
    EXPECT_EQ(root.children_named("child").size(), 2u);
    EXPECT_EQ(root.children[1].attribute("name"), "two");
    EXPECT_EQ(root.attribute("missing"), std::nullopt);
    EXPECT_THROW(root.required_attribute("missing"), ParseError);
}

TEST(XmlNode, RejectsMalformedDocuments) {
    EXPECT_THROW(parse_xml("<a><b></a>"), ParseError);
    EXPECT_THROW(parse_xml("<a attr=1></a>"), ParseError);
    EXPECT_THROW(parse_xml("<a>"), ParseError);
    EXPECT_THROW(parse_xml("<a/><b/>"), ParseError);
    EXPECT_THROW(parse_xml("<a x=\"&bogus;\"/>"), ParseError);
}

TEST(XmlNode, EscapeRoundTrip) {
    EXPECT_EQ(xml_escape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
}

TEST(XmlIo, RoundTripsAllBenchmarks) {
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        const Graph parsed = read_xml_string(write_xml_string(bench.graph));
        EXPECT_TRUE(structurally_equal(parsed, bench.graph)) << bench.label;
    }
}

TEST(XmlIo, ParsesHandWrittenSdf3Document) {
    const Graph g = read_xml_string(
        "<sdf3 type=\"sdf\" version=\"1.0\">"
        " <applicationGraph name=\"tiny\">"
        "  <sdf name=\"tiny\" type=\"tiny\">"
        "   <actor name=\"a\" type=\"a\"><port name=\"p\" type=\"out\" rate=\"2\"/></actor>"
        "   <actor name=\"b\" type=\"b\"><port name=\"q\" type=\"in\" rate=\"3\"/></actor>"
        "   <channel name=\"ch\" srcActor=\"a\" srcPort=\"p\" dstActor=\"b\" dstPort=\"q\""
        "            initialTokens=\"4\"/>"
        "  </sdf>"
        "  <sdfProperties>"
        "   <actorProperties actor=\"a\">"
        "    <processor type=\"p0\" default=\"true\"><executionTime time=\"11\"/></processor>"
        "   </actorProperties>"
        "  </sdfProperties>"
        " </applicationGraph>"
        "</sdf3>");
    EXPECT_EQ(g.name(), "tiny");
    ASSERT_EQ(g.channel_count(), 1u);
    EXPECT_EQ(g.channel(0).production, 2);
    EXPECT_EQ(g.channel(0).consumption, 3);
    EXPECT_EQ(g.channel(0).initial_tokens, 4);
    EXPECT_EQ(g.actor(*g.find_actor("a")).execution_time, 11);
    EXPECT_EQ(g.actor(*g.find_actor("b")).execution_time, 0);  // defaulted
}

TEST(XmlIo, RejectsStructurallyWrongDocuments) {
    EXPECT_THROW(read_xml_string("<nope/>"), ParseError);
    EXPECT_THROW(read_xml_string("<sdf3></sdf3>"), ParseError);
    EXPECT_THROW(read_xml_string("<sdf3><applicationGraph name=\"g\"/></sdf3>"),
                 ParseError);
    EXPECT_THROW(read_xml_string(
                     "<sdf3><applicationGraph name=\"g\"><sdf name=\"g\" type=\"g\">"
                     "<channel srcActor=\"x\" dstActor=\"y\"/>"
                     "</sdf></applicationGraph></sdf3>"),
                 ParseError);
}

TEST(DotIo, ContainsActorsAndLabels) {
    const std::string dot = write_dot_string(figure1_abstract());
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("A\\n(5)"), std::string::npos);
    EXPECT_NE(dot.find("d=2"), std::string::npos);
    // Homogeneous channels omit the rate label.
    EXPECT_EQ(dot.find("1:1"), std::string::npos);
}

TEST(DotIo, RatedChannelsAreLabelled) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 2, 3, 1);
    const std::string dot = write_dot_string(g);
    EXPECT_NE(dot.find("2:3 d=1"), std::string::npos);
}

TEST(FileIo, TextAndXmlAndDotFilesRoundTrip) {
    const Graph g = samplerate_converter();
    const std::string dir = ::testing::TempDir();
    write_text_file(dir + "/g.sdf", g);
    EXPECT_TRUE(structurally_equal(read_text_file(dir + "/g.sdf"), g));
    write_xml_file(dir + "/g.xml", g);
    EXPECT_TRUE(structurally_equal(read_xml_file(dir + "/g.xml"), g));
    write_dot_file(dir + "/g.dot", g);
    EXPECT_THROW(write_text_file("/nonexistent/dir/g.sdf", g), ParseError);
}

}  // namespace
}  // namespace sdf
