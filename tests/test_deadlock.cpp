// Unit tests for analysis/deadlock.hpp — deadlock diagnosis with witness.
#include "analysis/deadlock.hpp"

#include <gtest/gtest.h>

#include <random>

#include "analysis/liveness.hpp"
#include "base/errors.hpp"
#include "gen/benchmarks.hpp"
#include "gen/random_sdf.hpp"

namespace sdf {
namespace {

TEST(Deadlock, LiveGraphHasNoWitness) {
    const DeadlockDiagnosis d = diagnose_deadlock(samplerate_converter());
    EXPECT_FALSE(d.deadlocked);
    EXPECT_TRUE(d.blocked.empty());
    EXPECT_NE(d.describe(samplerate_converter()).find("live"), std::string::npos);
}

TEST(Deadlock, TokenlessCycleBlocksBothActors) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    const ChannelId ab = g.add_channel(a, b, 0);
    const ChannelId ba = g.add_channel(b, a, 0);
    const DeadlockDiagnosis d = diagnose_deadlock(g);
    ASSERT_TRUE(d.deadlocked);
    ASSERT_EQ(d.blocked.size(), 2u);
    EXPECT_EQ(d.blocked[0].actor, a);
    EXPECT_EQ(d.blocked[0].channel, ba);
    EXPECT_EQ(d.blocked[0].available, 0);
    EXPECT_EQ(d.blocked[0].required, 1);
    EXPECT_EQ(d.blocked[0].remaining_firings, 1);
    EXPECT_EQ(d.blocked[1].actor, b);
    EXPECT_EQ(d.blocked[1].channel, ab);
    const std::string report = d.describe(g);
    EXPECT_NE(report.find("deadlock"), std::string::npos);
    EXPECT_NE(report.find("a blocked on channel b -> a"), std::string::npos);
}

TEST(Deadlock, PartialProgressIsAccounted) {
    // a can fire once (of two) before the iteration stalls.
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 1, 2, 0);
    const ChannelId ba = g.add_channel(b, a, 2, 1, 1);
    const DeadlockDiagnosis d = diagnose_deadlock(g);
    ASSERT_TRUE(d.deadlocked);
    // a stalled with one firing left, starving on the feedback channel
    // that holds 0 of 1 tokens; b starving on the forward channel (1 of 2).
    bool a_seen = false;
    bool b_seen = false;
    for (const Starvation& s : d.blocked) {
        if (s.actor == a) {
            EXPECT_EQ(s.channel, ba);
            EXPECT_EQ(s.remaining_firings, 1);
            EXPECT_EQ(s.available, 0);
            a_seen = true;
        }
        if (s.actor == b) {
            EXPECT_EQ(s.available, 1);
            EXPECT_EQ(s.required, 2);
            b_seen = true;
        }
    }
    EXPECT_TRUE(a_seen);
    EXPECT_TRUE(b_seen);
}

TEST(Deadlock, InconsistentGraphRejected) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    g.add_channel(a, a, 2, 1, 5);
    EXPECT_THROW(diagnose_deadlock(g), InconsistentGraphError);
}

class DeadlockProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeadlockProperty, DiagnosisAgreesWithLiveness) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    RandomSdfOptions options;
    options.self_loops = (GetParam() % 2) == 0;
    Graph g = random_sdf(rng, options);
    // Randomly strip tokens from some channels to create real deadlocks.
    std::uniform_int_distribution<int> coin(0, 2);
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        if (coin(rng) == 0) {
            g.set_initial_tokens(c, 0);
        }
    }
    const DeadlockDiagnosis d = diagnose_deadlock(g);
    EXPECT_EQ(d.deadlocked, !is_live(g));
    if (d.deadlocked) {
        EXPECT_FALSE(d.blocked.empty());
        for (const Starvation& s : d.blocked) {
            EXPECT_LT(s.available, s.required);
            EXPECT_GT(s.remaining_firings, 0);
            EXPECT_EQ(g.channel(s.channel).dst, s.actor);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeadlockProperty, ::testing::Range(0, 50));

}  // namespace
}  // namespace sdf
