// test_serve_persist.cpp — the crash-safe disk cache behind `sdfred serve`.
//
// Four layers, matching the guarantees persist.hpp makes:
//
//   * FORMAT tests pin the record encoding (magic, little-endian lengths,
//     CRC-64/XZ trailer) and prove decode() rejects every corruption class
//     instead of trusting it.
//   * CACHE tests drive PersistentCache directly: atomic put/load round
//     trips, stray-temp sweeping, the advisory index, and the startup
//     refusal of an unusable directory.
//   * SERVE tests go through ServeCore: a warm restart replays
//     bit-identically, and — the headline acceptance criterion — a
//     deliberately corrupted entry is quarantined with a logged warning
//     while every OTHER key still replays bit-identically.
//   * FAULT tests arm the SDFRED_FAULT_INJECT I/O class (io-write,
//     io-fsync, io-read, torn-write) and check each failure degrades to a
//     clean miss, never a corrupt replay.  The crash-restart fuzz oracle
//     then sweeps simulated kills at every persistence point of 200+
//     random request scripts.

#include <gtest/gtest.h>

#include <dirent.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/crc64.hpp"
#include "base/errors.hpp"
#include "io/text.hpp"
#include "robust/fault.hpp"
#include "serve/json.hpp"
#include "serve/oracle.hpp"
#include "serve/persist.hpp"
#include "serve/service.hpp"
#include "verify/fuzz.hpp"

namespace sdf {
namespace serve {
namespace {

/// Self-deleting scratch directory (files and all) for cache tests.
class TempDir {
public:
    TempDir() {
        const char* base = std::getenv("TMPDIR");
        std::string pattern =
            std::string(base != nullptr && *base != '\0' ? base : "/tmp") +
            "/sdfred-persist-XXXXXX";
        std::vector<char> buffer(pattern.begin(), pattern.end());
        buffer.push_back('\0');
        if (::mkdtemp(buffer.data()) != nullptr) {
            path_ = buffer.data();
        }
    }
    ~TempDir() {
        if (path_.empty()) {
            return;
        }
        if (DIR* dir = ::opendir(path_.c_str())) {
            for (const dirent* entry = ::readdir(dir); entry != nullptr;
                 entry = ::readdir(dir)) {
                if (std::strcmp(entry->d_name, ".") == 0 ||
                    std::strcmp(entry->d_name, "..") == 0) {
                    continue;
                }
                ::unlink((path_ + "/" + entry->d_name).c_str());
            }
            ::closedir(dir);
        }
        ::rmdir(path_.c_str());
    }
    TempDir(const TempDir&) = delete;
    TempDir& operator=(const TempDir&) = delete;
    [[nodiscard]] const std::string& path() const { return path_; }

private:
    std::string path_;
};

std::vector<std::string> entry_files(const std::string& dir_path) {
    std::vector<std::string> names;
    if (DIR* dir = ::opendir(dir_path.c_str())) {
        for (const dirent* entry = ::readdir(dir); entry != nullptr;
             entry = ::readdir(dir)) {
            const std::string name = entry->d_name;
            if (name.size() > 5 && name.substr(name.size() - 5) == ".sdfp") {
                names.push_back(name);
            }
        }
        ::closedir(dir);
    }
    return names;
}

std::string read_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

constexpr const char* kCycleModel =
    "graph g\nactor a 2\nactor b 3\n"
    "channel a b 1 1 1\nchannel b a 1 1 1\n";

std::string throughput_line(std::int64_t id, const std::string& model) {
    Json request = Json::object();
    request.set("id", Json::integer(id));
    request.set("op", Json::string("throughput"));
    request.set("model", Json::string(model));
    return request.dump();
}

std::string cache_of(const Json& response) {
    const Json* cache = response.find("cache");
    return cache != nullptr ? cache->as_string() : "";
}

PersistedEntry sample_entry() {
    PersistedEntry entry;
    entry.graph_key = "graph g\nactor a 1\n";
    entry.op_key = "throughput|";
    entry.exit_code = 0;
    entry.result = "{\"status\":\"exact\"}";
    return entry;
}

// ---------------------------------------------------------------------------
// CRC-64 and the record format
// ---------------------------------------------------------------------------

TEST(Crc64, MatchesTheXzCheckValue) {
    // The standard CRC-64/XZ check value; a table or parameter slip would
    // silently quarantine (or worse, accept) every persisted entry.
    EXPECT_EQ(crc64("123456789"), 0x995DC9BBDF1939FAull);
    EXPECT_EQ(crc64(""), 0u);
}

TEST(Crc64, UpdateChainsLikeConcatenation) {
    const std::string a = "atomic";
    const std::string b = "rename";
    EXPECT_EQ(crc64_update(crc64(a), b.data(), b.size()), crc64(a + b));
}

TEST(PersistFormat, EncodeDecodeRoundTrips) {
    const PersistedEntry entry = sample_entry();
    const std::string bytes = PersistentCache::encode(entry);
    PersistedEntry decoded;
    std::string reason;
    ASSERT_TRUE(PersistentCache::decode(bytes, decoded, reason)) << reason;
    EXPECT_EQ(decoded.graph_key, entry.graph_key);
    EXPECT_EQ(decoded.op_key, entry.op_key);
    EXPECT_EQ(decoded.exit_code, entry.exit_code);
    EXPECT_EQ(decoded.result, entry.result);
    // Header (28) + payloads + CRC trailer (8), nothing more.
    EXPECT_EQ(bytes.size(), 28 + entry.graph_key.size() + entry.op_key.size() +
                                entry.result.size() + 8);
    EXPECT_EQ(bytes.substr(0, 8), "SDFREDP1");
}

TEST(PersistFormat, DecodeRejectsEveryCorruptionClass) {
    const std::string bytes = PersistentCache::encode(sample_entry());
    PersistedEntry decoded;
    std::string reason;
    // Truncation, anywhere.
    for (const std::size_t keep : {std::size_t{0}, std::size_t{7},
                                   std::size_t{27}, bytes.size() - 1}) {
        EXPECT_FALSE(
            PersistentCache::decode(bytes.substr(0, keep), decoded, reason))
            << "accepted a record truncated to " << keep << " bytes";
    }
    // Wrong magic.
    std::string wrong_magic = bytes;
    wrong_magic[0] = 'X';
    EXPECT_FALSE(PersistentCache::decode(wrong_magic, decoded, reason));
    // A single flipped payload bit must fail the CRC.
    std::string flipped = bytes;
    flipped[30] = static_cast<char>(flipped[30] ^ 0x01);
    EXPECT_FALSE(PersistentCache::decode(flipped, decoded, reason));
    EXPECT_NE(reason.find("checksum"), std::string::npos) << reason;
    // Appended garbage changes the length without touching the stored CRC.
    EXPECT_FALSE(PersistentCache::decode(bytes + "garbage", decoded, reason));
}

TEST(PersistFormat, EntryNameIsAnAddressNotAnIdentity) {
    const std::string name = PersistentCache::entry_name("model-a", "op-a");
    EXPECT_EQ(name, PersistentCache::entry_name("model-a", "op-a"));
    EXPECT_NE(name, PersistentCache::entry_name("model-b", "op-a"));
    EXPECT_NE(name, PersistentCache::entry_name("model-a", "op-b"));
    EXPECT_EQ(name.substr(name.size() - 5), ".sdfp");
}

// ---------------------------------------------------------------------------
// PersistentCache, driven directly
// ---------------------------------------------------------------------------

TEST(PersistCache, PutThenLoadAllRoundTrips) {
    TempDir dir;
    PersistOptions options;
    options.dir = dir.path();
    options.fsync_writes = false;  // keep the suite fast; CRC still guards
    {
        PersistentCache cache(options);
        EXPECT_TRUE(cache.put("graph g\nactor a 1\n", "throughput|", 0, "{}"));
        EXPECT_TRUE(cache.put("graph g\nactor b 2\n", "lint|", 1, "{\"k\":1}"));
        EXPECT_EQ(cache.stats().writes, 2u);
        EXPECT_EQ(cache.stats().write_errors, 0u);
    }
    PersistentCache reopened(options);
    const std::vector<PersistedEntry> loaded = reopened.load_all();
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(reopened.stats().loaded, 2u);
    EXPECT_EQ(reopened.stats().quarantined, 0u);
    for (const PersistedEntry& entry : loaded) {
        if (entry.op_key == "throughput|") {
            EXPECT_EQ(entry.graph_key, "graph g\nactor a 1\n");
            EXPECT_EQ(entry.exit_code, 0);
            EXPECT_EQ(entry.result, "{}");
        } else {
            EXPECT_EQ(entry.op_key, "lint|");
            EXPECT_EQ(entry.exit_code, 1);
            EXPECT_EQ(entry.result, "{\"k\":1}");
        }
    }
}

TEST(PersistCache, ConstructorRefusesAnUnusableDirectory) {
    // A daemon asked to persist under a FILE must fail at startup, not
    // silently run volatile.
    TempDir dir;
    const std::string file = dir.path() + "/occupied";
    write_bytes(file, "not a directory");
    PersistOptions options;
    options.dir = file + "/cache";
    EXPECT_THROW(PersistentCache{options}, Error);
}

TEST(PersistCache, StrayTempFilesAreSweptAtLoad) {
    TempDir dir;
    // What a kill between open and rename leaves behind.
    write_bytes(dir.path() + "/.tmp-999-1", "half an entry");
    PersistOptions options;
    options.dir = dir.path();
    PersistentCache cache(options);
    EXPECT_TRUE(cache.load_all().empty());
    EXPECT_EQ(cache.stats().swept_temps, 1u);
    EXPECT_TRUE(entry_files(dir.path()).empty());
    EXPECT_NE(::access((dir.path() + "/.tmp-999-1").c_str(), F_OK), 0)
        << "the stray temp file should be gone";
}

TEST(PersistCache, SyncWritesTheAdvisoryIndex) {
    TempDir dir;
    PersistOptions options;
    options.dir = dir.path();
    options.fsync_writes = false;
    PersistentCache cache(options);
    EXPECT_TRUE(cache.put("graph g\nactor a 1\n", "throughput|", 0, "{}"));
    cache.sync();
    const std::string index = read_bytes(dir.path() + "/index");
    EXPECT_EQ(index.rfind("sdfred-persist-index v1\n", 0), 0u) << index;
    EXPECT_NE(index.find("entries 1\n"), std::string::npos) << index;
}

TEST(PersistCache, StopAfterWritesDropsLaterPuts) {
    TempDir dir;
    PersistOptions options;
    options.dir = dir.path();
    options.fsync_writes = false;
    options.stop_after_writes = 1;
    PersistentCache cache(options);
    EXPECT_TRUE(cache.put("graph g\nactor a 1\n", "throughput|", 0, "{}"));
    EXPECT_FALSE(cache.put("graph g\nactor b 1\n", "throughput|", 0, "{}"));
    EXPECT_EQ(cache.stats().writes, 1u);
    EXPECT_EQ(cache.stats().dropped, 1u);
    EXPECT_EQ(entry_files(dir.path()).size(), 1u);
}

// ---------------------------------------------------------------------------
// Warm restart through ServeCore
// ---------------------------------------------------------------------------

TEST(PersistServe, WarmRestartReplaysBitIdentically) {
    TempDir dir;
    ServeOptions serve_options;
    serve_options.cache_dir = dir.path();
    serve_options.persist_fsync = false;
    const std::string line = throughput_line(1, kCycleModel);
    std::string cold_response;
    {
        ServeCore cold(serve_options);
        cold_response = cold.handle_line(line);
        EXPECT_EQ(cache_of(Json::parse(cold_response)), "miss");
    }
    // A new process: same directory, nothing in memory.
    ServeCore warm(serve_options);
    const Json replayed = Json::parse(warm.handle_line(line));
    EXPECT_EQ(cache_of(replayed), "hit");
    const Json cold_parsed = Json::parse(cold_response);
    EXPECT_EQ(replayed.find("result")->dump(),
              cold_parsed.find("result")->dump());
    EXPECT_EQ(replayed.find("exit")->as_integer(),
              cold_parsed.find("exit")->as_integer());
    // The health op reports the warmed entry.
    const Json health = Json::parse(warm.handle_line("{\"id\":2,\"op\":\"health\"}"));
    const Json* persist = health.find("result")->find("persist");
    ASSERT_NE(persist, nullptr);
    EXPECT_TRUE(persist->find("enabled")->as_boolean());
    EXPECT_EQ(persist->find("warmed")->as_integer(), 1);
}

TEST(PersistServe, CorruptedEntryIsQuarantinedWhileOthersReplay) {
    // THE acceptance criterion: corrupt ONE entry on disk; after restart it
    // is quarantined with a logged warning, every other key replays
    // bit-identically from disk, and the corrupted key recomputes to the
    // same bytes as the original run — a clean miss, never a wrong answer.
    TempDir dir;
    const std::vector<std::string> models = {
        kCycleModel,
        "graph g\nactor a 1\nactor b 1\nchannel a b 1 1 1\nchannel b a 1 1 2\n",
        "graph g\nactor a 4\nactor b 1\nchannel a b 2 1 2\nchannel b a 1 2 1\n",
    };
    std::vector<std::string> reference;
    {
        ServeOptions serve_options;
        serve_options.cache_dir = dir.path();
        serve_options.persist_fsync = false;
        ServeCore core(serve_options);
        for (std::size_t i = 0; i < models.size(); ++i) {
            reference.push_back(core.handle_line(
                throughput_line(static_cast<std::int64_t>(i), models[i])));
        }
    }
    ASSERT_EQ(entry_files(dir.path()).size(), models.size());

    // Corrupt the victim's entry file (appended garbage fails the CRC).
    const std::string victim_key =
        write_text_string(read_text_string(models[1]));
    const std::string victim_file =
        dir.path() + "/" + PersistentCache::entry_name(victim_key, "throughput|");
    const std::string intact = read_bytes(victim_file);
    ASSERT_FALSE(intact.empty()) << "test premise: the entry exists on disk";
    write_bytes(victim_file, intact + "bitrot");

    std::ostringstream warnings;
    PersistOptions persist_options;
    persist_options.dir = dir.path();
    persist_options.fsync_writes = false;
    persist_options.log = &warnings;
    PersistentCache survivor(persist_options);
    ServeCore core;
    EXPECT_EQ(core.attach_persistence(&survivor), models.size() - 1);
    EXPECT_EQ(survivor.stats().quarantined, 1u);
    EXPECT_NE(warnings.str().find("quarantined"), std::string::npos)
        << "quarantine must be logged, not silent: " << warnings.str();

    for (std::size_t i = 0; i < models.size(); ++i) {
        SCOPED_TRACE("model " + std::to_string(i));
        const Json replayed = Json::parse(core.handle_line(
            throughput_line(static_cast<std::int64_t>(i), models[i])));
        const Json expected = Json::parse(reference[i]);
        // The victim misses cleanly and recomputes; the others replay.
        EXPECT_EQ(cache_of(replayed), i == 1 ? "miss" : "hit");
        EXPECT_EQ(replayed.find("result")->dump(),
                  expected.find("result")->dump());
        EXPECT_EQ(replayed.find("exit")->as_integer(),
                  expected.find("exit")->as_integer());
    }
    // The corrupted file was moved aside, not deleted (forensics) — and
    // never re-trusted.
    EXPECT_EQ(::access((victim_file + ".quarantined").c_str(), F_OK), 0);
}

// ---------------------------------------------------------------------------
// The SDFRED_FAULT_INJECT I/O class
// ---------------------------------------------------------------------------

TEST(PersistFault, InjectedWriteFailureDegradesToACleanMiss) {
    TempDir dir;
    PersistOptions options;
    options.dir = dir.path();
    options.fsync_writes = false;
    std::ostringstream warnings;
    options.log = &warnings;
    PersistentCache cache(options);
    {
        FaultInjectionScope scope("io-write:1");
        EXPECT_FALSE(cache.put("graph g\nactor a 1\n", "throughput|", 0, "{}"));
    }
    EXPECT_EQ(cache.stats().write_errors, 1u);
    EXPECT_TRUE(entry_files(dir.path()).empty())
        << "a failed write must not leave an entry under the final name";
    // The very next put succeeds: the failure was the injection, not state.
    EXPECT_TRUE(cache.put("graph g\nactor a 1\n", "throughput|", 0, "{}"));
    EXPECT_EQ(entry_files(dir.path()).size(), 1u);
}

TEST(PersistFault, InjectedFsyncFailureDropsTheEntry) {
    TempDir dir;
    PersistOptions options;
    options.dir = dir.path();
    options.fsync_writes = true;  // the fsync path must be exercised
    std::ostringstream warnings;
    options.log = &warnings;
    PersistentCache cache(options);
    {
        FaultInjectionScope scope("io-fsync:1");
        EXPECT_FALSE(cache.put("graph g\nactor a 1\n", "throughput|", 0, "{}"));
    }
    EXPECT_EQ(cache.stats().write_errors, 1u);
    EXPECT_TRUE(entry_files(dir.path()).empty());
}

TEST(PersistFault, InjectedReadFailureQuarantinesAtWarmStart) {
    TempDir dir;
    PersistOptions options;
    options.dir = dir.path();
    options.fsync_writes = false;
    {
        PersistentCache cache(options);
        ASSERT_TRUE(cache.put("graph g\nactor a 1\n", "throughput|", 0, "{}"));
    }
    std::ostringstream warnings;
    options.log = &warnings;
    PersistentCache reopened(options);
    FaultInjectionScope scope("io-read:1");
    EXPECT_TRUE(reopened.load_all().empty());
    EXPECT_EQ(reopened.stats().quarantined, 1u);
    EXPECT_NE(warnings.str().find("quarantined"), std::string::npos);
}

TEST(PersistFault, InjectedTornWriteIsDetectedAtRestart) {
    // torn-write:12 — the rename lands but only the first 12 bytes survive,
    // exactly the disk state an unflushed page cache leaves after a crash.
    TempDir dir;
    PersistOptions options;
    options.dir = dir.path();
    options.fsync_writes = false;
    std::ostringstream warnings;
    options.log = &warnings;
    {
        PersistentCache cache(options);
        FaultInjectionScope scope("torn-write:12");
        EXPECT_FALSE(cache.put("graph g\nactor a 1\n", "throughput|", 0, "{}"));
        EXPECT_EQ(cache.stats().torn, 1u);
        ASSERT_EQ(entry_files(dir.path()).size(), 1u)
            << "a torn write still lands under the final name";
    }
    PersistentCache reopened(options);
    EXPECT_TRUE(reopened.load_all().empty());
    EXPECT_EQ(reopened.stats().quarantined, 1u);
}

// ---------------------------------------------------------------------------
// The crash-restart fuzz oracle
// ---------------------------------------------------------------------------

TEST(CrashOracle, RegistersAsExtraAndIdempotently) {
    register_crash_restart_oracle();
    register_crash_restart_oracle();
    int seen = 0;
    bool extra = false;
    for (const Oracle& oracle : oracle_registry()) {
        if (oracle.id == "crash-restart") {
            ++seen;
            extra = oracle.extra;
        }
    }
    EXPECT_EQ(seen, 1);
    EXPECT_TRUE(extra);
}

TEST(CrashOracle, CampaignOverTwoHundredRandomScripts) {
    // The ISSUE's acceptance bar: >= 200 random request scripts, a
    // simulated kill at EVERY persistence point of each (the oracle sweeps
    // kill-after-k-writes and torn-write positions internally), zero
    // corrupt replays.
    register_crash_restart_oracle();
    FuzzOptions options;
    options.seed = 20260808;
    options.iterations = 200;
    options.oracles = {"crash-restart"};
    options.write_failures = false;
    options.shrink = false;
    options.limits.max_actors = 12;  // keep each script's analysis cheap
    const FuzzReport report = run_fuzz(options);
    EXPECT_EQ(report.iterations, 200u);
    EXPECT_TRUE(report.clean());
    for (const FuzzFailure& failure : report.failures) {
        ADD_FAILURE() << "seed " << failure.seed << ": "
                      << failure.verdict.detail;
    }
    // The campaign must actually exercise the oracle, not skip its way to
    // green: by_oracle tallies {pass, skip, reject, fail}.
    const auto tally = report.by_oracle.find("crash-restart");
    ASSERT_NE(tally, report.by_oracle.end());
    EXPECT_GT(tally->second[0], 150u) << "too many skips to call this a sweep";
    EXPECT_EQ(tally->second[3], 0u);
}

}  // namespace
}  // namespace serve
}  // namespace sdf
