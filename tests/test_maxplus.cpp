// Unit tests for maxplus/value.hpp, vector.hpp and matrix.hpp.
#include <gtest/gtest.h>

#include "base/errors.hpp"
#include "maxplus/matrix.hpp"

namespace sdf {
namespace {

TEST(MpValue, MinusInfinityIsNeutralForMax) {
    const MpValue bottom = MpValue::minus_infinity();
    EXPECT_EQ(mp_max(bottom, MpValue(3)), MpValue(3));
    EXPECT_EQ(mp_max(MpValue(3), bottom), MpValue(3));
    EXPECT_EQ(mp_max(bottom, bottom), bottom);
    EXPECT_EQ(mp_max(MpValue(2), MpValue(5)), MpValue(5));
}

TEST(MpValue, MinusInfinityAbsorbsPlus) {
    const MpValue bottom = MpValue::minus_infinity();
    EXPECT_TRUE(mp_plus(bottom, MpValue(3)).is_minus_infinity());
    EXPECT_TRUE(mp_plus(MpValue(3), bottom).is_minus_infinity());
    EXPECT_EQ(mp_plus(MpValue(2), MpValue(5)), MpValue(7));
}

TEST(MpValue, OrderingPutsMinusInfinityBelowEverything) {
    EXPECT_LT(MpValue::minus_infinity(), MpValue(-1000000));
    EXPECT_LT(MpValue(1), MpValue(2));
    EXPECT_EQ(MpValue::minus_infinity(), MpValue::minus_infinity());
    EXPECT_NE(MpValue::minus_infinity(), MpValue(0));
}

TEST(MpValue, ValueThrowsOnMinusInfinity) {
    EXPECT_THROW(MpValue::minus_infinity().value(), ArithmeticError);
    EXPECT_EQ(MpValue(7).value(), 7);
}

TEST(MpValue, ToString) {
    EXPECT_EQ(MpValue(42).to_string(), "42");
    EXPECT_EQ(MpValue::minus_infinity().to_string(), "-inf");
}

TEST(MpVector, UnitVector) {
    const MpVector u = MpVector::unit(3, 1);
    EXPECT_TRUE(u[0].is_minus_infinity());
    EXPECT_EQ(u[1], MpValue(0));
    EXPECT_TRUE(u[2].is_minus_infinity());
    EXPECT_THROW(MpVector::unit(3, 3), ArithmeticError);
}

TEST(MpVector, MaxWithAndPlus) {
    MpVector a(2);
    a[0] = MpValue(1);
    MpVector b(2);
    b[1] = MpValue(4);
    const MpVector m = a.max_with(b);
    EXPECT_EQ(m[0], MpValue(1));
    EXPECT_EQ(m[1], MpValue(4));
    const MpVector p = m.plus(10);
    EXPECT_EQ(p[0], MpValue(11));
    EXPECT_EQ(p[1], MpValue(14));
    EXPECT_THROW(a.max_with(MpVector(3)), ArithmeticError);
}

TEST(MpVector, MaxEntryAndBottom) {
    MpVector v(3);
    EXPECT_TRUE(v.is_bottom());
    EXPECT_TRUE(v.max_entry().is_minus_infinity());
    v[2] = MpValue(-5);
    EXPECT_FALSE(v.is_bottom());
    EXPECT_EQ(v.max_entry(), MpValue(-5));
}

TEST(MpMatrix, IdentityIsMultiplicativeNeutral) {
    MpMatrix m(2, 2);
    m.set(0, 0, MpValue(1));
    m.set(0, 1, MpValue(2));
    m.set(1, 0, MpValue(3));
    const MpMatrix id = MpMatrix::identity(2);
    EXPECT_EQ(m.multiply(id), m);
    EXPECT_EQ(id.multiply(m), m);
}

TEST(MpMatrix, MultiplyMatchesDefinition) {
    // ((0, 1), (-inf, 2)) squared.
    MpMatrix m(2, 2);
    m.set(0, 0, MpValue(0));
    m.set(0, 1, MpValue(1));
    m.set(1, 1, MpValue(2));
    const MpMatrix sq = m.multiply(m);
    EXPECT_EQ(sq.at(0, 0), MpValue(0));
    EXPECT_EQ(sq.at(0, 1), MpValue(3));  // max(0+1, 1+2)
    EXPECT_TRUE(sq.at(1, 0).is_minus_infinity());
    EXPECT_EQ(sq.at(1, 1), MpValue(4));
}

TEST(MpMatrix, PowerBySquaringMatchesIteratedMultiply) {
    MpMatrix m(3, 3);
    m.set(0, 1, MpValue(2));
    m.set(1, 2, MpValue(3));
    m.set(2, 0, MpValue(5));
    m.set(0, 0, MpValue(1));
    MpMatrix direct = MpMatrix::identity(3);
    for (int i = 0; i < 5; ++i) {
        direct = direct.multiply(m);
    }
    EXPECT_EQ(m.power(5), direct);
    EXPECT_EQ(m.power(0), MpMatrix::identity(3));
    EXPECT_EQ(m.power(1), m);
    EXPECT_THROW(m.power(-1), ArithmeticError);
}

TEST(MpMatrix, ColumnRoundTrip) {
    MpMatrix m(2, 2);
    MpVector col(2);
    col[0] = MpValue(4);
    m.set_column(1, col);
    EXPECT_EQ(m.column(1), col);
    EXPECT_EQ(m.at(0, 1), MpValue(4));
    EXPECT_TRUE(m.at(1, 1).is_minus_infinity());
    EXPECT_EQ(m.finite_entry_count(), 1u);
}

TEST(MpMatrix, PrecedenceGraphHasOneEdgePerFiniteEntry) {
    MpMatrix m(2, 2);
    m.set(0, 1, MpValue(7));
    m.set(1, 0, MpValue(0));
    const Digraph g = m.precedence_graph();
    EXPECT_EQ(g.node_count(), 2u);
    ASSERT_EQ(g.edge_count(), 2u);
    for (const auto& e : g.edges()) {
        EXPECT_EQ(e.tokens, 1);
    }
    EXPECT_THROW(MpMatrix(2, 3).precedence_graph(), ArithmeticError);
}

TEST(MpMatrix, MaxEntry) {
    MpMatrix m(2, 2);
    EXPECT_TRUE(m.max_entry().is_minus_infinity());
    m.set(1, 0, MpValue(-3));
    m.set(0, 1, MpValue(9));
    EXPECT_EQ(m.max_entry(), MpValue(9));
}

}  // namespace
}  // namespace sdf
