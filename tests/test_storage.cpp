// Unit + property tests for analysis/storage.hpp and the
// minimum_buffer_for_period helper of analysis/pareto.hpp.
#include <gtest/gtest.h>

#include <random>

#include "analysis/buffers.hpp"
#include "analysis/pareto.hpp"
#include "analysis/storage.hpp"
#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "gen/benchmarks.hpp"
#include "gen/random_sdf.hpp"

namespace sdf {
namespace {

TEST(Storage, SequentialRingClaimsOneTokenPerChannel) {
    Graph g;
    const ActorId a = g.add_actor("a", 2);
    const ActorId b = g.add_actor("b", 3);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 1);
    const std::vector<Int> marks = self_timed_storage(g);
    EXPECT_EQ(marks[0], 1);  // at most one claim travels a -> b
    EXPECT_EQ(marks[1], 1);
    EXPECT_EQ(self_timed_storage_total(g), 2);
}

TEST(Storage, RateChangeClaimsAFullBlock) {
    // a produces 4 per firing, b consumes 1: the channel holds a block.
    Graph g;
    const ActorId a = g.add_actor("a", 4);
    const ActorId b = g.add_actor("b", 1);
    const ChannelId ab = g.add_channel(a, b, 4, 1, 0);
    g.add_channel(b, a, 1, 4, 4);
    g.add_channel(a, a, 1);
    g.add_channel(b, b, 1);
    const std::vector<Int> marks = self_timed_storage(g);
    EXPECT_GE(marks[ab], 4);
}

TEST(Storage, InitialTokensCountTowardsTheMark) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    g.add_channel(a, a, 3);
    EXPECT_GE(self_timed_storage(g)[0], 3);
}

TEST(Storage, ClaimsCoverInFlightProduction) {
    // Producer with 2-deep pipelining into a slow consumer: while two
    // firings are in flight, both claims count even though no token has
    // materialised yet.
    Graph g;
    const ActorId p = g.add_actor("p", 1);
    const ActorId c = g.add_actor("c", 6);
    const ChannelId pc = g.add_channel(p, c, 0);
    g.add_channel(c, p, 4);
    g.add_channel(p, p, 2);
    g.add_channel(c, c, 1);
    const std::vector<Int> marks = self_timed_storage(g);
    EXPECT_GE(marks[pc], 3);
}

TEST(Storage, DeadlockedGraphThrows) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 0);
    EXPECT_THROW(self_timed_storage(g), DeadlockError);
}

TEST(MinimumBuffer, PicksTheCheapestPointMeetingTheTarget) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 4);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 4);
    g.add_channel(a, a, 1);
    g.add_channel(b, b, 4);  // b may pipeline up to 4 deep
    const std::vector<ParetoPoint> curve = buffer_throughput_tradeoff(g);
    ASSERT_GE(curve.size(), 2u);
    // Any achievable target picks a point exactly on the curve.
    const ParetoPoint best = minimum_buffer_for_period(g, curve.front().period);
    EXPECT_EQ(best.total_buffer, curve.front().total_buffer);
    const ParetoPoint tightest = minimum_buffer_for_period(g, curve.back().period);
    EXPECT_EQ(tightest.period, curve.back().period);
    // Unreachable target throws.
    EXPECT_THROW(minimum_buffer_for_period(g, curve.back().period / Rational(2)),
                 Error);
}

class StorageProperty : public ::testing::TestWithParam<int> {};

TEST_P(StorageProperty, SpaceMarksAreThroughputPreservingCapacities) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    RandomSdfOptions options;
    options.min_actors = 3;
    options.max_actors = 5;
    options.max_execution_time = 5;
    Graph g = random_sdf(rng, options);
    // Zero-time cycles break the recurrence engine; nudge times up.
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        if (g.actor(a).execution_time == 0) {
            g.set_execution_time(a, 1);
        }
    }
    const ThroughputResult open = throughput_symbolic(g);
    if (!open.is_finite() || open.period.is_zero()) {
        return;
    }
    const std::vector<Int> marks = self_timed_storage(g);
    // Marks always cover the initial tokens.
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        EXPECT_GE(marks[c], g.channel(c).initial_tokens);
    }
    // Granting exactly the claimed space reproduces the execution: the
    // closed graph keeps the open period.
    const Graph bounded = with_buffer_capacities(g, marks);
    const ThroughputResult closed = throughput_symbolic(bounded);
    ASSERT_TRUE(closed.is_finite());
    EXPECT_EQ(closed.period, open.period);
}

TEST_P(StorageProperty, MarksAreInvariantUnderTimeScaling) {
    // Scaling every execution time by the same factor stretches the
    // self-timed schedule without reordering it, so the claim pattern — and
    // with it every storage mark — is unchanged.
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 700);
    RandomSdfOptions options;
    options.min_actors = 3;
    options.max_actors = 4;
    options.max_execution_time = 5;
    Graph g = random_sdf(rng, options);
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        if (g.actor(a).execution_time == 0) {
            g.set_execution_time(a, 1);
        }
    }
    const ThroughputResult open = throughput_symbolic(g);
    if (!open.is_finite() || open.period.is_zero()) {
        return;
    }
    Graph scaled = g;
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        scaled.set_execution_time(a, g.actor(a).execution_time * 3);
    }
    EXPECT_EQ(self_timed_storage(scaled), self_timed_storage(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace sdf
