// Unit tests for base/rational.hpp and base/checked.hpp.
#include "base/rational.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace sdf {
namespace {

TEST(Checked, AddDetectsOverflow) {
    EXPECT_EQ(checked_add(2, 3), 5);
    EXPECT_THROW(checked_add(std::numeric_limits<Int>::max(), 1), ArithmeticError);
    EXPECT_THROW(checked_add(std::numeric_limits<Int>::min(), -1), ArithmeticError);
}

TEST(Checked, SubDetectsOverflow) {
    EXPECT_EQ(checked_sub(2, 3), -1);
    EXPECT_THROW(checked_sub(std::numeric_limits<Int>::min(), 1), ArithmeticError);
}

TEST(Checked, MulDetectsOverflow) {
    EXPECT_EQ(checked_mul(-4, 5), -20);
    EXPECT_THROW(checked_mul(std::numeric_limits<Int>::max(), 2), ArithmeticError);
}

TEST(Checked, LcmHandlesZeroAndSigns) {
    EXPECT_EQ(checked_lcm(0, 5), 0);
    EXPECT_EQ(checked_lcm(4, 6), 12);
    EXPECT_EQ(checked_lcm(21, 6), 42);
}

TEST(Checked, FloorDivModMatchMathematicalDefinition) {
    EXPECT_EQ(floor_div(7, 2), 3);
    EXPECT_EQ(floor_div(-7, 2), -4);
    EXPECT_EQ(floor_div(7, -2), -4);
    EXPECT_EQ(floor_mod(7, 2), 1);
    EXPECT_EQ(floor_mod(-7, 2), 1);
    EXPECT_EQ(floor_mod(-6, 3), 0);
    EXPECT_EQ(ceil_div(7, 2), 4);
    EXPECT_EQ(ceil_div(-7, 2), -3);
    EXPECT_EQ(ceil_div(6, 3), 2);
    EXPECT_THROW(floor_div(1, 0), ArithmeticError);
}

TEST(Rational, NormalisesToLowestTerms) {
    const Rational r(6, -4);
    EXPECT_EQ(r.num(), -3);
    EXPECT_EQ(r.den(), 2);
    EXPECT_EQ(Rational(0, 7), Rational(0));
    EXPECT_THROW(Rational(1, 0), ArithmeticError);
}

TEST(Rational, Arithmetic) {
    EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
    EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
    EXPECT_EQ(Rational(2, 3) * Rational(9, 4), Rational(3, 2));
    EXPECT_EQ(Rational(2, 3) / Rational(4, 9), Rational(3, 2));
    EXPECT_EQ(-Rational(2, 3), Rational(-2, 3));
    EXPECT_THROW(Rational(1) / Rational(0), ArithmeticError);
}

TEST(Rational, ComparisonIsExact) {
    EXPECT_LT(Rational(1, 3), Rational(1, 2));
    EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
    EXPECT_EQ(Rational(2, 4), Rational(1, 2));
    EXPECT_LE(Rational(5), Rational(5));
}

TEST(Rational, FloorCeilToString) {
    EXPECT_EQ(Rational(7, 2).floor(), 3);
    EXPECT_EQ(Rational(7, 2).ceil(), 4);
    EXPECT_EQ(Rational(-7, 2).floor(), -4);
    EXPECT_EQ(Rational(-7, 2).ceil(), -3);
    EXPECT_EQ(Rational(3, 7).to_string(), "3/7");
    EXPECT_EQ(Rational(14, 7).to_string(), "2");
}

TEST(Rational, ReciprocalAndPredicates) {
    EXPECT_EQ(Rational(3, 7).reciprocal(), Rational(7, 3));
    EXPECT_TRUE(Rational(4, 2).is_integer());
    EXPECT_FALSE(Rational(1, 2).is_integer());
    EXPECT_TRUE(Rational(0).is_zero());
}

TEST(Rational, MediantStaysBetween) {
    const Rational m = mediant(Rational(1, 3), Rational(1, 2));
    EXPECT_EQ(m, Rational(2, 5));
    EXPECT_LT(Rational(1, 3), m);
    EXPECT_LT(m, Rational(1, 2));
}

TEST(Rational, AvoidsIntermediateOverflowViaCrossReduction) {
    // 2^62/3 * 3/2^62 must not overflow even though the cross products do.
    const Int big = Int{1} << 62;
    EXPECT_EQ(Rational(big, 3) * Rational(3, big), Rational(1));
}

}  // namespace
}  // namespace sdf
