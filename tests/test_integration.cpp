// Integration tests: full pipelines across modules on the reconstructed
// benchmark applications and the paper's case-study graphs.
#include <gtest/gtest.h>

#include "analysis/latency.hpp"
#include "analysis/liveness.hpp"
#include "analysis/throughput.hpp"
#include "gen/benchmarks.hpp"
#include "gen/regular.hpp"
#include "io/text.hpp"
#include "io/xml.hpp"
#include "maxplus/mcm.hpp"
#include "sdf/properties.hpp"
#include "sdf/repetition.hpp"
#include "transform/abstraction.hpp"
#include "transform/compare.hpp"
#include "transform/hsdf_classic.hpp"
#include "transform/hsdf_reduced.hpp"
#include "transform/symbolic.hpp"
#include "transform/unfold.hpp"

namespace sdf {
namespace {

// ---- Benchmark-wide invariants, parameterised over the Table 1 rows. ----

class BenchmarkPipeline : public ::testing::TestWithParam<int> {
protected:
    BenchmarkCase bench_ = table1_benchmarks()[static_cast<std::size_t>(GetParam())];
};

TEST_P(BenchmarkPipeline, ReducedConversionPreservesPeriod) {
    const Rational period = iteration_period(bench_.graph);
    const Graph reduced = to_hsdf_reduced(bench_.graph);
    EXPECT_EQ(iteration_period(reduced), period) << bench_.label;
}

TEST_P(BenchmarkPipeline, ClassicConversionPreservesPeriod) {
    const Rational period = iteration_period(bench_.graph);
    const ClassicHsdf classic = to_hsdf_classic(bench_.graph);
    EXPECT_EQ(iteration_period(classic.graph), period) << bench_.label;
}

TEST_P(BenchmarkPipeline, ReducedSizeBoundsHold) {
    const SymbolicIteration it = symbolic_iteration(bench_.graph);
    const Int n = static_cast<Int>(it.tokens.size());
    const Graph reduced = to_hsdf_reduced(bench_.graph);
    EXPECT_LE(static_cast<Int>(reduced.actor_count()), n * (n + 2)) << bench_.label;
    EXPECT_LE(static_cast<Int>(reduced.channel_count()), n * (2 * n + 1)) << bench_.label;
    EXPECT_LE(reduced.total_initial_tokens(), n) << bench_.label;
}

TEST_P(BenchmarkPipeline, ExactMcrOnReducedGraphMatchesKarpOnMatrix) {
    const SymbolicIteration it = symbolic_iteration(bench_.graph);
    const CycleMetric karp = max_cycle_mean_karp(it.matrix.precedence_graph());
    const Graph reduced = to_hsdf_reduced(bench_.graph);
    const CycleMetric mcr = max_cycle_ratio_exact(dependency_digraph(reduced));
    ASSERT_TRUE(karp.is_finite()) << bench_.label;
    ASSERT_TRUE(mcr.is_finite()) << bench_.label;
    EXPECT_EQ(karp.value, mcr.value) << bench_.label;
}

TEST_P(BenchmarkPipeline, SerialisationRoundTripsKeepAnalysesInvariant) {
    const Graph via_text = read_text_string(write_text_string(bench_.graph));
    const Graph via_xml = read_xml_string(write_xml_string(bench_.graph));
    EXPECT_TRUE(structurally_equal(via_text, bench_.graph)) << bench_.label;
    EXPECT_TRUE(structurally_equal(via_xml, bench_.graph)) << bench_.label;
    EXPECT_EQ(iteration_period(via_text), iteration_period(bench_.graph)) << bench_.label;
    EXPECT_EQ(repetition_vector(via_xml), repetition_vector(bench_.graph)) << bench_.label;
}

TEST_P(BenchmarkPipeline, MakespanDominatesEveryExecutionTime) {
    const Int makespan = iteration_makespan(bench_.graph);
    for (const Actor& a : bench_.graph.actors()) {
        EXPECT_GE(makespan, a.execution_time) << bench_.label << " / " << a.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Table1Rows, BenchmarkPipeline, ::testing::Range(0, 8));

// ---- The paper's end-to-end stories. ----

TEST(PaperStory, Section41FullPipeline) {
    // Figure 1(a) -> abstraction -> Figure 1(b) -> conservative bound.
    const Graph g = figure1_graph(6);
    EXPECT_EQ(iteration_makespan(g), 23);
    EXPECT_EQ(iteration_period(g), Rational(23));

    const AbstractionSpec spec = abstraction_by_name_suffix(g);
    const Graph abstract = abstract_graph(g, spec);
    EXPECT_TRUE(structurally_equal(abstract, figure1_abstract()));
    EXPECT_EQ(iteration_period(abstract), Rational(5));

    // Unfolding the abstract graph and comparing per Proposition 1.
    const Graph unfolded = unfold(abstract_graph(g, spec, /*prune=*/false), spec.fold());
    std::vector<ActorId> image;
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        image.push_back(*unfolded.find_actor(sigma_image_name(spec, a)));
    }
    std::string why;
    EXPECT_TRUE(covers_conservatively(g, unfolded, image, &why)) << why;
    // The unfolding's period is N * 5 = 30 >= 23.
    EXPECT_EQ(iteration_period(unfolded), Rational(30));
}

TEST(PaperStory, Section7PrefetchCaseStudy) {
    // The full 1584-computation remote-memory model of Figure 5; the
    // abstraction is exact.
    const Graph g = prefetch_graph(1584);
    EXPECT_EQ(g.actor_count(), 3u * 1584u);
    const AbstractionSpec spec = abstraction_by_name_suffix(g);
    const Graph abstract = abstract_graph(g, spec);
    EXPECT_EQ(abstract.actor_count(), 3u);
    const Rational original = iteration_period(g);
    const Rational estimated = Rational(spec.fold()) * iteration_period(abstract);
    EXPECT_EQ(original, estimated);
    EXPECT_EQ(original, Rational(15840));
}

TEST(PaperStory, Section6ReducedConversionOnFigure1) {
    // Figure 1(a) has a single initial token: the novel conversion
    // collapses 10 actors into one self-loop actor with the full period.
    const Graph g = figure1_graph(6);
    const Graph reduced = to_hsdf_reduced(g);
    EXPECT_EQ(reduced.actor_count(), 1u);
    EXPECT_EQ(reduced.actor(0).execution_time, 23);
}

TEST(PaperStory, AbstractionChainsWithConversion) {
    // Reductions compose: abstract first, then convert the small graph.
    const Graph g = figure1_graph(12);
    const AbstractionSpec spec = abstraction_by_name_suffix(g);
    const Graph abstract = abstract_graph(g, spec);
    const Graph reduced = to_hsdf_reduced(abstract);
    // The abstract graph has 4 tokens (two self-loops, two on B->A).
    EXPECT_EQ(abstract.total_initial_tokens(), 4);
    EXPECT_EQ(iteration_period(reduced), iteration_period(abstract));
    // Bound survives the composition: 1/(5*12) <= 1/(5*12-7).
    const Rational bound = Rational(1) / (Rational(spec.fold()) * iteration_period(reduced));
    EXPECT_LE(bound, Rational(1, 5 * 12 - 7));
    EXPECT_EQ(bound, Rational(1, 60));
}

}  // namespace
}  // namespace sdf
