// test_absint.cpp — the abstract-interpretation framework: interval
// lattice algebra, the token-interval solver, reachability bounds,
// machine-checkable buffer-bound certificates, the AnalysisManager slots,
// and the fuzz-enforced soundness contract (docs/ABSINT.md).
#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <random>

#include "absint/certificate.hpp"
#include "absint/interval.hpp"
#include "absint/reachability.hpp"
#include "absint/token_intervals.hpp"
#include "analysis/buffers.hpp"
#include "analysis/liveness.hpp"
#include "base/checked.hpp"
#include "gen/random_sdf.hpp"
#include "pass/executor.hpp"
#include "pass/pipeline.hpp"
#include "sdf/graph.hpp"
#include "sdf/properties.hpp"
#include "sdf/repetition.hpp"
#include "verify/fuzz.hpp"
#include "verify/oracles.hpp"

namespace sdf {
namespace {

using absint::Interval;

constexpr Int kIntMax = std::numeric_limits<Int>::max();

// A homogeneous ring of `n` actors with one token on the closing channel.
Graph ring(std::size_t n, Int time = 1) {
    Graph g("ring" + std::to_string(n));
    for (std::size_t i = 0; i < n; ++i) {
        g.add_actor("a" + std::to_string(i), time);
    }
    for (std::size_t i = 0; i < n; ++i) {
        g.add_channel(static_cast<ActorId>(i), static_cast<ActorId>((i + 1) % n), 1,
                      1, i == 0 ? 1 : 0);
    }
    return g;
}

// The paper's running two-actor multirate example: a fires 1x, b fires 2x.
Graph multirate() {
    Graph g("multirate");
    const ActorId a = g.add_actor("a", 2);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 2, 1, 0);
    g.add_channel(b, a, 1, 2, 4);
    return g;
}

// ---- interval lattice --------------------------------------------------

TEST(IntervalLattice, OrderJoinAndMeetBehave) {
    const Interval a{1, Int{3}};
    const Interval b{0, Int{5}};
    EXPECT_TRUE(a.inside(b));
    EXPECT_FALSE(b.inside(a));
    EXPECT_EQ(join(a, b), b);
    EXPECT_EQ(join(a, Interval::top()), Interval::top());
    EXPECT_TRUE(a.contains(2));
    EXPECT_FALSE(a.contains(0));
    EXPECT_TRUE(Interval::top().contains(kIntMax));
    EXPECT_EQ(meet_cap(b, 2), (Interval{0, Int{2}}));
    EXPECT_EQ(meet_cap(Interval::top(), 7), (Interval{0, Int{7}}));
}

TEST(IntervalLattice, WideningJumpsMovedBoundsToTheExtremes) {
    const Interval old_iv{2, Int{4}};
    EXPECT_EQ(widen(old_iv, Interval{2, Int{9}}), (Interval{2, std::nullopt}));
    EXPECT_EQ(widen(old_iv, Interval{1, Int{4}}), (Interval{0, Int{4}}));
    // A non-moving bound survives widening untouched.
    EXPECT_EQ(widen(old_iv, old_iv), old_iv);
}

TEST(IntervalLattice, TransfersGuardAndShift) {
    const Interval iv{1, Int{5}};
    EXPECT_EQ(shift_produce(iv, 3), (Interval{4, Int{8}}));
    // Consumption raises lo to the firing guard before subtracting.
    EXPECT_EQ(shift_consume(iv, 3), (Interval{0, Int{2}}));
    EXPECT_EQ(shift_consume(Interval::top(), 2), Interval::top());
}

// Satellite regression: bound arithmetic near INT64_MAX must saturate
// soundly (lo to INT64_MAX, hi to +inf), never wrap or throw.
TEST(IntervalLattice, OverflowSaturatesSoundly) {
    const Interval huge{kIntMax - 1, Int{kIntMax - 1}};
    const Interval shifted = shift_produce(huge, 2);
    EXPECT_EQ(shifted.lo, kIntMax);
    EXPECT_FALSE(shifted.hi.has_value());  // +inf: still an over-approximation
    // The unbounded upper stays unbounded through any production.
    EXPECT_EQ(shift_produce(Interval{0, std::nullopt}, kIntMax).hi, std::nullopt);
}

// ---- token-interval solver ---------------------------------------------

TEST(TokenIntervals, RingChannelsAreCappedAtTheCirculatingToken) {
    const Graph g = ring(4);
    const absint::TokenIntervals ti = absint::token_intervals(g);
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        EXPECT_EQ(ti.channels[c], (Interval{0, Int{1}})) << "channel " << c;
        ASSERT_TRUE(ti.caps[c].has_value());
        EXPECT_EQ(*ti.caps[c], 1);
    }
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        EXPECT_TRUE(ti.possibly_enabled[a]);
    }
    EXPECT_FALSE(ti.invariants.empty());
    EXPECT_GT(ti.solver_steps, 0u);
}

TEST(TokenIntervals, MultirateCycleConservesItsWeightedTokens) {
    const Graph g = multirate();
    const absint::TokenIntervals ti = absint::token_intervals(g);
    // Initial state is always contained.
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        EXPECT_TRUE(ti.channels[c].contains(g.channel(c).initial_tokens));
    }
    // The 2-cycle invariant caps both channels: 4 tokens circulate at
    // weight parity, so neither channel can ever exceed 4.
    ASSERT_TRUE(ti.channels[0].hi.has_value());
    ASSERT_TRUE(ti.channels[1].hi.has_value());
    EXPECT_LE(*ti.channels[0].hi, 4);
    EXPECT_LE(*ti.channels[1].hi, 4);
}

TEST(TokenIntervals, AcyclicChannelIsUnboundedAboveButNeverNegative) {
    Graph g("acyclic");
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, a, 1, 1, 1);  // self-loop so `a` can keep firing
    const ChannelId open = g.add_channel(a, b, 1, 1, 0);
    const absint::TokenIntervals ti = absint::token_intervals(g);
    EXPECT_EQ(ti.channels[open].lo, 0);
    EXPECT_FALSE(ti.channels[open].hi.has_value());
    EXPECT_FALSE(ti.caps[open].has_value());
}

TEST(TokenIntervals, ZeroDelayCycleStaysAtTheInitialState) {
    Graph g("dead");
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 1, 1, 0);
    g.add_channel(b, a, 1, 1, 0);
    const absint::TokenIntervals ti = absint::token_intervals(g);
    EXPECT_EQ(ti.channels[0], Interval::exact(0));
    EXPECT_EQ(ti.channels[1], Interval::exact(0));
    EXPECT_FALSE(ti.possibly_enabled[a]);
    EXPECT_FALSE(ti.possibly_enabled[b]);
}

// Satellite regression: a consistent graph with near-INT64_MAX rates and
// token counts must solve without throwing, and keep sound (possibly
// infinite) bounds.
TEST(TokenIntervals, NearInt64MaxRatesSolveWithoutOverflow) {
    const Int big = kIntMax / 4;
    Graph g("huge");
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, a, 1, 1, 1);
    g.add_channel(a, b, big, big, big);
    g.add_channel(b, a, big, big, big);
    const absint::TokenIntervals ti = absint::token_intervals(g);
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        EXPECT_TRUE(ti.channels[c].contains(g.channel(c).initial_tokens));
    }
    // The certificate path (Rational arithmetic over the huge values) must
    // also survive; precision loss is allowed, unsoundness is not.
    const absint::CertifiedBounds certified = absint::certify_buffer_bounds(g, ti);
    EXPECT_TRUE(absint::verify_certificate(g, certified).ok);
}

// ---- reachability ------------------------------------------------------

TEST(Reachability, LiveRingIsUnboundedDeadCycleIsZero) {
    const absint::Reachability live = absint::compute_reachability(ring(3));
    for (ActorId a = 0; a < 3; ++a) {
        EXPECT_FALSE(live.max_firings[a].has_value());
        EXPECT_FALSE(live.never_fires(a));
    }
    Graph dead("dead");
    const ActorId a = dead.add_actor("a", 1);
    const ActorId b = dead.add_actor("b", 1);
    dead.add_channel(a, b, 1, 1, 0);
    dead.add_channel(b, a, 1, 1, 0);
    const absint::Reachability bounds = absint::compute_reachability(dead);
    EXPECT_TRUE(bounds.never_fires(a));
    EXPECT_TRUE(bounds.never_fires(b));
}

TEST(Reachability, FiniteTokenSupplyBoundsADownstreamActor) {
    // `a` is dead (empty self-loop), so the channel a->b is fed only by its
    // 5 initial tokens; b consumes 2 per firing: at most 2 firings ever,
    // though b itself is not dead.
    Graph g("starved");
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, a, 1, 1, 0);
    g.add_channel(a, b, 1, 2, 5);
    g.add_channel(b, b, 1, 1, 1);
    const absint::Reachability bounds = absint::compute_reachability(g);
    EXPECT_TRUE(bounds.never_fires(a));
    ASSERT_TRUE(bounds.max_firings[b].has_value());
    EXPECT_EQ(*bounds.max_firings[b], 2);
}

// ---- certificates ------------------------------------------------------

TEST(Certificates, SolverFixpointAlwaysVerifies) {
    for (const Graph& g : {ring(5), multirate()}) {
        const absint::TokenIntervals ti = absint::token_intervals(g);
        const absint::CertifiedBounds certified = absint::certify_buffer_bounds(g, ti);
        const absint::CertificateCheck check = absint::verify_certificate(g, certified);
        EXPECT_TRUE(check.ok) << g.name() << ": " << check.reason;
        ASSERT_EQ(certified.certificates.size(), g.channel_count());
        for (ChannelId c = 0; c < g.channel_count(); ++c) {
            EXPECT_EQ(certified.certificates[c].bound, ti.channels[c].hi);
        }
    }
}

TEST(Certificates, TamperedCertificatesAreRejected) {
    const Graph g = ring(4);
    const absint::CertifiedBounds honest =
        absint::certify_buffer_bounds(g, absint::token_intervals(g));
    ASSERT_TRUE(absint::verify_certificate(g, honest).ok);

    // A bound below the interval's own upper bound is an unsound claim.
    absint::CertifiedBounds low_bound = honest;
    low_bound.certificates[0].bound = 0;
    EXPECT_FALSE(absint::verify_certificate(g, low_bound).ok);

    // Pinching an interval breaks inductiveness (initial state escapes or
    // a post-state escapes).
    absint::CertifiedBounds pinched = honest;
    pinched.intervals[0].hi = 0;
    pinched.certificates[0].bound = 0;
    EXPECT_FALSE(absint::verify_certificate(g, pinched).ok);

    // A doctored invariant constant no longer matches the initial tokens.
    absint::CertifiedBounds doctored = honest;
    ASSERT_FALSE(doctored.invariants.empty());
    doctored.invariants[0].constant =
        doctored.invariants[0].constant + Rational(1);
    EXPECT_FALSE(absint::verify_certificate(g, doctored).ok);

    // A cap with no proving invariant is an unjustified assumption.
    absint::CertifiedBounds capped = honest;
    capped.invariants.clear();
    EXPECT_FALSE(absint::verify_certificate(g, capped).ok);

    // Wrong shapes are malformedness, not crashes.
    absint::CertifiedBounds truncated = honest;
    truncated.intervals.pop_back();
    EXPECT_FALSE(absint::verify_certificate(g, truncated).ok);
}

TEST(Certificates, CertifiedBoundsKeepLiveGraphsLive) {
    // minimum_live_capacity searches for the smallest live capacity; every
    // certified bound must be at least that (a certified bound never
    // strangles the graph).
    const Graph g = ring(4);
    const absint::CertifiedBounds certified =
        absint::certify_buffer_bounds(g, absint::token_intervals(g));
    for (const absint::BoundCertificate& cert : certified.certificates) {
        ASSERT_TRUE(cert.bound.has_value());
        EXPECT_TRUE(is_live(with_buffer_capacity(g, cert.channel, *cert.bound)));
        EXPECT_LE(minimum_live_capacity(g, cert.channel, *cert.bound), *cert.bound);
    }
}

// ---- AnalysisManager slots ---------------------------------------------

TEST(AbsintAnalyses, SlotsAreCachedAndNamed) {
    const Graph g = multirate();
    const auto first = g.analyses()->get<absint::TokenIntervalsAnalysis>(g);
    const auto second = g.analyses()->get<absint::TokenIntervalsAnalysis>(g);
    EXPECT_EQ(first.get(), second.get());  // served from cache, not recomputed
    EXPECT_EQ(*first, absint::token_intervals(g));
    const auto reach = g.analyses()->get<absint::ReachabilityAnalysis>(g);
    EXPECT_EQ(*reach, absint::compute_reachability(g));
    const auto bounds = g.analyses()->get<absint::BufferBoundsAnalysis>(g);
    EXPECT_TRUE(absint::verify_certificate(g, *bounds).ok);
}

TEST(AbsintAnalyses, PruneAndSelfloopsPreserveReachabilityUnderVerifyEach) {
    Graph g = multirate();
    // Parallel redundant channel so prune has something to remove.
    g.add_channel(0, 1, 2, 1, 3);
    (void)g.analyses()->get<absint::ReachabilityAnalysis>(g);  // warm the cache
    ExecutorOptions options;
    options.verify_each = true;
    const PipelineRun run =
        PipelineExecutor(std::move(options)).run(parse_pipeline("selfloops,prune"), g);
    EXPECT_EQ(run.graph.channel_count(), 4u);  // +2 self-loops, -1 redundant
    // The adopted cached result must equal a fresh computation.
    const auto adopted = run.graph.analyses()->get<absint::ReachabilityAnalysis>(run.graph);
    EXPECT_EQ(*adopted, absint::compute_reachability(run.graph));
}

TEST(AbsintAnalyses, VerifyEachCatchesTheUnsoundAbsintPass) {
    Graph g = ring(3, 2);
    // The hidden pass claims token-intervals preserved while adding a
    // token; with the slot warm, --verify-each must detect the lie.
    (void)g.analyses()->get<absint::TokenIntervalsAnalysis>(g);
    ExecutorOptions options;
    options.verify_each = true;
    EXPECT_THROW((void)PipelineExecutor(std::move(options))
                     .run(parse_pipeline("selftest-unsound-absint"), g),
                 PipelineVerificationError);
    // Without verification the same pipeline slips through.
    const PipelineRun run =
        PipelineExecutor().run(parse_pipeline("selftest-unsound-absint"), ring(3, 2));
    EXPECT_TRUE(run.reports[0].changed);
}

// ---- soundness: the fuzz-enforced contract -----------------------------

TEST(AbsintSoundness, OracleHoldsOverFiveHundredRandomGraphs) {
    const Oracle* oracle = find_oracle("absint-soundness");
    ASSERT_NE(oracle, nullptr);
    std::mt19937 rng(20260808);
    RandomSdfOptions options;
    std::size_t passes = 0;
    for (int i = 0; i < 500; ++i) {
        // Alternate the generator knobs so degenerate shapes take part.
        options.self_loops = i % 3 != 0;
        options.strongly_connect = i % 4 != 0;
        const Graph g = random_sdf(rng, options);
        const Verdict verdict = run_oracle(*oracle, g);
        EXPECT_FALSE(verdict.failed()) << verdict.describe();
        passes += verdict.status == VerdictStatus::pass ? 1 : 0;
    }
    // The sweep must actually exercise the oracle, not skip its way out.
    EXPECT_GE(passes, 400u);
}

TEST(AbsintSoundness, HarnessFindsThePlantedUnsoundAnalysis) {
    const Oracle* planted = find_oracle("selftest-absint-unsound");
    ASSERT_NE(planted, nullptr);
    // Direct: the pinched intervals fail on a graph with real traffic.
    EXPECT_TRUE(run_oracle(*planted, ring(4)).failed());
    // End to end: the fuzzing harness converges on the planted bug.
    FuzzOptions options;
    options.iterations = 60;
    options.seed = 11;
    options.oracles = {"selftest-absint-unsound"};
    options.write_failures = false;
    options.shrink = false;
    const FuzzReport report = run_fuzz(options);
    ASSERT_FALSE(report.failures.empty());
    EXPECT_EQ(report.failures.front().oracle, "selftest-absint-unsound");
}

TEST(AbsintSoundness, ProductionOracleIsRegisteredTheSelfTestIsNot) {
    bool registered = false;
    for (const Oracle& oracle : oracle_registry()) {
        registered = registered || oracle.id == "absint-soundness";
        EXPECT_NE(oracle.id, "selftest-absint-unsound");
    }
    EXPECT_TRUE(registered);
}

}  // namespace
}  // namespace sdf
