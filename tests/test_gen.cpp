// Unit tests for the workload generators: the Figure 1 / Figure 5 families,
// the Table 1 benchmark reconstructions and the random-graph generator.
#include <gtest/gtest.h>

#include <random>

#include "analysis/liveness.hpp"
#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "gen/benchmarks.hpp"
#include "gen/random_sdf.hpp"
#include "gen/regular.hpp"
#include "io/dot.hpp"
#include "sdf/properties.hpp"
#include "sdf/repetition.hpp"
#include "sdf/schedule.hpp"

namespace sdf {
namespace {

TEST(Regular, Figure1Structure) {
    const Graph g = figure1_graph(6);
    EXPECT_EQ(g.actor_count(), 10u);  // A1..A6, B1..B4
    EXPECT_TRUE(g.is_homogeneous());
    EXPECT_EQ(g.total_initial_tokens(), 1);
    EXPECT_TRUE(is_live(g));
    EXPECT_EQ(g.actor(*g.find_actor("A1")).execution_time, 2);
    EXPECT_EQ(g.actor(*g.find_actor("A3")).execution_time, 5);
    EXPECT_EQ(g.actor(*g.find_actor("A6")).execution_time, 3);
    EXPECT_EQ(g.actor(*g.find_actor("B2")).execution_time, 4);
    EXPECT_THROW(figure1_graph(3), InvalidGraphError);
}

TEST(Regular, Figure1SizesScaleLinearly) {
    for (const Int n : {4, 8, 100}) {
        const Graph g = figure1_graph(n);
        EXPECT_EQ(static_cast<Int>(g.actor_count()), 2 * n - 2);
        EXPECT_TRUE(is_live(g));
    }
}

TEST(Regular, PrefetchStructure) {
    const Graph g = prefetch_graph(10);
    EXPECT_EQ(g.actor_count(), 30u);
    EXPECT_TRUE(g.is_homogeneous());
    EXPECT_TRUE(is_live(g));
    EXPECT_TRUE(is_strongly_connected(g));
    // 3 chain-closing tokens + 2 pre-fetch wrap tokens.
    EXPECT_EQ(g.total_initial_tokens(), 5);
    EXPECT_THROW(prefetch_graph(2), InvalidGraphError);
}

TEST(Regular, PrefetchPeriodIsComputeBound) {
    // The compute chain (time 10 per block) is the critical cycle.
    for (const Int n : {3, 8, 24}) {
        EXPECT_EQ(iteration_period(prefetch_graph(n)), Rational(10 * n)) << "n=" << n;
    }
}

TEST(Regular, AbstractCompanionsAreLive) {
    EXPECT_TRUE(is_live(figure1_abstract()));
    EXPECT_TRUE(is_live(prefetch_abstract()));
    EXPECT_EQ(iteration_period(figure1_abstract()), Rational(5));
    EXPECT_EQ(iteration_period(prefetch_abstract()), Rational(10));
}

TEST(Benchmarks, AllConsistentLiveAndBounded) {
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        EXPECT_TRUE(is_consistent(bench.graph)) << bench.label;
        EXPECT_TRUE(is_live(bench.graph)) << bench.label;
        const ThroughputResult t = throughput_symbolic(bench.graph);
        EXPECT_TRUE(t.is_finite()) << bench.label;
    }
}

TEST(Benchmarks, LabelsAndExpectationsPresent) {
    const auto cases = table1_benchmarks();
    ASSERT_EQ(cases.size(), 8u);
    for (const BenchmarkCase& bench : cases) {
        EXPECT_FALSE(bench.label.empty());
        EXPECT_GT(bench.paper_traditional, 0);
        EXPECT_GT(bench.paper_new, 0);
    }
}

TEST(Benchmarks, ActorCountsMatchApplications) {
    EXPECT_EQ(h263_decoder().actor_count(), 4u);
    EXPECT_EQ(h263_encoder().actor_count(), 5u);
    EXPECT_EQ(modem().actor_count(), 16u);
    EXPECT_EQ(mp3_decoder_block().actor_count(), 10u);
    EXPECT_EQ(mp3_decoder_granule().actor_count(), 10u);
    EXPECT_EQ(mp3_playback().actor_count(), 8u);
    EXPECT_EQ(samplerate_converter().actor_count(), 6u);
    EXPECT_EQ(satellite_receiver().actor_count(), 22u);
}

TEST(RandomSdf, GeneratedGraphsSatisfyTheirContract) {
    std::mt19937 rng(42);
    for (int trial = 0; trial < 100; ++trial) {
        const Graph g = random_sdf(rng);
        EXPECT_TRUE(is_consistent(g));
        EXPECT_TRUE(is_live(g));
        EXPECT_TRUE(every_actor_on_cycle(g));
        EXPECT_TRUE(is_strongly_connected(g));
    }
}

TEST(RandomSdf, HomogeneousVariant) {
    std::mt19937 rng(43);
    for (int trial = 0; trial < 100; ++trial) {
        const Graph g = random_hsdf(rng);
        EXPECT_TRUE(g.is_homogeneous());
        EXPECT_TRUE(is_live(g));
        for (const Int q : repetition_vector(g)) {
            EXPECT_EQ(q, 1);
        }
    }
}

TEST(RandomSdf, OptionsAreRespected) {
    std::mt19937 rng(44);
    RandomSdfOptions options;
    options.min_actors = 5;
    options.max_actors = 5;
    options.self_loops = false;
    options.strongly_connect = false;
    const Graph g = random_sdf(rng, options);
    EXPECT_EQ(g.actor_count(), 5u);
    for (const Channel& ch : g.channels()) {
        EXPECT_FALSE(ch.is_self_loop());
    }
}

TEST(RandomSdf, DifferentSeedsGiveDifferentGraphs) {
    std::mt19937 rng1(1);
    std::mt19937 rng2(2);
    const Graph a = random_sdf(rng1);
    const Graph b = random_sdf(rng2);
    // Extremely unlikely to coincide in both size and channels.
    EXPECT_TRUE(a.actor_count() != b.actor_count() ||
                a.channel_count() != b.channel_count() ||
                write_dot_string(a) != write_dot_string(b));
}

}  // namespace
}  // namespace sdf
