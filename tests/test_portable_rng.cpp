// Tests for base/portable_rng.hpp — the cross-platform deterministic draw
// helpers behind gen::random_sdf and the fuzzing harness.  The golden
// values pin the exact raw-output consumption order: any change to how the
// helpers consume mt19937 outputs silently re-maps every fuzz seed and
// invalidates the saved corpus, so it must show up here.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "base/portable_rng.hpp"
#include "gen/random_sdf.hpp"
#include "io/text.hpp"

namespace sdf {
namespace {

TEST(PortableRng, DrawU64IsHighWordFirst) {
    std::mt19937 rng(42);
    std::mt19937 twin(42);
    const std::uint64_t high = twin();
    const std::uint64_t low = twin();
    EXPECT_EQ(draw_u64(rng), (high << 32) | low);
}

TEST(PortableRng, GoldenSequenceIsPinned) {
    // mt19937's raw outputs are fully specified by the standard; these
    // values must match on every platform and standard library.
    std::mt19937 rng(2026);
    EXPECT_EQ(draw_int(rng, 0, 99), 54);
    EXPECT_EQ(draw_int(rng, 1, 6), 3);
    EXPECT_EQ(draw_int(rng, -10, 10), -2);
    std::mt19937 again(2026);
    EXPECT_EQ(draw_int(again, 0, 99), 54);
}

TEST(PortableRng, DrawBelowStaysInRangeAndCoversIt) {
    std::mt19937 rng(7);
    std::map<std::uint64_t, int> histogram;
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t x = draw_below(rng, 7);
        ASSERT_LT(x, 7u);
        ++histogram[x];
    }
    EXPECT_EQ(histogram.size(), 7u);  // every value reached
}

TEST(PortableRng, DrawIntHandlesFullAndDegenerateRanges) {
    std::mt19937 rng(3);
    EXPECT_EQ(draw_int(rng, 5, 5), 5);  // single-point range consumes draws but is fixed
    for (int i = 0; i < 200; ++i) {
        const Int x = draw_int(rng, -3, 3);
        ASSERT_GE(x, -3);
        ASSERT_LE(x, 3);
    }
    EXPECT_THROW(draw_int(rng, 2, 1), ArithmeticError);
    EXPECT_THROW(draw_below(rng, 0), ArithmeticError);
}

TEST(PortableRng, DrawChanceIsClampedAndDeterministic) {
    std::mt19937 rng(11);
    int heads = 0;
    for (int i = 0; i < 2000; ++i) {
        heads += draw_chance(rng, 0.25) ? 1 : 0;
    }
    EXPECT_GT(heads, 350);
    EXPECT_LT(heads, 650);
    std::mt19937 always(1);
    EXPECT_TRUE(draw_chance(always, 1.0));
    std::mt19937 never(1);
    EXPECT_FALSE(draw_chance(never, 0.0));
}

TEST(PortableRng, RandomSdfIsSeedDeterministic) {
    // The generator must produce the identical graph for the same seed —
    // this is what makes a fuzz seed a portable bug report.
    std::mt19937 a(12345);
    std::mt19937 b(12345);
    const Graph first = random_sdf(a);
    const Graph second = random_sdf(b);
    EXPECT_EQ(write_text_string(first), write_text_string(second));
}

TEST(PortableRng, RandomSdfGoldenModel) {
    // Golden serialisation of seed 1: fails if either the raw engine, the
    // bounded-draw mapping, or the generator's draw ORDER changes — all
    // three would re-map every recorded fuzz seed.
    std::mt19937 rng(1);
    const Graph g = random_sdf(rng);
    const std::string text = write_text_string(g);
    std::mt19937 twin(1);
    EXPECT_EQ(text, write_text_string(random_sdf(twin)));
    EXPECT_GT(g.actor_count(), 0u);
    // The exact shape for seed 1 with the current draw order.
    EXPECT_EQ(g.actor_count(), 7u);
    EXPECT_EQ(g.channel_count(), 31u);
}

}  // namespace
}  // namespace sdf
