// test_paper_claims — every quantitative claim of the paper as an
// executable assertion, one test per claim (EXPERIMENTS.md in test form).
// Where a claim depends on the unpublished SDF3 data (the new-conversion
// column of Table 1) the asserted property is the qualitative shape the
// paper argues from, not the absolute number.
#include <gtest/gtest.h>

#include <chrono>

#include "analysis/latency.hpp"
#include "analysis/throughput.hpp"
#include "gen/benchmarks.hpp"
#include "gen/regular.hpp"
#include "sdf/properties.hpp"
#include "sdf/repetition.hpp"
#include "transform/abstraction.hpp"
#include "transform/compare.hpp"
#include "transform/hsdf_classic.hpp"
#include "transform/hsdf_reduced.hpp"
#include "transform/symbolic.hpp"

namespace sdf {
namespace {

// --- Section 4.1 -----------------------------------------------------

TEST(PaperClaims, S41_SingleExecutionOfFigure1Takes23TimeUnits) {
    EXPECT_EQ(iteration_makespan(figure1_graph(6)), 23);
}

TEST(PaperClaims, S41_ThroughputIsOneOver23ForEveryActor) {
    const Graph g = figure1_graph(6);
    const ThroughputResult t = throughput_symbolic(g);
    ASSERT_TRUE(t.is_finite());
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        EXPECT_EQ(t.per_actor[a], Rational(1, 23)) << g.actor(a).name;
    }
}

TEST(PaperClaims, S41_GeneralFormulaOneOverFiveNMinusSeven) {
    for (const Int n : {5, 6, 9, 17, 64, 200}) {
        EXPECT_EQ(iteration_period(figure1_graph(n)), Rational(5 * n - 7))
            << "n=" << n;
    }
}

TEST(PaperClaims, S41_AbstractGraphThroughputIsOneFifth) {
    EXPECT_EQ(iteration_period(figure1_abstract()), Rational(5));
}

TEST(PaperClaims, S41_EstimateIsOneOverFiveN_AndConservative) {
    for (const Int n : {6, 24, 96}) {
        const Graph g = figure1_graph(n);
        const AbstractionSpec spec = abstraction_by_name_suffix(g);
        const Graph abstract = abstract_graph(g, spec);
        const Rational estimate =
            throughput_symbolic(abstract).per_actor[0] / Rational(spec.fold());
        EXPECT_EQ(estimate, Rational(1, 5 * n)) << "n=" << n;
        EXPECT_GE(Rational(1, 5 * n - 7), estimate) << "n=" << n;  // conservative
    }
}

TEST(PaperClaims, S41_RelativeErrorDecreasesWithN) {
    double previous = 1.0;
    for (Int n = 6; n <= 3072; n *= 2) {
        const double actual = 1.0 / (5.0 * static_cast<double>(n) - 7.0);
        const double estimate = 1.0 / (5.0 * static_cast<double>(n));
        const double error = (actual - estimate) / actual;
        EXPECT_LT(error, previous) << "n=" << n;
        previous = error;
    }
    EXPECT_LT(previous, 0.001);  // "provides a better approximation"
}

// --- Section 4.2 / Figure 1(b) ----------------------------------------

TEST(PaperClaims, S42_AutomaticAbstractionReproducesFigure1b) {
    const Graph g = figure1_graph(6);
    EXPECT_TRUE(structurally_equal(abstract_graph(g, abstraction_by_name_suffix(g)),
                                   figure1_abstract()));
}

// --- Section 6 ---------------------------------------------------------

TEST(PaperClaims, S6_TraditionalConversionSizeEqualsIterationLength) {
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        EXPECT_EQ(static_cast<Int>(to_hsdf_classic(bench.graph).graph.actor_count()),
                  iteration_length(bench.graph))
            << bench.label;
    }
}

TEST(PaperClaims, S6_ReducedGraphRespectsSizeBounds) {
    // "the resulting graph has at most N(N+2) actors, N(2N+1) edges and N
    // initial tokens".
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        const Int n = bench.graph.total_initial_tokens();
        const Graph reduced = to_hsdf_reduced(bench.graph);
        EXPECT_LE(static_cast<Int>(reduced.actor_count()), n * (n + 2)) << bench.label;
        EXPECT_LE(static_cast<Int>(reduced.channel_count()), n * (2 * n + 1))
            << bench.label;
        EXPECT_LE(reduced.total_initial_tokens(), n) << bench.label;
    }
}

TEST(PaperClaims, S6_ConversionsPreserveThroughputAndLatency) {
    // "We seek to obtain a graph which has the same throughput and latency
    // as the original graph."
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        const Rational period = iteration_period(bench.graph);
        EXPECT_EQ(iteration_period(to_hsdf_reduced(bench.graph)), period)
            << bench.label;
    }
}

// --- Section 7 / Table 1 / Figure 6 -------------------------------------

TEST(PaperClaims, S7_Table1TraditionalColumnExact) {
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        EXPECT_EQ(iteration_length(bench.graph), bench.paper_traditional)
            << bench.label;
    }
}

TEST(PaperClaims, S7_NewConversionSmallerInAllButOneCase) {
    // "in all but one case, the new conversion algorithm yields much
    // smaller graphs ... Only for the case of the modem graph, the result
    // is actually larger."
    int larger_cases = 0;
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        const std::size_t traditional = to_hsdf_classic(bench.graph).graph.actor_count();
        const std::size_t reduced = to_hsdf_reduced(bench.graph).actor_count();
        if (reduced > traditional) {
            ++larger_cases;
            EXPECT_EQ(bench.label, "3. modem");
        }
    }
    EXPECT_EQ(larger_cases, 1);
}

TEST(PaperClaims, S7_UpTo250TimesFewerActors) {
    // Headline: "up to 250X improvement on the number of actors" (279 in
    // Table 1, on mp3 playback).  Our reconstruction: 10601 / 42 = 252x.
    const Graph app = mp3_playback();
    const double ratio = static_cast<double>(to_hsdf_classic(app).graph.actor_count()) /
                         static_cast<double>(to_hsdf_reduced(app).actor_count());
    EXPECT_GE(ratio, 250.0);
}

TEST(PaperClaims, S7_ModemIsAlmostHsdfWithManyTokens) {
    // The paper's explanation of the outlier: "a graph which is itself
    // 'almost HSDF' with only few rates different from 1 and with a large
    // number of initial tokens."
    const Graph g = modem();
    std::size_t rated_channels = 0;
    for (const Channel& ch : g.channels()) {
        if (!ch.is_homogeneous()) {
            ++rated_channels;
        }
    }
    EXPECT_LE(rated_channels * 5, g.channel_count());        // "only few rates != 1"
    EXPECT_GT(g.total_initial_tokens(), static_cast<Int>(g.actor_count()));
}

TEST(PaperClaims, S7_PrefetchAbstractionIsExact) {
    // "which in this case, has exactly the same throughput as the original
    // graph" — 1584 computations per frame.
    const Graph g = prefetch_graph(1584);
    const AbstractionSpec spec = abstraction_by_name_suffix(g);
    EXPECT_EQ(iteration_period(g),
              Rational(spec.fold()) * iteration_period(abstract_graph(g, spec)));
}

TEST(PaperClaims, S7_RunTimeIsMilliseconds) {
    // "The run-time of the algorithms is a few milliseconds."  Generous
    // CI-safe bound: every new conversion completes within a second.
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        const auto start = std::chrono::steady_clock::now();
        const Graph reduced = to_hsdf_reduced(bench.graph);
        const auto elapsed = std::chrono::steady_clock::now() - start;
        EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 1.0) << bench.label;
        EXPECT_GT(reduced.actor_count(), 0u);
    }
}

TEST(PaperClaims, S6_SizePredictableBeforehand) {
    // "it is possible to assess beforehand when this might occur": the
    // traditional size is the iteration length, the new size is bounded by
    // N(N+2) — both computable without running either conversion.
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        const Int predicted_traditional = iteration_length(bench.graph);
        const Int n = bench.graph.total_initial_tokens();
        EXPECT_EQ(static_cast<Int>(to_hsdf_classic(bench.graph).graph.actor_count()),
                  predicted_traditional)
            << bench.label;
        EXPECT_LE(static_cast<Int>(to_hsdf_reduced(bench.graph).actor_count()),
                  n * (n + 2))
            << bench.label;
    }
}

}  // namespace
}  // namespace sdf
