// Unit tests for analysis/throughput.hpp — the three routes and their
// outcome handling.
#include "analysis/throughput.hpp"

#include <gtest/gtest.h>

#include "base/errors.hpp"
#include "gen/regular.hpp"
#include "transform/selfloops.hpp"

namespace sdf {
namespace {

Graph ring(Int ta, Int tb, Int tokens) {
    Graph g;
    const ActorId a = g.add_actor("a", ta);
    const ActorId b = g.add_actor("b", tb);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, tokens);
    return g;
}

TEST(Throughput, SymbolicRingPeriod) {
    const ThroughputResult r = throughput_symbolic(ring(3, 4, 1));
    ASSERT_TRUE(r.is_finite());
    EXPECT_EQ(r.period, Rational(7));
    EXPECT_EQ(r.per_actor[0], Rational(1, 7));
}

TEST(Throughput, ThreeRoutesAgreeOnRing) {
    const Graph g = ring(3, 4, 2);
    const ThroughputResult a = throughput_symbolic(g);
    const ThroughputResult b = throughput_via_classic_hsdf(g);
    const ThroughputResult c = throughput_simulation(g);
    ASSERT_TRUE(a.is_finite());
    EXPECT_EQ(a.period, Rational(7, 2));
    EXPECT_EQ(b.period, a.period);
    EXPECT_EQ(c.period, a.period);
    EXPECT_EQ(a.per_actor, b.per_actor);
    EXPECT_EQ(a.per_actor, c.per_actor);
}

TEST(Throughput, MultiRateGraphAllRoutes) {
    Graph g;
    const ActorId a = g.add_actor("a", 2);
    const ActorId b = g.add_actor("b", 3);
    g.add_channel(a, b, 1, 2, 0);
    g.add_channel(b, a, 2, 1, 2);
    g.add_channel(a, a, 1);
    g.add_channel(b, b, 1);
    const ThroughputResult s = throughput_symbolic(g);
    ASSERT_TRUE(s.is_finite());
    EXPECT_EQ(s.period, Rational(7));  // two serialised a firings + b
    EXPECT_EQ(throughput_via_classic_hsdf(g).period, s.period);
    EXPECT_EQ(throughput_simulation(g).period, s.period);
    EXPECT_EQ(s.per_actor[0], Rational(2, 7));
    EXPECT_EQ(s.per_actor[1], Rational(1, 7));
}

TEST(Throughput, DeadlockedGraphIsZero) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 0);
    for (const auto& result :
         {throughput_symbolic(g), throughput_via_classic_hsdf(g), throughput_simulation(g)}) {
        EXPECT_EQ(result.outcome, ThroughputOutcome::deadlocked);
        EXPECT_EQ(result.per_actor, (std::vector<Rational>{Rational(0), Rational(0)}));
    }
}

TEST(Throughput, AcyclicGraphIsUnbounded) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 0);
    EXPECT_EQ(throughput_symbolic(g).outcome, ThroughputOutcome::unbounded);
    EXPECT_EQ(throughput_via_classic_hsdf(g).outcome, ThroughputOutcome::unbounded);
}

TEST(Throughput, ZeroTimeCycleIsUnbounded) {
    Graph g;
    const ActorId a = g.add_actor("a", 0);
    g.add_channel(a, a, 1);
    EXPECT_EQ(throughput_symbolic(g).outcome, ThroughputOutcome::unbounded);
    EXPECT_EQ(throughput_via_classic_hsdf(g).outcome, ThroughputOutcome::unbounded);
}

TEST(Throughput, IterationPeriodConvenience) {
    EXPECT_EQ(iteration_period(ring(3, 4, 1)), Rational(7));
    Graph acyclic;
    const ActorId a = acyclic.add_actor("a", 1);
    const ActorId b = acyclic.add_actor("b", 1);
    acyclic.add_channel(a, b, 0);
    EXPECT_THROW(iteration_period(acyclic), Error);
}

TEST(Throughput, Figure1FamilyFormula) {
    // Section 4.1: throughput 1/(5n-7).
    for (const Int n : {5, 6, 7, 10, 20}) {
        const ThroughputResult r = throughput_symbolic(figure1_graph(n));
        ASSERT_TRUE(r.is_finite());
        EXPECT_EQ(r.period, Rational(5 * n - 7)) << "n=" << n;
    }
}

TEST(Throughput, SelfLoopTokensActAsPipelineDepth) {
    // k tokens on the self-loop allow k concurrent firings: period T/k.
    Graph g;
    const ActorId a = g.add_actor("a", 12);
    g.add_channel(a, a, 3);
    const ThroughputResult r = throughput_symbolic(g);
    ASSERT_TRUE(r.is_finite());
    EXPECT_EQ(r.per_actor[a], Rational(3, 12));
    EXPECT_EQ(throughput_simulation(g).per_actor[a], Rational(1, 4));
}

}  // namespace
}  // namespace sdf
