// test_arena — the bump-pointer arena behind the SIMD kernel temporaries:
// bump/rewind/reuse mechanics, the byte-accounting hook into governed
// ExecutionBudgets (charged before allocation: strong guarantee), and
// SDFRED_FAULT_INJECT-style alloc faults injected through the same hook.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <new>

#include "base/arena.hpp"
#include "base/errors.hpp"
#include "maxplus/matrix.hpp"
#include "robust/budget.hpp"
#include "robust/fault.hpp"

namespace sdf {
namespace {

TEST(Arena, AllocationsAreDistinctAlignedAndWritable) {
    Arena arena(128);
    auto* a = arena.alloc_array<std::int64_t>(10);
    auto* b = arena.alloc_array<std::int64_t>(10);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(std::int64_t), 0u);
    for (int i = 0; i < 10; ++i) {
        a[i] = i;
        b[i] = -i;
    }
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(a[i], i);
        EXPECT_EQ(b[i], -i);
    }
    char* c = static_cast<char*>(arena.allocate(3, 1));
    std::memset(c, 0x5a, 3);
}

TEST(Arena, GrowsAcrossBlocksAndRetainsCapacityOnRewind) {
    Arena arena(64);
    const Arena::Position start = arena.position();
    for (int i = 0; i < 100; ++i) {
        arena.alloc_array<std::int64_t>(16);  // forces several block growths
    }
    const std::size_t grown = arena.capacity_bytes();
    EXPECT_GT(arena.block_count(), 1u);
    arena.rewind(start);
    EXPECT_EQ(arena.capacity_bytes(), grown);  // blocks retained
    // A steady-state reuse cycle allocates the same amount without growing.
    for (int round = 0; round < 5; ++round) {
        const Arena::Scope scope(arena);
        for (int i = 0; i < 100; ++i) {
            arena.alloc_array<std::int64_t>(16);
        }
        EXPECT_EQ(arena.capacity_bytes(), grown) << "round " << round;
    }
}

TEST(Arena, ScopeRewindsOnExceptionPath) {
    Arena arena(64);
    arena.alloc_array<std::int64_t>(4);
    const Arena::Position before = arena.position();
    try {
        const Arena::Scope scope(arena);
        arena.alloc_array<std::int64_t>(512);
        throw std::runtime_error("boom");
    } catch (const std::runtime_error&) {
    }
    const Arena::Position after = arena.position();
    EXPECT_EQ(after.block, before.block);
    EXPECT_EQ(after.offset, before.offset);
}

TEST(Arena, ReleaseDropsEverything) {
    Arena arena(64);
    arena.alloc_array<char>(1000);
    EXPECT_GT(arena.capacity_bytes(), 0u);
    arena.release();
    EXPECT_EQ(arena.capacity_bytes(), 0u);
    EXPECT_EQ(arena.block_count(), 0u);
    arena.alloc_array<char>(10);  // usable again after release
}

TEST(Arena, ArraySizeOverflowThrows) {
    Arena arena;
    EXPECT_THROW(arena.alloc_array<std::int64_t>(static_cast<std::size_t>(-1) / 4),
                 ArithmeticError);
}

TEST(Arena, OversizedAlignmentIsHonoured) {
    Arena arena(64);
    struct alignas(64) CacheLine {
        char bytes[64];
    };
    auto* p = arena.alloc_array<CacheLine>(3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
}

// ---- budget integration ------------------------------------------------

TEST(ArenaBudget, GrowthChargesGovernedBudgetAndTripsCleanly) {
    ExecutionBudget budget;
    budget.max_bytes = 4096;
    Governor governor(budget);
    const GovernorScope scope(governor);  // installs the arena account hook
    Arena arena(1 << 16);                 // first block alone exceeds the budget
    try {
        arena.alloc_array<std::int64_t>(8);
        FAIL() << "arena growth was not charged to the governed budget";
    } catch (const BudgetExceeded& e) {
        EXPECT_EQ(e.cause(), BudgetCause::memory);
    }
    // Strong guarantee: the refused growth left the arena untouched.
    EXPECT_EQ(arena.block_count(), 0u);
    EXPECT_EQ(arena.capacity_bytes(), 0u);
}

TEST(ArenaBudget, WarmArenaDoesNotRechargeOnReuse) {
    Arena arena(256);
    {
        // Warm up ungoverned: growth is uncharged without a governor.
        const Arena::Scope warm(arena);
        arena.alloc_array<std::int64_t>(16);
    }
    ExecutionBudget budget;
    budget.max_bytes = 1;  // any charge would trip immediately
    Governor governor(budget);
    const GovernorScope scope(governor);
    const Arena::Scope reuse(arena);
    EXPECT_NO_THROW(arena.alloc_array<std::int64_t>(16));  // reuses the block
}

TEST(ArenaBudget, InjectedAllocFaultLeavesArenaUnchanged) {
    Governor governor{ExecutionBudget{}};
    const GovernorScope scope(governor);
    const FaultInjectionScope fault("alloc:1");
    Arena arena(128);
    EXPECT_THROW(arena.alloc_array<std::int64_t>(4), std::bad_alloc);
    EXPECT_EQ(arena.block_count(), 0u);
    // The countdown fired once; the retry succeeds and the arena works.
    auto* p = arena.alloc_array<std::int64_t>(4);
    ASSERT_NE(p, nullptr);
    p[0] = 42;
    EXPECT_EQ(arena.block_count(), 1u);
}

TEST(ArenaBudget, GovernedMultiplySurvivesAllocFaultSweep) {
    // Inject a bad_alloc at every accounted-allocation index in turn; the
    // governed multiply must either throw that bad_alloc or complete with
    // the exact ungoverned result — never crash, never corrupt later runs.
    MpMatrix a(12, 12);
    MpMatrix b(12, 12);
    for (std::size_t i = 0; i < 12; ++i) {
        for (std::size_t j = 0; j < 12; ++j) {
            a.set(i, j, MpValue(static_cast<Int>(i * 3 + j)));
            b.set(i, j, MpValue(static_cast<Int>(7 * i) - static_cast<Int>(j)));
        }
    }
    const MpMatrix expected = a.multiply_naive(b);
    for (int n = 1; n <= 8; ++n) {
        Governor governor{ExecutionBudget{}};
        const GovernorScope scope(governor);
        const FaultInjectionScope fault("alloc:" + std::to_string(n));
        try {
            const MpMatrix product = a.multiply(b);
            EXPECT_EQ(product, expected) << "alloc:" << n;
        } catch (const std::bad_alloc&) {
            // Injected; state must be intact for the next round.
        }
    }
    // After the sweep every retry reproduces the reference bit-for-bit.
    EXPECT_EQ(a.multiply(b), expected);
}

}  // namespace
}  // namespace sdf
