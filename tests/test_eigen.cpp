// Unit + property tests for maxplus/eigen.hpp.
#include "maxplus/eigen.hpp"

#include <gtest/gtest.h>

#include <random>

#include "base/errors.hpp"
#include "gen/random_sdf.hpp"
#include "maxplus/mcm.hpp"
#include "transform/symbolic.hpp"

namespace sdf {
namespace {

TEST(MpEigenvalue, SelfLoopScalar) {
    MpMatrix m(1, 1);
    m.set(0, 0, MpValue(7));
    const MpEigen e = mp_eigen(m);
    EXPECT_EQ(e.eigenvalue, Rational(7));
    EXPECT_TRUE(is_eigenpair(m, e));
}

TEST(MpEigenvalue, TwoCycle) {
    MpMatrix m(2, 2);
    m.set(0, 1, MpValue(3));
    m.set(1, 0, MpValue(5));
    const MpEigen e = mp_eigen(m);
    EXPECT_EQ(e.eigenvalue, Rational(4));  // (3+5)/2
    EXPECT_TRUE(is_eigenpair(m, e));
    // Eigenvector entries differ by the walk weights: v1 - v0 = 3 - 4.
    EXPECT_EQ(e.eigenvector[1] - e.eigenvector[0], Rational(-1));
}

TEST(MpEigenvalue, DenseIrreducibleMatrix) {
    MpMatrix m(3, 3);
    m.set(0, 1, MpValue(2));
    m.set(1, 2, MpValue(7));
    m.set(2, 0, MpValue(3));
    m.set(0, 0, MpValue(1));
    m.set(1, 1, MpValue(4));
    const MpEigen e = mp_eigen(m);
    EXPECT_EQ(e.eigenvalue, Rational(4));  // the (1,1) self-loop dominates
    EXPECT_TRUE(is_eigenpair(m, e));
}

TEST(MpEigenvalue, RejectsReducibleMatrix) {
    MpMatrix m(2, 2);
    m.set(0, 1, MpValue(3));  // no way back: not strongly connected
    m.set(1, 1, MpValue(1));
    EXPECT_THROW(mp_eigen(m), ArithmeticError);
    EXPECT_THROW(mp_eigen(MpMatrix(2, 3)), ArithmeticError);
    EXPECT_THROW(mp_eigen(MpMatrix(0, 0)), ArithmeticError);
}

TEST(MpEigenvalue, IsEigenpairRejectsWrongData) {
    MpMatrix m(2, 2);
    m.set(0, 1, MpValue(3));
    m.set(1, 0, MpValue(5));
    MpEigen e = mp_eigen(m);
    e.eigenvalue += Rational(1);
    EXPECT_FALSE(is_eigenpair(m, e));
    e = mp_eigen(m);
    e.eigenvector[0] += Rational(1, 2);
    EXPECT_FALSE(is_eigenpair(m, e));
    e.eigenvector.pop_back();
    EXPECT_FALSE(is_eigenpair(m, e));
}

TEST(MpEigenvalue, EigenvectorsShiftInvariant) {
    // Adding a constant to an eigenvector keeps it one (max-plus scaling).
    MpMatrix m(2, 2);
    m.set(0, 1, MpValue(3));
    m.set(1, 0, MpValue(5));
    MpEigen e = mp_eigen(m);
    for (Rational& v : e.eigenvector) {
        v += Rational(42);
    }
    EXPECT_TRUE(is_eigenpair(m, e));
}

class EigenProperty : public ::testing::TestWithParam<int> {};

TEST_P(EigenProperty, IterationMatricesOfStronglyConnectedGraphsHaveEigenpairs) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    const Graph g = random_sdf(rng);
    const SymbolicIteration it = symbolic_iteration(g);
    std::size_t components = 0;
    (void)it.matrix.precedence_graph().strongly_connected_components(&components);
    if (components != 1 || it.matrix.rows() == 0) {
        return;  // token graph need not be irreducible even if the SDF is
    }
    const MpEigen e = mp_eigen(it.matrix);
    EXPECT_TRUE(is_eigenpair(it.matrix, e));
    // Eigenvalue == iteration period computed elsewhere.
    const CycleMetric karp = max_cycle_mean_karp(it.matrix.precedence_graph());
    ASSERT_TRUE(karp.is_finite());
    EXPECT_EQ(e.eigenvalue, karp.value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EigenProperty, ::testing::Range(0, 50));

}  // namespace
}  // namespace sdf
