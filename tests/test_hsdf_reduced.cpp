// Unit tests for transform/hsdf_reduced.hpp — the Figure 4 construction.
#include "transform/hsdf_reduced.hpp"

#include <gtest/gtest.h>

#include "analysis/throughput.hpp"
#include "gen/regular.hpp"
#include "maxplus/mcm.hpp"
#include "sdf/properties.hpp"
#include "transform/symbolic.hpp"

namespace sdf {
namespace {

MpMatrix dense2() {
    MpMatrix m(2, 2);
    m.set(0, 0, MpValue(3));
    m.set(0, 1, MpValue(4));
    m.set(1, 0, MpValue(5));
    m.set(1, 1, MpValue(6));
    return m;
}

TEST(HsdfReduced, DenseMatrixStructure) {
    const Graph g = reduced_hsdf_from_matrix(dense2(), "dense");
    // 4 matrix actors + 2 muxes + 2 demuxes.
    EXPECT_EQ(g.actor_count(), 8u);
    EXPECT_TRUE(g.is_homogeneous());
    EXPECT_EQ(g.total_initial_tokens(), 2);
    // Respects the paper's bounds: N(N+2) actors, N(2N+1) edges, N tokens.
    EXPECT_LE(g.actor_count(), 2u * 4u);
    EXPECT_LE(g.channel_count(), 2u * 5u);
}

TEST(HsdfReduced, PeriodEqualsMatrixEigenvalue) {
    const Graph g = reduced_hsdf_from_matrix(dense2(), "dense");
    const CycleMetric matrix_lambda = max_cycle_mean_karp(dense2().precedence_graph());
    const ThroughputResult reduced = throughput_symbolic(g);
    ASSERT_TRUE(matrix_lambda.is_finite());
    ASSERT_TRUE(reduced.is_finite());
    EXPECT_EQ(reduced.period, matrix_lambda.value);  // 6
}

TEST(HsdfReduced, SingleEntryMatrixCollapsesToSelfLoop) {
    MpMatrix m(1, 1);
    m.set(0, 0, MpValue(23));
    const Graph g = reduced_hsdf_from_matrix(m, "single");
    EXPECT_EQ(g.actor_count(), 1u);
    EXPECT_EQ(g.channel_count(), 1u);
    EXPECT_TRUE(g.channel(0).is_self_loop());
    EXPECT_EQ(g.channel(0).initial_tokens, 1);
    EXPECT_EQ(g.actor(0).execution_time, 23);
}

TEST(HsdfReduced, ElisionToggleReachesWorstCaseBound) {
    const ReducedHsdfOptions no_elide{.elide_single_client_muxes = false};
    const Graph g = reduced_hsdf_from_matrix(dense2(), "dense", no_elide);
    EXPECT_EQ(g.actor_count(), 8u);  // dense: elision changes nothing
    MpMatrix diag(2, 2);
    diag.set(0, 0, MpValue(1));
    diag.set(1, 1, MpValue(2));
    const Graph elided = reduced_hsdf_from_matrix(diag, "diag");
    const Graph full = reduced_hsdf_from_matrix(diag, "diag", no_elide);
    EXPECT_EQ(elided.actor_count(), 2u);  // two self-loop cells
    EXPECT_EQ(full.actor_count(), 6u);    // plus per-token mux and demux
    // Same timing either way.
    EXPECT_EQ(throughput_symbolic(elided).period, Rational(2));
    EXPECT_EQ(throughput_symbolic(full).period, Rational(2));
}

TEST(HsdfReduced, SparseMatrixSkipsAbsentCells) {
    MpMatrix m(3, 3);
    m.set(0, 1, MpValue(2));
    m.set(1, 2, MpValue(3));
    m.set(2, 0, MpValue(4));
    const Graph g = reduced_hsdf_from_matrix(m, "ring3");
    // One cell per finite entry, no muxes/demuxes needed.
    EXPECT_EQ(g.actor_count(), 3u);
    EXPECT_EQ(g.total_initial_tokens(), 3);
    EXPECT_EQ(throughput_symbolic(g).period, Rational(3));  // (2+3+4)/3
}

TEST(HsdfReduced, EmptyColumnGetsFreeSource) {
    // Token 0 depends on nothing (all -inf column) but token 1 depends on
    // token 0: a src_ actor must supply it.
    MpMatrix m(2, 2);
    m.set(0, 1, MpValue(5));
    m.set(1, 1, MpValue(1));
    const Graph g = reduced_hsdf_from_matrix(m, "free");
    ASSERT_TRUE(g.find_actor("src_0").has_value());
    const ThroughputResult t = throughput_symbolic(g);
    ASSERT_TRUE(t.is_finite());
    EXPECT_EQ(t.period, Rational(1));  // only the 1-cycle on g_1_1 constrains
}

TEST(HsdfReduced, EndToEndOnFigure1) {
    const Graph original = figure1_graph(6);
    const Graph reduced = to_hsdf_reduced(original);
    EXPECT_EQ(reduced.actor_count(), 1u);  // one initial token
    EXPECT_EQ(throughput_symbolic(reduced).period, iteration_period(original));
}

TEST(HsdfReduced, SizeBoundsHoldOnPrefetchModel) {
    const Graph original = prefetch_graph(24);
    const SymbolicIteration it = symbolic_iteration(original);
    const Int n = static_cast<Int>(it.tokens.size());
    const Graph reduced = to_hsdf_reduced(original);
    EXPECT_LE(static_cast<Int>(reduced.actor_count()), n * (n + 2));
    EXPECT_LE(static_cast<Int>(reduced.channel_count()), n * (2 * n + 1));
    EXPECT_LE(reduced.total_initial_tokens(), n);
    EXPECT_EQ(throughput_symbolic(reduced).period, iteration_period(original));
}

TEST(HsdfReduced, RejectsNonSquareMatrix) {
    EXPECT_THROW(reduced_hsdf_from_matrix(MpMatrix(2, 3), "bad"), InvalidGraphError);
}

}  // namespace
}  // namespace sdf
