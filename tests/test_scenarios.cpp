// Unit + property tests for transform/scenarios.hpp — worst-case analysis
// over dataflow scenarios (after the paper's companion work [7]).
#include "transform/scenarios.hpp"

#include <gtest/gtest.h>

#include <random>

#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "gen/random_sdf.hpp"
#include "maxplus/mcm.hpp"

namespace sdf {
namespace {

/// A two-actor ring whose execution times depend on the mode.
Graph mode_graph(const std::string& name, Int ta, Int tb) {
    Graph g(name);
    const ActorId a = g.add_actor("a", ta);
    const ActorId b = g.add_actor("b", tb);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 2);
    return g;
}

TEST(Scenarios, SingleScenarioEqualsPlainAnalysis) {
    const Graph g = mode_graph("only", 3, 4);
    const ScenarioAnalysis analysis = analyse_scenarios({{"only", g}});
    ASSERT_EQ(analysis.periods.size(), 1u);
    EXPECT_EQ(analysis.periods[0], Rational(7, 2));
    EXPECT_EQ(analysis.worst_case_period, Rational(7, 2));
}

TEST(Scenarios, WorstCaseDominatesEveryStandalonePeriod) {
    const ScenarioAnalysis analysis = analyse_scenarios({
        {"fast", mode_graph("fast", 1, 2)},
        {"slow", mode_graph("slow", 5, 6)},
    });
    EXPECT_EQ(analysis.periods[0], Rational(3, 2));
    EXPECT_EQ(analysis.periods[1], Rational(11, 2));
    EXPECT_GE(analysis.worst_case_period, analysis.periods[0]);
    EXPECT_GE(analysis.worst_case_period, analysis.periods[1]);
}

TEST(Scenarios, MixedCyclesCanExceedEveryStandalonePeriod) {
    // Scenario X loads token 0 heavily, scenario Y token 1; alternating
    // them is worse than either alone.  Build them directly as one-actor
    // graphs with two self-loop tokens and asymmetric behaviour via two
    // actors sharing the tokens.
    Graph x("x");
    {
        const ActorId a = x.add_actor("a", 10);
        const ActorId b = x.add_actor("b", 1);
        x.add_channel(a, a, 1);  // token 0: heavy in x
        x.add_channel(b, b, 1);  // token 1: light in x
        x.add_channel(a, b, 1);
        x.add_channel(b, a, 1);
    }
    Graph y("y");
    {
        const ActorId a = y.add_actor("a", 1);
        const ActorId b = y.add_actor("b", 10);
        y.add_channel(a, a, 1);
        y.add_channel(b, b, 1);
        y.add_channel(a, b, 1);
        y.add_channel(b, a, 1);
    }
    const ScenarioAnalysis analysis =
        analyse_scenarios({{"x", x}, {"y", y}});
    EXPECT_GE(analysis.worst_case_period, analysis.periods[0]);
    EXPECT_GE(analysis.worst_case_period, analysis.periods[1]);
}

TEST(Scenarios, EnvelopeHsdfRealisesTheWorstCase) {
    const ScenarioAnalysis analysis = analyse_scenarios({
        {"fast", mode_graph("fast", 1, 2)},
        {"slow", mode_graph("slow", 5, 6)},
    });
    const Graph envelope = scenario_envelope_hsdf(analysis, "envelope");
    const ThroughputResult t = throughput_symbolic(envelope);
    ASSERT_TRUE(t.is_finite());
    EXPECT_EQ(t.period, analysis.worst_case_period);
}

TEST(Scenarios, RejectsIllFormedSets) {
    EXPECT_THROW(analyse_scenarios({}), Error);
    // Token-count mismatch.
    Graph other("other");
    const ActorId a = other.add_actor("a", 1);
    other.add_channel(a, a, 3);
    EXPECT_THROW(analyse_scenarios({{"g", mode_graph("g", 1, 1)}, {"other", other}}),
                 Error);
    // Deadlocked scenario.
    Graph dead("dead");
    const ActorId d1 = dead.add_actor("a", 1);
    const ActorId d2 = dead.add_actor("b", 1);
    dead.add_channel(d1, d2, 0);
    dead.add_channel(d2, d1, 0);
    EXPECT_THROW(analyse_scenarios({{"dead", dead}}), Error);
}

class ScenarioProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioProperty, WorstCaseBoundsMatrixProducts) {
    // Sample random scenario sequences; the growth of the matrix product
    // over n steps never exceeds n * worst_case_period.
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    // Two scenarios: same structure, different random execution times.
    RandomSdfOptions options;
    options.min_actors = 3;
    options.max_actors = 4;
    Graph base = random_sdf(rng, options);
    Graph variant = base;
    std::uniform_int_distribution<Int> time(1, 12);
    for (ActorId a = 0; a < base.actor_count(); ++a) {
        base.set_execution_time(a, time(rng));
        variant.set_execution_time(a, time(rng));
    }
    ScenarioAnalysis analysis;
    try {
        analysis = analyse_scenarios({{"base", base}, {"variant", variant}});
    } catch (const Error&) {
        return;  // degenerate random case (zero period)
    }
    // Random products of the scenario matrices.
    const std::size_t steps = 6;
    MpMatrix product = MpMatrix::identity(analysis.envelope.rows());
    for (std::size_t i = 0; i < steps; ++i) {
        product = product.multiply(analysis.matrices[rng() % 2]);
    }
    const MpValue growth = product.max_entry();
    if (growth.is_finite()) {
        // Path decomposition: k edges split into cycles (each bounded by
        // lambda per edge) plus a simple remainder of < n edges, each at
        // most the largest envelope entry.
        const Rational slack = Rational(static_cast<Int>(analysis.envelope.rows())) *
                               Rational(analysis.envelope.max_entry().value());
        EXPECT_LE(Rational(growth.value()),
                  Rational(static_cast<Int>(steps)) * analysis.worst_case_period + slack);
    }
    // And the envelope HSDF reproduces the worst case exactly.
    const Graph envelope = scenario_envelope_hsdf(analysis, "env");
    EXPECT_EQ(throughput_symbolic(envelope).period, analysis.worst_case_period);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace sdf
