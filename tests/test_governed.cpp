// Tests for the resource-governance layer (src/robust) and the anytime
// degradation ladder (analysis/governed).  Covers: budget trips of every
// cause, cancellation, the exact/degraded/aborted contract, conservativity
// of degraded bounds against the exact analysis, deterministic fault
// injection sweeps over the bundled models (with retry-identity), typed
// capacity refusals in the converters, and the governed-bound oracle over
// hundreds of random graphs (the acceptance criterion of the robustness
// milestone).
#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "analysis/governed.hpp"
#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "gen/random_sdf.hpp"
#include "io/text.hpp"
#include "io/xml.hpp"
#include "robust/budget.hpp"
#include "robust/fault.hpp"
#include "sdf/simulate.hpp"
#include "transform/hsdf_classic.hpp"
#include "transform/unfold.hpp"
#include "verify/oracles.hpp"

namespace sdf {
namespace {

const std::string kDataDir = SDFRED_DATA_DIR;

bool has_suffix(const std::string& text, const std::string& suffix) {
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Graph load_model(const std::string& name) {
    const std::string path = kDataDir + "/" + name;
    return has_suffix(name, ".xml") ? read_xml_file(path) : read_text_file(path);
}

/// The paper's Figure 1 shape in miniature: two coupled cycles.
Graph small_cyclic() {
    Graph g("small");
    const ActorId a = g.add_actor("a", 2);
    const ActorId b = g.add_actor("b", 3);
    const ActorId c = g.add_actor("c", 1);
    g.add_channel(a, b, 0);
    g.add_channel(b, c, 0);
    g.add_channel(c, a, 1);
    g.add_channel(b, a, 1);
    return g;
}

/// Asserts `bound` never over-claims against `exact` (the ladder's core
/// soundness contract).
void expect_conservative(const Graph& g, const ThroughputResult& exact,
                         const ThroughputResult& bound, const std::string& context) {
    if (exact.outcome == ThroughputOutcome::unbounded) {
        return;
    }
    ASSERT_NE(bound.outcome, ThroughputOutcome::unbounded) << context;
    if (exact.outcome == ThroughputOutcome::deadlocked) {
        for (const Rational& rate : bound.per_actor) {
            EXPECT_TRUE(rate.is_zero()) << context;
        }
        return;
    }
    if (bound.outcome != ThroughputOutcome::finite) {
        return;  // a zero claim is below any finite throughput
    }
    EXPECT_LE(exact.period, bound.period) << context;
    ASSERT_EQ(bound.per_actor.size(), exact.per_actor.size()) << context;
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        EXPECT_LE(bound.per_actor[a], exact.per_actor[a])
            << context << " actor " << g.actor(a).name;
    }
}

// ---- Governor mechanics ------------------------------------------------

TEST(Governor, StepBudgetTripsWithTypedCause) {
    ExecutionBudget budget;
    budget.max_steps = 3;
    Governor governor(budget);
    const GovernorScope scope(governor);
    try {
        for (int i = 0; i < 100; ++i) {
            SDFRED_CHECKPOINT();
        }
        FAIL() << "step budget never tripped";
    } catch (const BudgetExceeded& e) {
        EXPECT_EQ(e.cause(), BudgetCause::steps);
    }
    EXPECT_GE(governor.usage().steps, 3u);
}

TEST(Governor, DeadlineTrips) {
    ExecutionBudget budget;
    budget.deadline = std::chrono::milliseconds(1);
    Governor governor(budget);
    const GovernorScope scope(governor);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    try {
        // The deadline is consulted on the slow path (every 64th tick).
        for (int i = 0; i < 1000; ++i) {
            SDFRED_CHECKPOINT();
        }
        FAIL() << "deadline never tripped";
    } catch (const BudgetExceeded& e) {
        EXPECT_EQ(e.cause(), BudgetCause::deadline);
    }
}

TEST(Governor, MemoryBudgetTripsOnAccountedBytes) {
    ExecutionBudget budget;
    budget.max_bytes = 1024;
    Governor governor(budget);
    const GovernorScope scope(governor);
    robust_account_bytes(512);  // within budget
    try {
        robust_account_bytes(4096);
        FAIL() << "memory budget never tripped";
    } catch (const BudgetExceeded& e) {
        EXPECT_EQ(e.cause(), BudgetCause::memory);
    }
    EXPECT_GE(governor.usage().accounted_bytes, 1024u);
}

TEST(Governor, CancellationTokenTrips) {
    CancellationToken token;
    Governor governor(ExecutionBudget{}, token);
    const GovernorScope scope(governor);
    token.request_cancel();
    try {
        for (int i = 0; i < 1000; ++i) {
            SDFRED_CHECKPOINT();
        }
        FAIL() << "cancellation never observed";
    } catch (const BudgetExceeded& e) {
        EXPECT_EQ(e.cause(), BudgetCause::cancelled);
    }
}

TEST(Governor, UngovernedCheckpointsAreNoOps) {
    EXPECT_EQ(current_governor(), nullptr);
    for (int i = 0; i < 100; ++i) {
        SDFRED_CHECKPOINT();  // must not throw without an installed governor
    }
    robust_account_bytes(std::uint64_t{1} << 40);
}

TEST(Governor, ScopeInstallsAndRestores) {
    EXPECT_EQ(current_governor(), nullptr);
    Governor governor(ExecutionBudget{});
    {
        const GovernorScope scope(governor);
        EXPECT_EQ(current_governor(), &governor);
    }
    EXPECT_EQ(current_governor(), nullptr);
}

// ---- Kernel integration ------------------------------------------------

TEST(Governed, SimulationThrowsTypedBudgetExceeded) {
    // A graph whose recurrent state takes more events than the cap: the old
    // untyped overflow error is now a BudgetExceeded with cause `steps`.
    Graph g = small_cyclic();
    try {
        simulate_throughput(g, 2);
        FAIL() << "event budget never tripped";
    } catch (const BudgetExceeded& e) {
        EXPECT_EQ(e.cause(), BudgetCause::steps);
    }
}

TEST(Governed, UnfoldRefusesHugeFactorBeforeAllocating) {
    const Graph g = small_cyclic();
    EXPECT_THROW(unfold(g, Int{1} << 40), ResourceLimitError);
}

TEST(Governed, ClassicExpansionRefusesHugeIterationLength) {
    Graph g("huge");
    const Int scale = 5'000'000;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, scale, 1, 0);       // q = (1, scale)
    g.add_channel(b, a, 1, scale, scale);   // back edge, one full iteration
    EXPECT_THROW(to_hsdf_classic(g), ResourceLimitError);
}

TEST(Governed, SymbolicRouteHonoursStepBudget) {
    const Graph g = load_model("modem.xml");
    ExecutionBudget budget;
    budget.max_steps = 10;
    Governor governor(budget);
    const GovernorScope scope(governor);
    EXPECT_THROW(throughput_symbolic(g), BudgetExceeded);
}

// ---- The degradation ladder --------------------------------------------

TEST(Governed, GenerousBudgetIsExact) {
    const Graph g = load_model("modem.xml");
    const ThroughputResult exact = throughput_symbolic(g);
    GovernOptions options;
    options.budget.deadline = std::chrono::milliseconds(60'000);
    const Governed<ThroughputResult> result = governed_throughput(g, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.status, GovernedStatus::exact);
    EXPECT_EQ(result.method, "symbolic-exact");
    ASSERT_EQ(result.value->outcome, exact.outcome);
    EXPECT_EQ(result.value->period, exact.period);
    EXPECT_EQ(result.value->per_actor, exact.per_actor);
    EXPECT_GT(result.used.steps, 0u);
}

TEST(Governed, UnlimitedBudgetIsExactToo) {
    const Graph g = small_cyclic();
    const ThroughputResult exact = throughput_symbolic(g);
    const Governed<ThroughputResult> result = governed_throughput(g, {});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.status, GovernedStatus::exact);
    EXPECT_EQ(result.value->period, exact.period);
}

TEST(Governed, StarvedBudgetDegradesToConservativeBound) {
    for (const std::string name :
         {"figure1_n6.sdf", "modem.xml", "samplerate.xml", "satellite.xml"}) {
        const Graph g = load_model(name);
        const ThroughputResult exact = throughput_symbolic(g);
        GovernOptions options;
        options.budget.max_steps = 1;  // starve the exact rung immediately
        const Governed<ThroughputResult> result = governed_throughput(g, options);
        ASSERT_TRUE(result.ok()) << name;
        EXPECT_EQ(result.cause, BudgetCause::steps) << name;
        ASSERT_TRUE(result.value.has_value()) << name;
        if (result.status == GovernedStatus::degraded) {
            expect_conservative(g, exact, *result.value, name);
        }
    }
}

TEST(Governed, DegradeNeverAborts) {
    const Graph g = load_model("figure1_n6.sdf");
    GovernOptions options;
    options.budget.max_steps = 1;
    options.degrade = DegradeMode::never;
    const Governed<ThroughputResult> result = governed_throughput(g, options);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status, GovernedStatus::aborted);
    EXPECT_EQ(result.cause, BudgetCause::steps);
    EXPECT_FALSE(result.value.has_value());
}

TEST(Governed, CancelledBeforeStartAborts) {
    const Graph g = load_model("figure1_n6.sdf");
    GovernOptions options;
    options.token.request_cancel();
    options.degrade = DegradeMode::never;
    const Governed<ThroughputResult> result = governed_throughput(g, options);
    EXPECT_EQ(result.status, GovernedStatus::aborted);
    EXPECT_EQ(result.cause, BudgetCause::cancelled);
}

TEST(Governed, SemanticErrorsPropagateUnchanged) {
    // An inconsistent graph must raise its typed error from the governed
    // entry point, never "degrade" into a bound.
    Graph g("inconsistent");
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 2, 1, 0);
    g.add_channel(b, a, 2, 1, 0);
    EXPECT_THROW(governed_throughput(g, {}), InconsistentGraphError);
}

TEST(Governed, DeadlockedGraphReportsExactZero) {
    Graph g("dead");
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 0);  // no tokens anywhere: deadlock
    GovernOptions options;
    options.budget.max_steps = 1;
    const Governed<ThroughputResult> result = governed_throughput(g, options);
    ASSERT_TRUE(result.ok());
    // Deadlock detection via the sequential schedule is exact, not a bound.
    EXPECT_EQ(result.status, GovernedStatus::exact);
    EXPECT_EQ(result.value->outcome, ThroughputOutcome::deadlocked);
}

TEST(Governed, DeadlineKeepsWallClockBounded) {
    // A graph large enough that the exact route cannot finish in 25 ms, on
    // a budget that forces degradation: the ladder must come back quickly
    // (the ~2x-deadline contract, asserted here with a wide CI margin).
    std::mt19937 rng(7);
    RandomSdfOptions big;
    big.min_actors = 12;
    big.max_actors = 16;
    big.max_repetition = 6;
    const Graph g = random_sdf(rng, big);
    GovernOptions options;
    options.budget.deadline = std::chrono::milliseconds(25);
    const auto started = std::chrono::steady_clock::now();
    const Governed<ThroughputResult> result = governed_throughput(g, options);
    const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - started)
                                  .count();
    ASSERT_TRUE(result.ok());
    // 2x deadline plus generous slack for loaded CI machines.
    EXPECT_LT(elapsed_ms, 2000.0);
}

// ---- Fault injection ---------------------------------------------------

TEST(FaultInjection, SpecParsingAndArming) {
    EXPECT_FALSE(fault_injection_armed());
    {
        const FaultInjectionScope scope("alloc:2|step:5,deadline:1");
        EXPECT_TRUE(fault_injection_armed());
    }
    EXPECT_FALSE(fault_injection_armed());
    EXPECT_THROW(set_fault_injection("alloc:x"), Error);
    EXPECT_THROW(set_fault_injection("frobnicate:3"), Error);
    clear_fault_injection();
}

TEST(FaultInjection, FiresOnlyUnderGovernance) {
    const Graph g = small_cyclic();
    const ThroughputResult exact = throughput_symbolic(g);
    const FaultInjectionScope scope("alloc:1|step:1|deadline:1");
    // No governor installed: the armed faults must not perturb plain use.
    const ThroughputResult again = throughput_symbolic(g);
    EXPECT_EQ(again.period, exact.period);
}

TEST(FaultInjection, SweepOverBundledModels) {
    // The satellite (c) sweep: fail the K-th governed allocation for
    // K = 1..kAllocSweep (and the K-th checkpoint for the step/deadline
    // kinds) on each bundled model.  Every outcome must be a conservative
    // result or a clean abort, the library state must survive (retry
    // identity), and under ASan nothing may leak.
    constexpr int kAllocSweep = 25;
    constexpr int kCheckpointSweep = 8;
    for (const std::string name : {"figure1_n6.sdf", "modem.xml", "samplerate.xml"}) {
        const Graph g = load_model(name);
        const ThroughputResult exact = throughput_symbolic(g);
        std::vector<std::string> specs;
        for (int k = 1; k <= kAllocSweep; ++k) {
            specs.push_back("alloc:" + std::to_string(k));
        }
        for (int k = 1; k <= kCheckpointSweep; ++k) {
            specs.push_back("step:" + std::to_string(k));
            specs.push_back("deadline:" + std::to_string(k));
        }
        for (const std::string& spec : specs) {
            {
                const FaultInjectionScope fault(spec);
                const Governed<ThroughputResult> result = governed_throughput(g, {});
                if (result.ok() && result.status == GovernedStatus::degraded) {
                    expect_conservative(g, exact, *result.value, name + " " + spec);
                } else if (result.ok()) {
                    EXPECT_EQ(result.value->period, exact.period)
                        << name << " " << spec;
                }
            }
            // Retry identity: the fault must not have corrupted anything.
            const ThroughputResult retry = throughput_symbolic(g);
            ASSERT_EQ(retry.outcome, exact.outcome) << name << " " << spec;
            EXPECT_EQ(retry.period, exact.period) << name << " " << spec;
            EXPECT_EQ(retry.per_actor, exact.per_actor) << name << " " << spec;
        }
    }
}

// ---- The governed-bound oracle -----------------------------------------

TEST(GovernedOracle, RegisteredAndListed) {
    ASSERT_NE(find_oracle("governed-bound"), nullptr);
}

TEST(GovernedOracle, OracleBudgetGovernsTheRun) {
    const Graph g = load_model("modem.xml");
    const Oracle* oracle = find_oracle("throughput-routes");
    ASSERT_NE(oracle, nullptr);
    OracleLimits limits;
    limits.budget.max_steps = 5;
    const Verdict verdict = run_oracle(*oracle, g, limits);
    EXPECT_EQ(verdict.status, VerdictStatus::reject) << verdict.describe();
}

TEST(GovernedOracle, HoldsOverRandomGraphSweep) {
    // Acceptance criterion: over >= 200 random graphs, every degraded
    // result is a true lower bound and injected faults never corrupt state.
    const Oracle* oracle = find_oracle("governed-bound");
    ASSERT_NE(oracle, nullptr);
    int checked = 0;
    for (std::uint64_t seed = 1; seed <= 220; ++seed) {
        std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
        const Graph g = random_sdf(rng);
        const Verdict verdict = run_oracle(*oracle, g);
        EXPECT_NE(verdict.status, VerdictStatus::fail)
            << "seed " << seed << ": " << verdict.describe();
        if (verdict.status == VerdictStatus::pass) {
            ++checked;
        }
    }
    // The generator emits consistent live graphs, so the vast majority
    // must actually exercise the pass path rather than skip or reject.
    EXPECT_GE(checked, 150);
}

}  // namespace
}  // namespace sdf
