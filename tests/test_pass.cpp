// Tests for src/pass: the pipeline parser (grammar, canonical form, typed
// errors), the registry, and the PipelineExecutor (analysis adoption,
// budget slicing, --verify-each declaration checking, route equivalence
// over the bundled models).
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/throughput.hpp"
#include "io/text.hpp"
#include "io/xml.hpp"
#include "pass/executor.hpp"
#include "pass/pipeline.hpp"
#include "pass/registry.hpp"
#include "sdf/repetition.hpp"
#include "sdf/schedule.hpp"
#include "transform/selfloops.hpp"

namespace sdf {
namespace {

// A consistent, live multi-rate graph: A =2/1=> B with a token-carrying
// back channel (its closure has a finite period).
Graph multirate() {
    Graph g("multirate");
    const ActorId a = g.add_actor("A", 3);
    const ActorId b = g.add_actor("B", 2);
    g.add_channel(a, b, 2, 1, 0);
    g.add_channel(b, a, 1, 2, 4);
    return g;
}

// A homogeneous ring of `n` actors with one token: period == sum of times.
Graph ring(std::size_t n, Int time = 1) {
    Graph g("ring" + std::to_string(n));
    for (std::size_t i = 0; i < n; ++i) {
        g.add_actor("a" + std::to_string(i), time);
    }
    for (std::size_t i = 0; i < n; ++i) {
        g.add_channel(static_cast<ActorId>(i), static_cast<ActorId>((i + 1) % n), 1,
                      1, i == 0 ? 1 : 0);
    }
    return g;
}

PipelineErrorKind kind_of(const std::string& spec) {
    try {
        (void)parse_pipeline(spec);
    } catch (const PipelineParseError& e) {
        return e.kind();
    }
    ADD_FAILURE() << "spec '" << spec << "' parsed cleanly";
    return PipelineErrorKind::empty;
}

// ---- registry ---------------------------------------------------------

TEST(PassRegistry, BuiltinsResolveAndHiddenStaysOutOfTheCatalogue) {
    const PassRegistry& registry = PassRegistry::instance();
    for (const char* name :
         {"selfloops", "prune", "retiming", "hsdf-classic", "hsdf-reduced",
          "abstraction", "sdf-abstraction", "unfold", "scenario-envelope"}) {
        EXPECT_NE(registry.find(name), nullptr) << name;
    }
    // The unsound self-test pass resolves but is not advertised.
    EXPECT_NE(registry.find("selftest-unsound"), nullptr);
    for (const Pass* pass : registry.list()) {
        EXPECT_NE(pass->name(), "selftest-unsound");
    }
    bool listed_hidden = false;
    for (const Pass* pass : registry.list(/*include_hidden=*/true)) {
        listed_hidden = listed_hidden || pass->name() == "selftest-unsound";
    }
    EXPECT_TRUE(listed_hidden);
}

// ---- parser: valid specs ----------------------------------------------

TEST(PipelineParser, RoundTripsToCanonicalForm) {
    const Pipeline p =
        parse_pipeline("  selfloops ,prune , unfold( 2 ) ,hsdf-reduced ");
    EXPECT_EQ(p.to_string(), "selfloops,prune,unfold(2),hsdf-reduced");
    ASSERT_EQ(p.steps.size(), 4u);
    EXPECT_EQ(p.steps[2].params.at("n"), 2);
    // Canonical text re-parses to the same canonical text (fixpoint).
    EXPECT_EQ(parse_pipeline(p.to_string()).to_string(), p.to_string());
}

TEST(PipelineParser, DefaultedParametersAreFilledAndOmittedFromCanonicalForm) {
    const Pipeline defaulted = parse_pipeline("selfloops");
    EXPECT_EQ(defaulted.steps[0].params.at("tokens"), 1);
    EXPECT_EQ(defaulted.to_string(), "selfloops");
    // Explicit default prints the same.
    EXPECT_EQ(parse_pipeline("selfloops(1)").to_string(), "selfloops");
    EXPECT_EQ(parse_pipeline("selfloops()").to_string(), "selfloops");
    // Keyword form canonicalises to positional for a single parameter.
    EXPECT_EQ(parse_pipeline("selfloops(tokens=2)").to_string(), "selfloops(2)");
}

// ---- parser: typed errors ---------------------------------------------

TEST(PipelineParser, EmptyPipelines) {
    EXPECT_EQ(kind_of(""), PipelineErrorKind::empty);
    EXPECT_EQ(kind_of("   "), PipelineErrorKind::empty);
}

TEST(PipelineParser, UnknownPassNames) {
    EXPECT_EQ(kind_of("bogus"), PipelineErrorKind::unknown_pass);
    EXPECT_EQ(kind_of("prune,bogus"), PipelineErrorKind::unknown_pass);
    // The message lists the catalogue so the CLI error is actionable.
    try {
        (void)parse_pipeline("bogus");
        FAIL();
    } catch (const PipelineParseError& e) {
        EXPECT_NE(std::string(e.what()).find("hsdf-reduced"), std::string::npos);
        EXPECT_GT(std::string(pipeline_error_kind_name(e.kind())).size(), 0u);
    }
}

TEST(PipelineParser, MalformedParameters) {
    EXPECT_EQ(kind_of("unfold"), PipelineErrorKind::malformed_parameter);  // required
    EXPECT_EQ(kind_of("unfold()"), PipelineErrorKind::malformed_parameter);
    EXPECT_EQ(kind_of("unfold(x)"), PipelineErrorKind::malformed_parameter);
    EXPECT_EQ(kind_of("unfold(0)"), PipelineErrorKind::malformed_parameter);  // min 1
    EXPECT_EQ(kind_of("selfloops(0)"), PipelineErrorKind::malformed_parameter);
    EXPECT_EQ(kind_of("prune(1)"), PipelineErrorKind::malformed_parameter);  // arity
    EXPECT_EQ(kind_of("unfold(k=2)"), PipelineErrorKind::malformed_parameter);
}

TEST(PipelineParser, DuplicateParameters) {
    EXPECT_EQ(kind_of("unfold(2,n=3)"), PipelineErrorKind::duplicate_parameter);
    EXPECT_EQ(kind_of("unfold(n=2,n=3)"), PipelineErrorKind::duplicate_parameter);
}

TEST(PipelineParser, SyntaxErrors) {
    EXPECT_EQ(kind_of("prune,,selfloops"), PipelineErrorKind::syntax);
    EXPECT_EQ(kind_of("prune,"), PipelineErrorKind::syntax);
    EXPECT_EQ(kind_of("unfold(2"), PipelineErrorKind::syntax);
    EXPECT_EQ(kind_of("prune)"), PipelineErrorKind::syntax);
    EXPECT_EQ(kind_of("prune selfloops"), PipelineErrorKind::syntax);
}

TEST(PipelineParser, ErrorsCarryThePosition) {
    try {
        (void)parse_pipeline("prune,bogus");
        FAIL();
    } catch (const PipelineParseError& e) {
        EXPECT_EQ(e.position(), 6u);
    }
}

TEST(PipelineParser, NestedAndUnbalancedParentheses) {
    // '(' is not special inside an argument, so nesting lands in the value
    // token and fails the integer parse, never the tokenizer.
    EXPECT_EQ(kind_of("unfold((2))"), PipelineErrorKind::malformed_parameter);
    EXPECT_EQ(kind_of("unfold((n=2)"), PipelineErrorKind::malformed_parameter);
    // A stray closing paren after a complete call is a missing separator.
    EXPECT_EQ(kind_of("unfold(2))"), PipelineErrorKind::syntax);
}

TEST(PipelineParser, TrailingCommaVariants) {
    EXPECT_EQ(kind_of("prune,"), PipelineErrorKind::syntax);
    EXPECT_EQ(kind_of("selfloops,prune,  "), PipelineErrorKind::syntax);
    EXPECT_EQ(kind_of("unfold(2,)"), PipelineErrorKind::syntax);
}

TEST(PipelineParser, EmptyAndDoubledParameterValues) {
    // "n=" reads an empty value token; that is a malformed parameter (the
    // message names the parameter), not a tokenizer crash.
    EXPECT_EQ(kind_of("unfold(n=)"), PipelineErrorKind::malformed_parameter);
    EXPECT_EQ(kind_of("unfold(n=2=3)"), PipelineErrorKind::syntax);
}

TEST(PipelineParser, EveryRegisteredPassRoundTripsWithNonDefaultParams) {
    // For every pass (hidden ones included): build a keyword-form spec with
    // every parameter set off its default, and require parse -> to_string
    // to be a fixpoint that preserves the chosen values.
    for (const Pass* pass : PassRegistry::instance().list(/*include_hidden=*/true)) {
        std::string spec = pass->name();
        std::vector<std::pair<std::string, Int>> chosen;
        const std::vector<PassParamSpec> params = pass->params();
        if (!params.empty()) {
            spec += "(";
            for (std::size_t i = 0; i < params.size(); ++i) {
                const PassParamSpec& p = params[i];
                Int value = p.default_value.value_or(p.minimum.value_or(0)) + 1;
                if (p.minimum && value < *p.minimum) {
                    value = *p.minimum + 1;
                }
                chosen.emplace_back(p.name, value);
                spec += (i == 0 ? "" : ",") + p.name + "=" + std::to_string(value);
            }
            spec += ")";
        }
        const Pipeline parsed = parse_pipeline(spec);
        ASSERT_EQ(parsed.steps.size(), 1u) << spec;
        for (const auto& [name, value] : chosen) {
            EXPECT_EQ(parsed.steps[0].params.at(name), value) << spec;
        }
        const std::string canonical = parsed.to_string();
        EXPECT_EQ(parse_pipeline(canonical).to_string(), canonical) << spec;
        for (const auto& [name, value] : chosen) {
            EXPECT_EQ(parse_pipeline(canonical).steps[0].params.at(name), value)
                << canonical;
        }
    }
}

// ---- executor: analysis threading -------------------------------------

TEST(PipelineExecutor, AdoptsDeclaredPreservedAnalyses) {
    Graph g = multirate();
    const std::vector<Int> reps = repetition_vector(g);  // warm the cache
    const PipelineRun run =
        PipelineExecutor().run(parse_pipeline("selfloops"), g);
    ASSERT_EQ(run.reports.size(), 1u);
    EXPECT_TRUE(run.reports[0].changed);
    // The repetition vector survived the rewrite without recomputation...
    ASSERT_TRUE(run.graph.analyses()->is_cached<RepetitionVectorAnalysis>());
    EXPECT_EQ(*run.graph.analyses()->cached<RepetitionVectorAnalysis>(), reps);
    const auto carried = run.reports[0].carried;
    EXPECT_NE(std::find(carried.begin(), carried.end(), "repetition"),
              carried.end());
    // ...and it is the correct repetition vector of the result.
    EXPECT_EQ(repetition_vector(run.graph), reps);
    // Adoption is visible in the slot statistics.
    for (const AnalysisSlotStats& slot : run.graph.analyses()->stats()) {
        if (slot.analysis == "repetition") {
            EXPECT_EQ(slot.adopted, 1u);
            EXPECT_EQ(slot.misses, 0u);
        }
    }
}

TEST(PipelineExecutor, RetimingCarriesTheFullThroughputResult) {
    Graph g = ring(4, 2);
    const auto before = cached_throughput(g);  // warm the timed slot
    ASSERT_TRUE(before->is_finite());
    const PipelineRun run = PipelineExecutor().run(parse_pipeline("retiming"), g);
    if (run.reports[0].changed) {
        ASSERT_TRUE(run.graph.analyses()->is_cached<ThroughputAnalysis>());
        const auto adopted = run.graph.analyses()->cached<ThroughputAnalysis>();
        EXPECT_EQ(adopted->period, before->period);
        // The adopted value matches a from-scratch recomputation.
        EXPECT_EQ(throughput_symbolic(run.graph).period, before->period);
    }
}

TEST(PipelineExecutor, UnchangedPassKeepsTheWholeCache) {
    Graph g = add_self_loops(multirate(), 1);
    repetition_vector(g);
    sequential_schedule(g);
    const auto manager = g.analyses();
    const PipelineRun run = PipelineExecutor().run(parse_pipeline("selfloops"), g);
    EXPECT_FALSE(run.reports[0].changed);
    // No mutation, no manager swap: every slot survives trivially.
    EXPECT_EQ(run.graph.analyses(), manager);
    EXPECT_TRUE(run.graph.analyses()->is_cached<SequentialScheduleAnalysis>());
}

// ---- executor: route equivalence over the bundled models --------------

TEST(PipelineExecutor, PipelineRouteMatchesDirectRouteOnEveryBundledModel) {
    const std::filesystem::path data_dir(SDFRED_DATA_DIR);
    const Pipeline pipeline = parse_pipeline("selfloops,prune,hsdf-reduced");
    std::size_t models = 0;
    for (const auto& entry : std::filesystem::directory_iterator(data_dir)) {
        if (!entry.is_regular_file()) {
            continue;  // bad/ and corpus/ are covered by their own suites
        }
        const std::string path = entry.path().string();
        const Graph model = entry.path().extension() == ".xml"
                                ? read_xml_file(path)
                                : read_text_file(path);
        const ThroughputResult direct =
            throughput_symbolic(add_self_loops(model, 1));
        const PipelineRun run = PipelineExecutor().run(pipeline, model);
        const ThroughputResult via = throughput_symbolic(run.graph);
        EXPECT_EQ(via.outcome, direct.outcome) << path;
        if (direct.is_finite()) {
            EXPECT_EQ(via.period, direct.period) << path;  // exact rationals
        }
        ++models;
    }
    EXPECT_GE(models, 10u);  // every bundled model took part
}

// ---- executor: verification -------------------------------------------

TEST(PipelineExecutor, VerifyEachAcceptsSoundPipelines) {
    ExecutorOptions options;
    options.verify_each = true;
    const PipelineRun run = PipelineExecutor(std::move(options))
                                .run(parse_pipeline("selfloops,prune,unfold(2),"
                                                    "hsdf-reduced"),
                                     ring(3, 2));
    for (const PassReport& report : run.reports) {
        // Declaration checks run on every pass that rewrote the graph; a
        // no-op pass has nothing to verify.
        EXPECT_EQ(report.verified, report.changed) << report.invocation;
    }
    EXPECT_TRUE(throughput_symbolic(run.graph).is_finite());
}

TEST(PipelineExecutor, VerifyEachCatchesTheUnsoundSelfTestPass) {
    ExecutorOptions options;
    options.verify_each = true;
    EXPECT_THROW((void)PipelineExecutor(std::move(options))
                     .run(parse_pipeline("selftest-unsound"), ring(3, 2)),
                 PipelineVerificationError);
}

TEST(PipelineExecutor, WithoutVerificationTheUnsoundPassSlipsThrough) {
    // The point of --verify-each: the same pipeline is NOT caught without it.
    const PipelineRun run =
        PipelineExecutor().run(parse_pipeline("selftest-unsound"), ring(3, 2));
    EXPECT_TRUE(run.reports[0].changed);
}

TEST(PipelineExecutor, VerifyHookFiresAndCanFailThePipeline) {
    ExecutorOptions options;
    options.verify_each = true;
    std::size_t calls = 0;
    options.verify_hook = [&calls](const Graph&, const PassReport&) { ++calls; };
    (void)PipelineExecutor(std::move(options)).run(parse_pipeline("selfloops,prune"),
                                                   multirate());
    EXPECT_EQ(calls, 2u);

    ExecutorOptions failing;
    failing.verify_each = true;
    failing.verify_hook = [](const Graph&, const PassReport& report) {
        throw PipelineVerificationError("vetoed after " + report.invocation);
    };
    EXPECT_THROW((void)PipelineExecutor(std::move(failing))
                     .run(parse_pipeline("selfloops"), multirate()),
                 PipelineVerificationError);
}

// ---- executor: budget slicing -----------------------------------------

TEST(PipelineExecutor, BudgetAbortsAndAccountsPerPass) {
    ExecutorOptions tiny;
    tiny.budget.max_steps = 3;
    EXPECT_THROW((void)PipelineExecutor(std::move(tiny))
                     .run(parse_pipeline("selfloops,hsdf-reduced"), ring(40, 1)),
                 BudgetExceeded);

    ExecutorOptions roomy;
    roomy.budget.max_steps = 1u << 22;
    const PipelineRun run =
        PipelineExecutor(std::move(roomy))
            .run(parse_pipeline("selfloops,hsdf-reduced"), ring(40, 1));
    EXPECT_GT(run.total.steps, 0u);
    std::uint64_t summed = 0;
    for (const PassReport& report : run.reports) {
        summed += report.used.steps;
    }
    EXPECT_EQ(summed, run.total.steps);
}

TEST(PipelineExecutor, AfterPassHookSeesEveryStep) {
    std::vector<std::string> seen;
    ExecutorOptions options;
    options.after_pass = [&seen](const Graph&, const PassReport& report) {
        seen.push_back(report.invocation);
    };
    (void)PipelineExecutor(std::move(options))
        .run(parse_pipeline("selfloops,prune,unfold(2)"), ring(3, 1));
    EXPECT_EQ(seen, (std::vector<std::string>{"selfloops", "prune", "unfold(2)"}));
}

}  // namespace
}  // namespace sdf
