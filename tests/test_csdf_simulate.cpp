// Unit + property tests for csdf/simulate.hpp, cross-validating the
// concrete CSDF execution against the symbolic matrix.
#include "csdf/simulate.hpp"

#include <gtest/gtest.h>

#include <random>

#include "base/errors.hpp"
#include "csdf/analysis.hpp"
#include "gen/random_sdf.hpp"
#include "sdf/simulate.hpp"

namespace sdf {
namespace {

TEST(CsdfSimulate, ThreePhaseSelfLoop) {
    CsdfGraph g("loop");
    const CsdfActorId a = g.add_actor("a", {3, 1, 2});
    g.add_channel(a, a, {1, 1, 1}, {1, 1, 1}, 1);
    const CsdfFiniteRun run = csdf_simulate_iterations(g, 1);
    EXPECT_EQ(run.makespan, 6);  // strictly sequential phases
    EXPECT_EQ(run.phase_firings[a], 3);
    EXPECT_EQ(csdf_simulate_iterations(g, 3).makespan, 18);
}

TEST(CsdfSimulate, PhasesMayOverlapWithoutSelfLoop) {
    // Producer phases (2, 4) both start at t=0 (three feedback tokens
    // available); consumer needs all three tokens: starts at 4, ends at 9.
    CsdfGraph g("two_phase");
    const CsdfActorId a = g.add_actor("a", {2, 4});
    const CsdfActorId b = g.add_actor("b", {5});
    g.add_channel(a, b, {1, 2}, {3}, 0);
    g.add_channel(b, a, {3}, {1, 2}, 3);
    const CsdfFiniteRun run = csdf_simulate_iterations(g, 1);
    EXPECT_EQ(run.makespan, 9);
    EXPECT_EQ(run.phase_firings[a], 2);
    EXPECT_EQ(run.phase_firings[b], 1);
}

TEST(CsdfSimulate, ZeroIterations) {
    CsdfGraph g("empty_run");
    const CsdfActorId a = g.add_actor("a", {1});
    g.add_channel(a, a, {1}, {1}, 1);
    const CsdfFiniteRun run = csdf_simulate_iterations(g, 0);
    EXPECT_EQ(run.makespan, 0);
    EXPECT_EQ(run.phase_firings[a], 0);
    EXPECT_THROW(csdf_simulate_iterations(g, -1), InvalidGraphError);
}

TEST(CsdfSimulate, DeadlockDetected) {
    CsdfGraph g("dead");
    const CsdfActorId a = g.add_actor("a", {1, 1});
    const CsdfActorId b = g.add_actor("b", {1, 1});
    g.add_channel(a, b, {1, 2}, {2, 0}, 0);  // b's first phase needs 2, gets 1
    g.add_channel(b, a, {2, 0}, {1, 2}, 1);
    EXPECT_THROW(csdf_simulate_iterations(g, 1), Error);
}

TEST(CsdfSimulate, SinglePhaseEmbeddingMatchesSdfSimulator) {
    std::mt19937 rng(5);
    for (int trial = 0; trial < 30; ++trial) {
        const Graph g = random_sdf(rng);
        const CsdfGraph embedded = csdf_from_sdf(g);
        for (const Int k : {1, 2}) {
            EXPECT_EQ(csdf_simulate_iterations(embedded, k).makespan,
                      simulate_iterations(g, k).makespan)
                << "trial " << trial << " k=" << k;
        }
    }
}

class CsdfSimulateProperty : public ::testing::TestWithParam<int> {};

TEST_P(CsdfSimulateProperty, MakespanEqualsMatrixPowerMaxEntry) {
    // Split a random HSDF into phases (all-ones self-loops keep every
    // actor's last completion in a final token); the makespan of k
    // iterations must equal the largest entry of the k-th matrix power.
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    const Graph g = random_hsdf(rng);
    std::uniform_int_distribution<Int> phases_of(1, 3);
    CsdfGraph split(g.name() + "_split");
    std::vector<Int> io_phase(g.actor_count());
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        const Int phases = phases_of(rng);
        std::vector<Int> times(static_cast<std::size_t>(phases), 0);
        times[static_cast<std::size_t>(rng() % phases)] = g.actor(a).execution_time;
        io_phase[a] = static_cast<Int>(rng() % phases);
        split.add_actor(g.actor(a).name, times);
        const std::vector<Int> ones(static_cast<std::size_t>(phases), 1);
        split.add_channel(a, a, ones, ones, 1);
    }
    for (const Channel& ch : g.channels()) {
        if (ch.is_self_loop()) {
            continue;  // replaced by the all-ones self-loop above
        }
        std::vector<Int> prod(split.actor(ch.src).phase_count(), 0);
        std::vector<Int> cons(split.actor(ch.dst).phase_count(), 0);
        prod[static_cast<std::size_t>(io_phase[ch.src])] = 1;
        cons[static_cast<std::size_t>(io_phase[ch.dst])] = 1;
        split.add_channel(ch.src, ch.dst, prod, cons, ch.initial_tokens);
    }
    if (!csdf_is_live(split)) {
        return;
    }
    const CsdfSymbolicIteration it = csdf_symbolic_iteration(split);
    MpMatrix power = it.matrix;
    for (const Int k : {1, 2, 3}) {
        const CsdfFiniteRun run = csdf_simulate_iterations(split, k);
        ASSERT_TRUE(power.max_entry().is_finite());
        EXPECT_EQ(run.makespan, power.max_entry().value()) << "k=" << k;
        power = power.multiply(it.matrix);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsdfSimulateProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace sdf
