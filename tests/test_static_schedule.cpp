// Unit + property tests for analysis/static_schedule.hpp.
#include "analysis/static_schedule.hpp"

#include <gtest/gtest.h>

#include <random>

#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "gen/random_sdf.hpp"
#include "gen/regular.hpp"
#include "transform/hsdf_reduced.hpp"

namespace sdf {
namespace {

TEST(StaticSchedule, RingScheduleIsTightAndAdmissible) {
    Graph g;
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 4);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 1);
    const PeriodicSchedule schedule = periodic_schedule(g);
    EXPECT_EQ(schedule.period, Rational(7));
    EXPECT_TRUE(is_admissible_schedule(g, schedule));
    // a at 0, b right after a.
    EXPECT_EQ(schedule.start[a], Rational(0));
    EXPECT_EQ(schedule.start[b], Rational(3));
}

TEST(StaticSchedule, FractionalPeriodsWork) {
    // Two tokens on the cycle: period 7/2, offsets become fractional.
    Graph g;
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 4);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 2);
    const PeriodicSchedule schedule = periodic_schedule(g);
    EXPECT_EQ(schedule.period, Rational(7, 2));
    EXPECT_TRUE(is_admissible_schedule(g, schedule));
}

TEST(StaticSchedule, Figure1Schedule) {
    const Graph g = figure1_graph(6);
    const PeriodicSchedule schedule = periodic_schedule(g);
    EXPECT_EQ(schedule.period, Rational(23));
    EXPECT_TRUE(is_admissible_schedule(g, schedule));
    // Offsets are non-negative and at least one is zero.
    bool has_zero = false;
    for (const Rational& s : schedule.start) {
        EXPECT_GE(s, Rational(0));
        has_zero = has_zero || s == Rational(0);
    }
    EXPECT_TRUE(has_zero);
}

TEST(StaticSchedule, RejectsBadInputs) {
    Graph rated;
    const ActorId a = rated.add_actor("a", 1);
    const ActorId b = rated.add_actor("b", 1);
    rated.add_channel(a, b, 2, 1, 0);
    EXPECT_THROW(periodic_schedule(rated), InvalidGraphError);  // not HSDF

    Graph dead;
    const ActorId c = dead.add_actor("c", 1);
    const ActorId d = dead.add_actor("d", 1);
    dead.add_channel(c, d, 0);
    dead.add_channel(d, c, 0);
    EXPECT_THROW(periodic_schedule(dead), Error);  // deadlock

    Graph open;
    const ActorId e = open.add_actor("e", 1);
    const ActorId f = open.add_actor("f", 1);
    open.add_channel(e, f, 0);
    EXPECT_THROW(periodic_schedule(open), Error);  // unbounded
}

TEST(StaticSchedule, ScheduleLatencyAlongPipeline) {
    Graph g;
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 4);
    const ActorId c = g.add_actor("c", 5);
    g.add_channel(a, b, 0);
    g.add_channel(b, c, 0);
    g.add_channel(c, a, 1);
    const PeriodicSchedule schedule = periodic_schedule(g);
    EXPECT_EQ(schedule_latency(g, schedule, a, c), Rational(12));  // 3 + 4 + 5
    EXPECT_EQ(schedule_latency(g, schedule, a, a), Rational(3));
    EXPECT_THROW(schedule_latency(g, schedule, a, 9), InvalidGraphError);
}

TEST(StaticSchedule, AdmissibilityCheckerCatchesViolations) {
    Graph g;
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 4);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 1);
    PeriodicSchedule schedule = periodic_schedule(g);
    schedule.start[b] = Rational(1);  // too early: a finishes at 3
    EXPECT_FALSE(is_admissible_schedule(g, schedule));
    schedule.start.pop_back();
    EXPECT_FALSE(is_admissible_schedule(g, schedule));
}

class ScheduleProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleProperty, RandomHsdfSchedulesAreAdmissibleAtTheExactPeriod) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    const Graph g = random_hsdf(rng);
    const ThroughputResult t = throughput_symbolic(g);
    if (!t.is_finite()) {
        return;
    }
    const PeriodicSchedule schedule = periodic_schedule(g);
    EXPECT_EQ(schedule.period, t.period);
    EXPECT_TRUE(is_admissible_schedule(g, schedule));
    // Minimality: shrinking the period ever so slightly must break
    // admissibility somewhere (the critical cycle becomes infeasible).
    PeriodicSchedule squeezed = schedule;
    squeezed.period = schedule.period * Rational(99, 100);
    // Recompute offsets for the squeezed period would fail; with the same
    // offsets the critical-cycle constraint chain must now be violated.
    EXPECT_FALSE(is_admissible_schedule(g, squeezed));
}

TEST_P(ScheduleProperty, ReducedConversionsAreSchedulable) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 700);
    const Graph g = random_sdf(rng);
    const ThroughputResult t = throughput_symbolic(g);
    if (!t.is_finite() || t.period.is_zero()) {
        return;
    }
    const Graph reduced = to_hsdf_reduced(g);
    const PeriodicSchedule schedule = periodic_schedule(reduced);
    EXPECT_EQ(schedule.period, t.period);
    EXPECT_TRUE(is_admissible_schedule(reduced, schedule));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace sdf
