// Regression tests for bugs found by `sdfred fuzz` and minimised by its
// shrinker.  The graph-rebuilding tests below started life as the
// harness's auto-generated artifacts (fuzz-failures/*-regression.cpp) and
// were adopted here after the fixes; keep them forever.
#include <gtest/gtest.h>

#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "maxplus/matrix.hpp"
#include "transform/symbolic.hpp"
#include "verify/oracles.hpp"

namespace sdf {
namespace {

// Found at fuzz seed 1712: a component whose only cycle carries no tokens
// (r2's empty self-loop) next to a live token-carrying cycle.  The symbolic
// and classic-HSDF routes reported `deadlocked` — no complete iteration can
// ever finish — while throughput_simulation reported `finite` because the
// live component kept the state recurrence going.  Fixed by treating an
// actor with zero firings in the recurrent window as permanently starved.
TEST(FuzzRegression, ThroughputRoutesSeed1712PartialDeadlock) {
    Graph g("repro_throughput_routes_seed1712");
    const ActorId r0 = g.add_actor("r0", 0);
    const ActorId r1 = g.add_actor("r1", 0);
    const ActorId r2 = g.add_actor("r2", 0);
    const ActorId r3 = g.add_actor("r3", 0);
    const ActorId r4 = g.add_actor("r4", 1);
    g.add_channel(r0, r1, 1, 1, 0);
    g.add_channel(r1, r3, 1, 1, 0);
    g.add_channel(r2, r2, 1, 1, 0);
    g.add_channel(r3, r4, 1, 1, 0);
    g.add_channel(r4, r0, 1, 1, 1);
    const Oracle* oracle = find_oracle("throughput-routes");
    ASSERT_NE(oracle, nullptr);
    const Verdict verdict = run_oracle(*oracle, g);
    EXPECT_NE(verdict.status, VerdictStatus::fail) << verdict.describe();
    EXPECT_EQ(throughput_simulation(g).outcome, ThroughputOutcome::deadlocked);
    EXPECT_EQ(throughput_symbolic(g).outcome, ThroughputOutcome::deadlocked);
}

// Found at fuzz seed 2935: two live but disconnected components running at
// different self-timed rates (the isolated s3 fires every 3 time units, the
// critical cycle every 9).  throughput_simulation recovered λ from the
// FIRST firing actor and returned raw simulation rates, so its per-actor
// result disagreed with the q(a)/λ convention of routes 1 and 2.  Fixed by
// recovering λ as the maximum over actors (only the critical component
// witnesses the global iteration period).
TEST(FuzzRegression, ThroughputRoutesSeed2935DisconnectedComponents) {
    Graph g("repro_throughput_routes_seed2935");
    const ActorId s0 = g.add_actor("s0", 9);
    const ActorId s1 = g.add_actor("s1", 0);
    const ActorId s2 = g.add_actor("s2", 1);
    const ActorId s3 = g.add_actor("s3", 3);
    const ActorId s4 = g.add_actor("s4", 1);
    for (const ActorId a : {s0, s1, s2, s3, s4}) {
        g.add_channel(a, a, 1, 1, 1);
    }
    g.add_channel(s0, s1, 1, 1, 0);
    g.add_channel(s1, s2, 1, 1, 2);
    g.add_channel(s2, s0, 1, 1, 0);
    g.add_channel(s1, s4, 1, 1, 0);
    g.add_channel(s4, s0, 1, 1, 2);
    const Oracle* oracle = find_oracle("throughput-routes");
    ASSERT_NE(oracle, nullptr);
    const Verdict verdict = run_oracle(*oracle, g);
    EXPECT_NE(verdict.status, VerdictStatus::fail) << verdict.describe();
    const ThroughputResult simulated = throughput_simulation(g);
    const ThroughputResult symbolic = throughput_symbolic(g);
    ASSERT_EQ(simulated.outcome, ThroughputOutcome::finite);
    EXPECT_EQ(simulated.period, symbolic.period);
    EXPECT_EQ(simulated.per_actor, symbolic.per_actor);
    EXPECT_EQ(symbolic.period, Rational(9));
}

// Found by byte-mutation of the bundled overflow stress model: a graph
// carrying ~1e12 initial tokens sent symbolic_iteration into minutes of
// allocation churn towards a multi-terabyte dense matrix.  The entry point
// now refuses with a typed error before allocating anything.
TEST(FuzzRegression, SymbolicIterationRefusesAbsurdTokenCounts) {
    Graph g("overflowish");
    const ActorId a = g.add_actor("a", 7);
    const ActorId b = g.add_actor("b", 11);
    g.add_channel(a, a, 1, 1, 1);
    g.add_channel(a, b, 1000003, 1000033, 0);
    g.add_channel(b, a, 1000033, 1000003, 1000036000099);
    EXPECT_THROW(symbolic_iteration(g), Error);
    EXPECT_THROW(throughput_symbolic(g), Error);
}

// Companion hardening: an unchecked rows*cols in the MpMatrix constructor
// wraps for ~1e12-token graphs and would allocate a too-small buffer (every
// set() an out-of-bounds write).  The constructor now throws the typed
// arithmetic error instead.
TEST(FuzzRegression, MatrixDimensionOverflowIsTyped) {
    const std::size_t big = static_cast<std::size_t>(1) << 33;
    EXPECT_THROW(MpMatrix(big, big), ArithmeticError);
}

}  // namespace
}  // namespace sdf
