// End-to-end tests of the differential fuzzing harness (`sdfred fuzz`):
// clean runs over the production registry, the fault-injection self-test,
// artifact generation, and determinism of the whole pipeline in the seed.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/errors.hpp"
#include "io/text.hpp"
#include "verify/fuzz.hpp"

namespace sdf {
namespace {

namespace fs = std::filesystem;

/// Temp directory that cleans up after the test.
struct TempDir {
    fs::path path;
    explicit TempDir(const std::string& tag)
        : path(fs::temp_directory_path() / ("sdfred-fuzztest-" + tag)) {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

TEST(Fuzz, SmallRunOverAllOraclesIsClean) {
    FuzzOptions options;
    options.seed = 1;
    options.iterations = 150;
    options.write_failures = false;
    const FuzzReport report = run_fuzz(options);
    EXPECT_TRUE(report.clean()) << report.failures.size() << " failures; first: "
                                << (report.failures.empty()
                                        ? ""
                                        : report.failures[0].verdict.describe());
    EXPECT_EQ(report.iterations, 150u);
    EXPECT_EQ(report.checks, 150u * oracle_registry().size());
    EXPECT_GT(report.passes, 0u);
    // The mutation fuzzer must reach out-of-domain graphs — a run with no
    // rejects is not exercising the graceful-degradation contract.
    EXPECT_GT(report.rejects, 0u);
}

TEST(Fuzz, ReportsAreDeterministicInTheSeed) {
    FuzzOptions options;
    options.seed = 77;
    options.iterations = 60;
    options.write_failures = false;
    const FuzzReport first = run_fuzz(options);
    const FuzzReport second = run_fuzz(options);
    EXPECT_EQ(first.passes, second.passes);
    EXPECT_EQ(first.skips, second.skips);
    EXPECT_EQ(first.rejects, second.rejects);
    EXPECT_EQ(first.by_oracle, second.by_oracle);
}

TEST(Fuzz, UnknownOracleIdIsATypedError) {
    FuzzOptions options;
    options.oracles = {"no-such-oracle"};
    EXPECT_THROW(run_fuzz(options), Error);
}

TEST(Fuzz, SelfTestFindsAndShrinksInjectedBug) {
    // The acceptance criterion of the harness: a planted off-by-one in a
    // copied oracle must be detected and delta-debugged to <= 4 actors.
    TempDir dir("selftest");
    FuzzOptions options;
    options.seed = 1;
    options.iterations = 200;
    options.failures_dir = (dir.path / "failures").string();
    const SelfTestReport self_test = run_fuzz_self_test(options);
    EXPECT_TRUE(self_test.bug_found);
    EXPECT_TRUE(self_test.shrunk_minimal);
    EXPECT_LE(self_test.shrunk_actors, 4u);
    ASSERT_FALSE(self_test.report.failures.empty());
    const FuzzFailure& failure = self_test.report.failures.front();
    // Artifacts: a loadable model and a ready-to-paste regression test.
    EXPECT_TRUE(fs::exists(failure.model_path));
    EXPECT_TRUE(fs::exists(failure.test_path));
}

TEST(Fuzz, FailureArtifactsRoundTrip) {
    TempDir dir("roundtrip");
    FuzzOptions options;
    options.seed = 1;
    options.iterations = 50;
    options.failures_dir = (dir.path / "failures").string();
    const SelfTestReport self_test = run_fuzz_self_test(options);
    ASSERT_TRUE(self_test.bug_found);
    const FuzzFailure& failure = self_test.report.failures.front();
    // The written model file loads back into a graph that still trips the
    // same oracle — a corpus failure is a complete, portable bug report.
    const Graph reloaded = read_text_file(failure.model_path);
    EXPECT_TRUE(run_oracle(self_test_oracle(), reloaded).failed());
    std::ifstream test_source(failure.test_path);
    std::stringstream buffer;
    buffer << test_source.rdbuf();
    EXPECT_NE(buffer.str().find("TEST(FuzzRegression,"), std::string::npos);
    EXPECT_NE(buffer.str().find("find_oracle"), std::string::npos);
}

TEST(Fuzz, CorpusEntriesFeedBackIntoRuns) {
    TempDir dir("corpus");
    FuzzOptions options;
    options.seed = 5;
    options.iterations = 80;
    options.corpus_dir = (dir.path / "corpus").string();
    options.write_failures = false;
    const FuzzReport first = run_fuzz(options);
    EXPECT_TRUE(first.clean());
    // The run writes one entry per novel (oracle, status) signature...
    std::size_t entries = 0;
    for (const auto& entry : fs::directory_iterator(options.corpus_dir)) {
        entries += entry.path().extension() == ".sdf" ? 1 : 0;
    }
    EXPECT_GT(entries, 0u);
    // ...and a second run with the populated corpus still resolves cleanly.
    const FuzzReport second = run_fuzz(options);
    EXPECT_TRUE(second.clean());
}

TEST(Fuzz, RegressionTestSourceRebuildsTheGraph) {
    Graph g("repro");
    const ActorId a = g.add_actor("a", 1);
    g.add_channel(a, a, 1, 1, 1);
    const std::string source =
        regression_test_source(g, "throughput-routes", "seed42");
    EXPECT_NE(source.find("TEST(FuzzRegression, ThroughputRoutesSeed42)"),
              std::string::npos);
    EXPECT_NE(source.find("g.add_actor(\"a\", 1)"), std::string::npos);
    EXPECT_NE(source.find("g.add_channel(a0, a0, 1, 1, 1)"), std::string::npos);
    EXPECT_NE(source.find("find_oracle(\"throughput-routes\")"), std::string::npos);
}

}  // namespace
}  // namespace sdf
