// Unit + property tests for maxplus/closure.hpp.
#include "maxplus/closure.hpp"

#include <gtest/gtest.h>

#include <random>

#include "base/errors.hpp"
#include "maxplus/eigen.hpp"

namespace sdf {
namespace {

TEST(Closure, DiagonalGetsTheEmptyWalk) {
    MpMatrix m(2, 2);
    m.set(0, 1, MpValue(-3));
    const auto star = mp_closure(m);
    ASSERT_TRUE(star.has_value());
    EXPECT_EQ(star->at(0, 0), MpValue(0));
    EXPECT_EQ(star->at(1, 1), MpValue(0));
    EXPECT_EQ(star->at(0, 1), MpValue(-3));
    EXPECT_TRUE(star->at(1, 0).is_minus_infinity());
}

TEST(Closure, PicksTheLongestWalk) {
    // 0 -> 1 -> 2 with a worse direct edge 0 -> 2.
    MpMatrix m(3, 3);
    m.set(0, 1, MpValue(-1));
    m.set(1, 2, MpValue(-1));
    m.set(0, 2, MpValue(-5));
    const auto star = mp_closure(m);
    ASSERT_TRUE(star.has_value());
    EXPECT_EQ(star->at(0, 2), MpValue(-2));
}

TEST(Closure, ZeroCyclesAreFine) {
    MpMatrix m(2, 2);
    m.set(0, 1, MpValue(4));
    m.set(1, 0, MpValue(-4));
    const auto star = mp_closure(m);
    ASSERT_TRUE(star.has_value());
    EXPECT_EQ(star->at(0, 1), MpValue(4));
    EXPECT_EQ(star->at(0, 0), MpValue(0));
}

TEST(Closure, DivergesOnPositiveCycle) {
    MpMatrix m(2, 2);
    m.set(0, 1, MpValue(3));
    m.set(1, 0, MpValue(-2));  // cycle weight +1
    EXPECT_TRUE(has_positive_weight_cycle(m));
    EXPECT_FALSE(mp_closure(m).has_value());
    EXPECT_THROW(mp_closure(MpMatrix(2, 3)), ArithmeticError);
}

TEST(Closure, StarIsIdempotent) {
    std::mt19937 rng(3);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 2 + rng() % 4;
        MpMatrix m(n, n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                if (rng() % 2 == 0) {
                    m.set(i, j, MpValue(-static_cast<Int>(rng() % 8)));
                }
            }
        }
        const auto star = mp_closure(m);
        ASSERT_TRUE(star.has_value());  // all weights <= 0: no positive cycle
        const auto star_star = mp_closure(*star);
        ASSERT_TRUE(star_star.has_value());
        EXPECT_EQ(*star_star, *star);
        // A* absorbs A: A* ⊗ A* == A*.
        EXPECT_EQ(star->multiply(*star), *star);
    }
}

TEST(Closure, CriticalColumnsOfReweightedMatrixAreEigenvectors) {
    // For an irreducible matrix G with eigenvalue λ, (G − λ)* has the
    // eigenvectors of G as its critical columns; verify the connection for
    // a hand case by checking that the eigen pair validates.
    MpMatrix g(2, 2);
    g.set(0, 1, MpValue(3));
    g.set(1, 0, MpValue(5));
    const MpEigen e = mp_eigen(g);
    EXPECT_TRUE(is_eigenpair(g, e));
    // λ = 4; reweighting by −λ makes the critical cycle zero, so the
    // closure exists (integer matrix entries shifted by a rational λ are
    // handled by scaling: use 2G − 2λ to stay integral).
    MpMatrix scaled(2, 2);
    scaled.set(0, 1, MpValue(2 * 3 - 8));
    scaled.set(1, 0, MpValue(2 * 5 - 8));
    EXPECT_TRUE(mp_closure(scaled).has_value());
}

}  // namespace
}  // namespace sdf
