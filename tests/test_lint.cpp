// Tests for the lint subsystem (src/lint): rule registry invariants,
// individual rules on constructed graphs, golden-file JSON diagnostics on
// the deliberately broken models under data/bad/, and the property that
// every shipped data file lints without errors.  SDFRED_DATA_DIR and
// SDFRED_DOCS_DIR are injected by the build system.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "io/text.hpp"
#include "io/xml.hpp"
#include "lint/lint.hpp"
#include "lint/registry.hpp"
#include "lint/render.hpp"

namespace sdf {
namespace {

const std::string kDataDir = SDFRED_DATA_DIR;
const std::string kDocsDir = SDFRED_DOCS_DIR;

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

bool has_rule(const LintReport& report, const std::string& id) {
    for (const Diagnostic& d : report.diagnostics) {
        if (d.rule == id) {
            return true;
        }
    }
    return false;
}

TEST(LintRegistry, AtLeastTwelveRulesWithUniqueStableIds) {
    const std::vector<Rule>& rules = lint_rules();
    EXPECT_GE(rules.size(), 12u);
    std::set<std::string> ids;
    for (const Rule& rule : rules) {
        EXPECT_EQ(rule.id.size(), 6u) << rule.id;
        EXPECT_EQ(rule.id.substr(0, 3), "SDF") << rule.id;
        EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate id " << rule.id;
        EXPECT_FALSE(rule.title.empty()) << rule.id;
        EXPECT_FALSE(rule.summary.empty()) << rule.id;
        EXPECT_EQ(find_rule(rule.id), &rule);
    }
    EXPECT_EQ(find_rule("SDF999"), nullptr);
}

TEST(LintRegistry, RuleTableMatchesDocs) {
    const std::string docs = slurp(kDocsDir + "/LINT_RULES.md");
    for (const Rule& rule : lint_rules()) {
        EXPECT_NE(docs.find(rule.id), std::string::npos)
            << rule.id << " missing from docs/LINT_RULES.md";
        EXPECT_NE(docs.find(rule.title), std::string::npos)
            << rule.title << " missing from docs/LINT_RULES.md";
    }
}

TEST(LintRules, EmptyGraphIsAnError) {
    const LintReport report = lint_graph(Graph("empty"));
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].rule, "SDF001");
    EXPECT_EQ(report.diagnostics[0].severity, Severity::error);
    EXPECT_EQ(report.worst(), Severity::error);
}

TEST(LintRules, CleanRingHasNoFindingsAboveNote) {
    Graph ring;
    const ActorId a = ring.add_actor("a", 3);
    const ActorId b = ring.add_actor("b", 4);
    ring.add_channel(a, b, 0);
    ring.add_channel(b, a, 1);
    const LintReport report = lint_graph(ring);
    EXPECT_FALSE(report.has_at_least(Severity::warning)) << render_text(report, "");
    EXPECT_TRUE(has_rule(report, "SDF011"));  // no self-loops: note only
}

TEST(LintRules, ActorOffCycleAndDisconnected) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 1, 1, 0);  // chain, no feedback
    g.add_actor("lonely", 1);      // second component, no channels
    const LintReport report = lint_graph(g);
    EXPECT_TRUE(has_rule(report, "SDF004"));
    EXPECT_TRUE(has_rule(report, "SDF005"));
    EXPECT_TRUE(has_rule(report, "SDF006"));
}

TEST(LintRules, ZeroExecutionTimeOnlyFlaggedInTimedGraphs) {
    Graph untimed;
    const ActorId a = untimed.add_actor("a", 0);
    untimed.add_channel(a, a, 1, 1, 1);
    EXPECT_FALSE(has_rule(lint_graph(untimed), "SDF007"));

    Graph timed;
    const ActorId t0 = timed.add_actor("t0", 0);
    const ActorId t1 = timed.add_actor("t1", 5);
    timed.add_channel(t0, t1, 1, 1, 0);
    timed.add_channel(t1, t0, 1, 1, 1);
    EXPECT_TRUE(has_rule(lint_graph(timed), "SDF007"));
}

TEST(LintRules, RedundantParallelChannel) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 1, 1, 0);
    g.add_channel(a, b, 1, 1, 3);  // dominated: equal rates, more tokens
    g.add_channel(b, a, 1, 1, 1);
    const LintReport report = lint_graph(g);
    EXPECT_TRUE(has_rule(report, "SDF015"));
}

TEST(LintRules, InvalidNameDerivedAbstraction) {
    // "fir1"/"fir2" suggest a group, but unequal repetition entries violate
    // Definition 3 (same shape as the shipped samplerate benchmark).
    Graph g;
    const ActorId f1 = g.add_actor("fir1", 1);
    const ActorId f2 = g.add_actor("fir2", 1);
    g.add_channel(f1, f2, 2, 3, 6);
    g.add_channel(f2, f1, 3, 2, 6);
    const LintReport report = lint_graph(g);
    EXPECT_TRUE(has_rule(report, "SDF014"));
    EXPECT_FALSE(report.has_at_least(Severity::error)) << render_text(report, "");
}

TEST(LintRules, RuleSelectionFiltersFindings) {
    Graph dead;
    const ActorId a = dead.add_actor("a", 1);
    const ActorId b = dead.add_actor("b", 1);
    dead.add_channel(a, b, 0);
    dead.add_channel(b, a, 0);
    LintOptions only_cycle;
    only_cycle.rules = {"SDF016"};
    const LintReport report = lint_graph(dead, nullptr, only_cycle);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].rule, "SDF016");
}

TEST(LintRules, ThresholdsAreTunable) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 5, 1, 0);
    g.add_channel(b, a, 1, 5, 5);
    LintOptions strict;
    strict.max_hsdf_actors = 4;  // iteration has 6 firings
    strict.overflow_limit = 4;   // 5 tokens per iteration on each channel
    const LintReport report = lint_graph(g, nullptr, strict);
    EXPECT_TRUE(has_rule(report, "SDF008"));
    EXPECT_TRUE(has_rule(report, "SDF009"));  // N(N+2) = 35 > 4
    EXPECT_TRUE(has_rule(report, "SDF010"));
}

TEST(LintRender, TextUsesCompilerConvention) {
    SourceMap map;
    Graph dead;
    std::ifstream in(kDataDir + "/bad/deadlocked.sdf");
    ASSERT_TRUE(in.is_open());
    dead = read_text(in, &map);
    const LintReport report = lint_graph(dead, &map);
    const std::string text = render_text(report, "deadlocked.sdf");
    EXPECT_NE(text.find("deadlocked.sdf:6:1: error:"), std::string::npos) << text;
    EXPECT_NE(text.find("[SDF003]"), std::string::npos) << text;
    EXPECT_NE(text.find("hint:"), std::string::npos) << text;
}

TEST(LintRender, EmptyReportRendersEmptyJson) {
    const std::string json = render_json(LintReport{}, "f.sdf", "g");
    EXPECT_NE(json.find("\"diagnostics\": []"), std::string::npos) << json;
    EXPECT_NE(json.find("\"counts\": {\"error\": 0, \"warning\": 0, \"note\": 0}"),
              std::string::npos)
        << json;
}

// Golden-file tests: the JSON diagnostics for every model under data/bad/
// are part of the contract (rule ids, severities, line numbers, order).
class LintGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(LintGolden, JsonDiagnosticsMatchGoldenFile) {
    const std::string name = GetParam();
    const std::string path = kDataDir + "/bad/" + name;
    SourceMap map;
    Graph graph;
    if (path.size() > 4 && path.substr(path.size() - 4) == ".xml") {
        graph = read_xml_file(path, &map);
    } else {
        graph = read_text_file(path, &map);
    }
    const LintReport report = lint_graph(graph, &map);
    // Goldens store the basename so the test is location-independent.
    const std::string json = render_json(report, name, graph.name());
    const std::string golden =
        slurp(kDataDir + "/bad/" + name.substr(0, name.rfind('.')) + ".expected.json");
    EXPECT_EQ(json, golden);
}

INSTANTIATE_TEST_SUITE_P(BadModels, LintGolden,
                         ::testing::Values("inconsistent.xml", "deadlocked.sdf",
                                           "overflow.sdf", "starved_selfloop.sdf"));

TEST(LintGoldenCoverage, BadModelsTriggerTheirIntendedRules) {
    const auto lint_file = [](const std::string& path) {
        SourceMap map;
        const Graph graph = path.size() > 4 && path.substr(path.size() - 4) == ".xml"
                                ? read_xml_file(path, &map)
                                : read_text_file(path, &map);
        return lint_graph(graph, &map);
    };
    EXPECT_TRUE(has_rule(lint_file(kDataDir + "/bad/inconsistent.xml"), "SDF002"));
    EXPECT_TRUE(has_rule(lint_file(kDataDir + "/bad/deadlocked.sdf"), "SDF003"));
    EXPECT_TRUE(has_rule(lint_file(kDataDir + "/bad/deadlocked.sdf"), "SDF016"));
    const LintReport overflow = lint_file(kDataDir + "/bad/overflow.sdf");
    EXPECT_TRUE(has_rule(overflow, "SDF008"));
    EXPECT_TRUE(has_rule(overflow, "SDF009"));
    EXPECT_TRUE(has_rule(overflow, "SDF010"));
    EXPECT_TRUE(has_rule(lint_file(kDataDir + "/bad/starved_selfloop.sdf"), "SDF013"));
}

// Property: every shipped benchmark model lints without errors — the lint
// front door must never reject inputs the analyses accept.
TEST(LintProperty, AllShippedDataFilesLintWithoutErrors) {
    std::size_t checked = 0;
    for (const auto& entry : std::filesystem::directory_iterator(kDataDir)) {
        if (!entry.is_regular_file()) {
            continue;  // data/bad/ is deliberately broken and skipped
        }
        const std::string path = entry.path().string();
        const std::string ext = entry.path().extension().string();
        if (ext != ".xml" && ext != ".sdf") {
            continue;
        }
        SourceMap map;
        const Graph graph =
            ext == ".xml" ? read_xml_file(path, &map) : read_text_file(path, &map);
        const LintReport report = lint_graph(graph, &map);
        EXPECT_FALSE(report.has_at_least(Severity::error))
            << path << "\n" << render_text(report, path);
        ++checked;
    }
    EXPECT_GE(checked, 10u);  // all shipped models were actually visited
}

}  // namespace
}  // namespace sdf
