// test_simd_kernels — the SoA/SIMD kernel layer (PERFORMANCE.md):
// cpudispatch tier selection, the axpy_max primitive per compiled tier, and
// differential sweeps holding every supported ISA tier bit-identical to
// multiply_naive on adversarial inputs (−∞-heavy, near-INT64_MAX fallback,
// empty supports), plus the sentinel-aliasing guard of MpMatrix::set.
#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <vector>

#include "base/cpudispatch.hpp"
#include "base/errors.hpp"
#include "base/portable_rng.hpp"
#include "maxplus/closure.hpp"
#include "maxplus/kernels.hpp"
#include "maxplus/matrix.hpp"
#include "maxplus/mcm.hpp"

namespace sdf {
namespace {

constexpr Int kIntMax = std::numeric_limits<Int>::max();

/// Restores the detected tier when a test that switches tiers exits.
class IsaTierGuard {
public:
    IsaTierGuard() : previous_(active_isa_tier()) {}
    ~IsaTierGuard() { set_active_isa_tier(previous_); }
    IsaTierGuard(const IsaTierGuard&) = delete;
    IsaTierGuard& operator=(const IsaTierGuard&) = delete;

private:
    IsaTier previous_;
};

TEST(CpuDispatch, TierNamesRoundTrip) {
    for (const IsaTier tier :
         {IsaTier::scalar, IsaTier::avx2, IsaTier::avx512}) {
        EXPECT_EQ(parse_isa_tier(isa_tier_name(tier)), tier);
    }
    EXPECT_THROW(parse_isa_tier("sse2"), Error);
    EXPECT_THROW(parse_isa_tier(""), Error);
    EXPECT_THROW(parse_isa_tier("AVX2"), Error);  // names are lower-case
}

TEST(CpuDispatch, SupportedTiersAscendingAndStartWithScalar) {
    const auto& tiers = supported_isa_tiers();
    ASSERT_FALSE(tiers.empty());
    EXPECT_EQ(tiers.front(), IsaTier::scalar);
    for (std::size_t i = 1; i < tiers.size(); ++i) {
        EXPECT_LT(static_cast<int>(tiers[i - 1]), static_cast<int>(tiers[i]));
        EXPECT_TRUE(isa_tier_supported(tiers[i]));
    }
    EXPECT_TRUE(isa_tier_supported(IsaTier::scalar));
    EXPECT_LE(tiers.back(), detected_isa_tier());
}

TEST(CpuDispatch, SetActiveTierSwitchesAndRejectsUnsupported) {
    const IsaTierGuard guard;
    for (const IsaTier tier : supported_isa_tiers()) {
        set_active_isa_tier(tier);
        EXPECT_EQ(active_isa_tier(), tier);
        EXPECT_EQ(mp_kernels().tier, tier);
    }
    if (!isa_tier_supported(IsaTier::avx512)) {
        EXPECT_THROW(set_active_isa_tier(IsaTier::avx512), Error);
    }
}

TEST(CpuDispatch, CompiledTiersCarryKernels) {
    // Every tier the dispatcher may select must have a real table whose
    // tier tag matches — a null-stub TU being selected would be a CMake
    // definition / compiled-code mismatch.
    for (const IsaTier tier : supported_isa_tiers()) {
        const MpKernels* table = mp_kernels_for(tier);
        ASSERT_NE(table, nullptr) << isa_tier_name(tier);
        EXPECT_EQ(table->tier, tier);
        ASSERT_NE(table->axpy_max, nullptr) << isa_tier_name(tier);
    }
}

// ---- axpy_max per tier -------------------------------------------------

std::vector<Int> reference_axpy_max(std::vector<Int> out, const std::vector<Int>& row,
                                    Int a) {
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (row[i] == kMpRawMinusInf) {
            continue;
        }
        const Int sum = row[i] + a;
        if (sum > out[i]) {
            out[i] = sum;
        }
    }
    return out;
}

TEST(AxpyMax, EveryTierMatchesReferenceAcrossLengthsAndSentinels) {
    std::mt19937 rng(20260808);
    for (const IsaTier tier : supported_isa_tiers()) {
        const MpKernels* k = mp_kernels_for(tier);
        // Lengths straddle the 4-lane (AVX2) and 8-lane (AVX-512) widths
        // so both the vector body and the scalar tail are exercised.
        for (const std::size_t n : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 64u}) {
            std::vector<Int> row(n);
            std::vector<Int> out(n);
            for (std::size_t i = 0; i < n; ++i) {
                row[i] = draw_chance(rng, 0.4) ? kMpRawMinusInf
                                               : draw_int(rng, -1000, 1000);
                out[i] = draw_chance(rng, 0.4) ? kMpRawMinusInf
                                               : draw_int(rng, -1000, 1000);
            }
            const Int a = draw_int(rng, -1000, 1000);
            const std::vector<Int> expected = reference_axpy_max(out, row, a);
            std::vector<Int> actual = out;
            k->axpy_max(actual.data(), row.data(), a, n);
            EXPECT_EQ(actual, expected) << isa_tier_name(tier) << " n=" << n;
        }
    }
}

TEST(AxpyMax, ExactAliasingRelaxesRowInPlace) {
    for (const IsaTier tier : supported_isa_tiers()) {
        const MpKernels* k = mp_kernels_for(tier);
        std::vector<Int> lane{5, kMpRawMinusInf, -3, 0, 7, kMpRawMinusInf, 2, -9, 4};
        const std::vector<Int> expected = reference_axpy_max(lane, lane, 10);
        k->axpy_max(lane.data(), lane.data(), 10, lane.size());
        EXPECT_EQ(lane, expected) << isa_tier_name(tier);
    }
}

TEST(AxpyMax, AllMinusInfRowLeavesOutUntouched) {
    for (const IsaTier tier : supported_isa_tiers()) {
        const MpKernels* k = mp_kernels_for(tier);
        const std::vector<Int> row(13, kMpRawMinusInf);
        std::vector<Int> out{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, kMpRawMinusInf};
        const std::vector<Int> expected = out;
        k->axpy_max(out.data(), row.data(), 999, row.size());
        EXPECT_EQ(out, expected) << isa_tier_name(tier);
    }
}

// ---- differential multiply sweeps --------------------------------------

MpMatrix random_matrix(std::mt19937& rng, std::size_t rows, std::size_t cols,
                       double density, Int lo, Int hi) {
    MpMatrix m(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            if (draw_chance(rng, density)) {
                m.set(i, j, MpValue(draw_int(rng, lo, hi)));
            }
        }
    }
    return m;
}

void expect_all_products_agree(const MpMatrix& a, const MpMatrix& b,
                               const char* label) {
    const IsaTierGuard guard;
    const MpMatrix expected = a.multiply_naive(b);
    EXPECT_EQ(a.multiply_checked(b), expected) << label << " (checked)";
    for (const IsaTier tier : supported_isa_tiers()) {
        set_active_isa_tier(tier);
        EXPECT_EQ(a.multiply(b), expected) << label << " isa=" << isa_tier_name(tier);
    }
}

TEST(SimdMultiply, DenseMatricesAgreeOnEveryTier) {
    std::mt19937 rng(1);
    // 37 is deliberately not a multiple of any lane width.
    const MpMatrix a = random_matrix(rng, 37, 41, 0.9, -5000, 5000);
    const MpMatrix b = random_matrix(rng, 41, 29, 0.9, -5000, 5000);
    expect_all_products_agree(a, b, "dense rectangular");
}

TEST(SimdMultiply, MinusInfHeavyMatricesAgreeOnEveryTier) {
    std::mt19937 rng(2);
    const MpMatrix a = random_matrix(rng, 33, 33, 0.05, -100, 100);
    const MpMatrix b = random_matrix(rng, 33, 33, 0.05, -100, 100);
    expect_all_products_agree(a, b, "minus-inf heavy");
    // And the mixed case: a dense operand against a nearly-empty one, which
    // routes some B rows through the SIMD lane kernel and some through CSR.
    const MpMatrix c = random_matrix(rng, 33, 33, 0.95, -100, 100);
    expect_all_products_agree(c, b, "dense times sparse");
    expect_all_products_agree(b, c, "sparse times dense");
}

TEST(SimdMultiply, EmptySupportRowsAndColumnsAgree) {
    std::mt19937 rng(3);
    MpMatrix a = random_matrix(rng, 20, 20, 0.8, -50, 50);
    MpMatrix b = random_matrix(rng, 20, 20, 0.8, -50, 50);
    for (std::size_t j = 0; j < 20; ++j) {
        // Row 7 of A and row 12 of B entirely −∞ (set() with −∞ writes the
        // sentinel); every product entry they feed must stay −∞-consistent.
        a.set(7, j, MpValue::minus_infinity());
        b.set(12, j, MpValue::minus_infinity());
    }
    expect_all_products_agree(a, b, "empty-support rows");
    const MpMatrix zero(16, 16);  // all −∞
    expect_all_products_agree(zero, zero, "all minus-inf");
}

TEST(SimdMultiply, NearIntMaxMagnitudesTakeCheckedPathAndAgree) {
    // Magnitudes big enough to fail the safe bound but not to overflow:
    // multiply must silently fall back to the checked kernel and still equal
    // the naive reference.
    const Int big = kIntMax / 2 - 10;
    MpMatrix a(9, 9);
    MpMatrix b(9, 9);
    for (std::size_t i = 0; i < 9; ++i) {
        a.set(i, i, MpValue(big));
        b.set(i, (i + 1) % 9, MpValue(-big + 1000));
        b.set(i, i, MpValue(1));
    }
    expect_all_products_agree(a, b, "near-INT64_MAX fallback");
}

TEST(SimdMultiply, GenuineOverflowThrowsLikeNaive) {
    const IsaTierGuard guard;
    MpMatrix a(2, 2);
    a.set(0, 0, MpValue(kIntMax - 1));
    MpMatrix b(2, 2);
    b.set(0, 0, MpValue(kIntMax - 1));
    EXPECT_THROW(a.multiply_naive(b), ArithmeticError);
    EXPECT_THROW(a.multiply_checked(b), ArithmeticError);
    for (const IsaTier tier : supported_isa_tiers()) {
        set_active_isa_tier(tier);
        EXPECT_THROW(a.multiply(b), ArithmeticError) << isa_tier_name(tier);
    }
}

TEST(SimdMultiply, PowerLaddersAgreeOnEveryTier) {
    const IsaTierGuard guard;
    std::mt19937 rng(4);
    const MpMatrix g = random_matrix(rng, 24, 24, 0.3, -20, 20);
    set_active_isa_tier(IsaTier::scalar);
    const MpMatrix expected = g.power(13);
    for (const IsaTier tier : supported_isa_tiers()) {
        set_active_isa_tier(tier);
        EXPECT_EQ(g.power(13), expected) << isa_tier_name(tier);
    }
}

TEST(SentinelEncoding, FiniteIntMinIsRejectedBySet) {
    MpMatrix m(2, 2);
    EXPECT_THROW(m.set(0, 0, MpValue(std::numeric_limits<Int>::min())),
                 ArithmeticError);
    // −∞ itself round-trips through the sentinel.
    m.set(0, 1, MpValue::minus_infinity());
    EXPECT_FALSE(m.at(0, 1).is_finite());
    m.set(1, 1, MpValue(std::numeric_limits<Int>::min() + 1));
    EXPECT_EQ(m.at(1, 1).value(), std::numeric_limits<Int>::min() + 1);
}

TEST(SentinelEncoding, MaxAbsFiniteIgnoresSentinelLanes) {
    MpMatrix m(2, 3);
    EXPECT_EQ(m.max_abs_finite(), 0u);
    m.set(0, 0, MpValue(-7));
    m.set(1, 2, MpValue(5));
    EXPECT_EQ(m.max_abs_finite(), 7u);
    EXPECT_EQ(m.finite_entry_count(), 2u);
}

// ---- downstream algorithms per tier ------------------------------------

TEST(SimdSweep, ClosureAgreesAcrossTiers) {
    const IsaTierGuard guard;
    std::mt19937 rng(5);
    // Non-positive weights guarantee the closure exists; dense enough that
    // the Floyd fast path really runs the kernel.
    const MpMatrix m = random_matrix(rng, 21, 21, 0.7, -40, 0);
    set_active_isa_tier(IsaTier::scalar);
    const auto expected = mp_closure(m);
    ASSERT_TRUE(expected.has_value());
    for (const IsaTier tier : supported_isa_tiers()) {
        set_active_isa_tier(tier);
        const auto actual = mp_closure(m);
        ASSERT_TRUE(actual.has_value()) << isa_tier_name(tier);
        EXPECT_EQ(*actual, *expected) << isa_tier_name(tier);
    }
}

TEST(SimdSweep, KarpAgreesAcrossTiersOnDenseGraph) {
    const IsaTierGuard guard;
    std::mt19937 rng(6);
    // Dense square matrix => its precedence graph is one dense SCC, which
    // is exactly the shape that takes Karp's axpy_max relaxation mode.
    const MpMatrix m = random_matrix(rng, 24, 24, 0.9, 0, 100);
    const Digraph g = m.precedence_graph();
    const CycleMetric reference = max_cycle_mean_karp_serial(g);
    ASSERT_TRUE(reference.is_finite());
    for (const IsaTier tier : supported_isa_tiers()) {
        set_active_isa_tier(tier);
        const CycleMetric actual = max_cycle_mean_karp(g);
        ASSERT_TRUE(actual.is_finite()) << isa_tier_name(tier);
        EXPECT_EQ(actual.value, reference.value) << isa_tier_name(tier);
    }
}

}  // namespace
}  // namespace sdf
