// Unit + property tests for transform/sdf_abstraction.hpp — the extension
// of the abstraction method to non-homogeneous graphs the paper alludes to.
#include "transform/sdf_abstraction.hpp"

#include <gtest/gtest.h>

#include <random>

#include "analysis/throughput.hpp"
#include "gen/benchmarks.hpp"
#include "gen/random_sdf.hpp"
#include "sdf/repetition.hpp"

namespace sdf {
namespace {

TEST(SdfAbstraction, ShrinksToOneActorPerOriginal) {
    const Graph g = samplerate_converter();
    const SdfAbstraction result = abstract_sdf(g);
    EXPECT_EQ(result.abstract.actor_count(), g.actor_count());
    EXPECT_TRUE(result.abstract.is_homogeneous());
    EXPECT_EQ(result.hsdf.actor_count(), 612u);
    // Every original actor has its abstract image by name.
    for (const Actor& a : g.actors()) {
        EXPECT_TRUE(result.abstract.find_actor(a.name).has_value()) << a.name;
    }
}

TEST(SdfAbstraction, FoldEqualsMaxRepetitionWhenFiringIndicesAreValid) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 2);
    g.add_channel(a, b, 2, 1, 0);   // q = (1, 2)
    g.add_channel(b, a, 1, 2, 2);
    const SdfAbstraction result = abstract_sdf(g);
    EXPECT_EQ(result.fold, 2);
}

TEST(SdfAbstraction, BoundIsConservativeOnRing) {
    Graph g;
    const ActorId a = g.add_actor("a", 2);
    const ActorId b = g.add_actor("b", 3);
    g.add_channel(a, b, 1, 2, 0);
    g.add_channel(b, a, 2, 1, 2);
    g.add_channel(a, a, 1);
    g.add_channel(b, b, 1);
    const ThroughputResult actual = throughput_symbolic(g);
    ASSERT_TRUE(actual.is_finite());
    const SdfAbstraction abstraction = abstract_sdf(g);
    const std::vector<Rational> bound = conservative_throughput_bound(g, abstraction);
    for (ActorId x = 0; x < g.actor_count(); ++x) {
        EXPECT_LE(bound[x], actual.per_actor[x]);
    }
}

TEST(SdfAbstraction, BoundsAreAlwaysNonNegative) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 3, 1, 0);
    g.add_channel(b, a, 1, 3, 3);
    const SdfAbstraction abstraction = abstract_sdf(g);
    const std::vector<Rational> bound = conservative_throughput_bound(g, abstraction);
    for (const Rational& r : bound) {
        EXPECT_GE(r, Rational(0));
    }
}

class SdfAbstractionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SdfAbstractionProperty, BoundNeverExceedsTrueThroughput) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    const Graph g = random_sdf(rng);
    const ThroughputResult actual = throughput_symbolic(g);
    if (!actual.is_finite()) {
        return;  // unbounded originals make no claim
    }
    const SdfAbstraction abstraction = abstract_sdf(g);
    const std::vector<Rational> bound = conservative_throughput_bound(g, abstraction);
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        EXPECT_LE(bound[a], actual.per_actor[a])
            << "actor " << g.actor(a).name << " bound not conservative";
    }
}

TEST_P(SdfAbstractionProperty, AbstractionOfHomogeneousGraphKeepsShape) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 500);
    const Graph g = random_hsdf(rng);
    const SdfAbstraction result = abstract_sdf(g);
    // HSDF input: expansion is 1:1, so the abstraction is essentially the
    // pruned graph itself (fold 1, delays unchanged modulo pruning).
    EXPECT_EQ(result.fold, 1);
    EXPECT_EQ(result.abstract.actor_count(), g.actor_count());
    const ThroughputResult original = throughput_symbolic(g);
    const ThroughputResult abstracted = throughput_symbolic(result.abstract);
    ASSERT_EQ(original.outcome, abstracted.outcome);
    if (original.is_finite()) {
        EXPECT_EQ(original.period, abstracted.period);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SdfAbstractionProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace sdf
