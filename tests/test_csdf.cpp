// Unit + property tests for the cyclo-static dataflow substrate
// (csdf/graph.hpp, csdf/analysis.hpp).
#include <gtest/gtest.h>

#include <random>

#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "csdf/analysis.hpp"
#include "gen/random_sdf.hpp"
#include "sdf/repetition.hpp"

namespace sdf {
namespace {

/// The classic two-phase producer/consumer: a emits (1, 2) per cycle,
/// b consumes (3) — q' = (1, 1).
CsdfGraph two_phase() {
    CsdfGraph g("two_phase");
    const CsdfActorId a = g.add_actor("a", {2, 4});
    const CsdfActorId b = g.add_actor("b", {5});
    g.add_channel(a, b, {1, 2}, {3}, 0);
    g.add_channel(b, a, {3}, {1, 2}, 3);
    return g;
}

TEST(CsdfGraph, ValidationRejectsBadInput) {
    CsdfGraph g;
    EXPECT_THROW(g.add_actor("a", {}), InvalidGraphError);
    EXPECT_THROW(g.add_actor("a", {-1}), InvalidGraphError);
    const CsdfActorId a = g.add_actor("a", {1, 2});
    EXPECT_THROW(g.add_actor("a", {1}), InvalidGraphError);
    const CsdfActorId b = g.add_actor("b", {1});
    EXPECT_THROW(g.add_channel(a, b, {1}, {1}, 0), InvalidGraphError);      // length
    EXPECT_THROW(g.add_channel(a, b, {0, 0}, {1}, 0), InvalidGraphError);   // all zero
    EXPECT_THROW(g.add_channel(a, b, {1, 0}, {1}, -1), InvalidGraphError);  // tokens
    EXPECT_THROW(g.add_channel(a, 9, {1, 0}, {1}, 0), InvalidGraphError);
    EXPECT_NO_THROW(g.add_channel(a, b, {1, 0}, {1}, 0));
}

TEST(CsdfGraph, AggregateRates) {
    const CsdfGraph g = two_phase();
    EXPECT_EQ(g.channel(0).production_per_cycle(), 3);
    EXPECT_EQ(g.channel(0).consumption_per_cycle(), 3);
    EXPECT_EQ(g.total_initial_tokens(), 3);
    EXPECT_EQ(g.find_actor("a"), 0u);
    EXPECT_FALSE(g.find_actor("zz").has_value());
}

TEST(CsdfAnalysis, RepetitionCountsFullCycles) {
    EXPECT_EQ(csdf_repetition(two_phase()), (std::vector<Int>{1, 1}));
    // Aggregate 3 vs 2: q' = (2, 3).
    CsdfGraph g;
    const CsdfActorId a = g.add_actor("a", {1, 1});
    const CsdfActorId b = g.add_actor("b", {1});
    g.add_channel(a, b, {2, 1}, {2}, 0);
    EXPECT_EQ(csdf_repetition(g), (std::vector<Int>{2, 3}));
    EXPECT_TRUE(csdf_is_consistent(g));
}

TEST(CsdfAnalysis, InconsistentAggregateRatesRejected) {
    CsdfGraph g;
    const CsdfActorId a = g.add_actor("a", {1});
    g.add_channel(a, a, {2}, {1}, 4);
    EXPECT_FALSE(csdf_is_consistent(g));
    EXPECT_THROW(csdf_repetition(g), InconsistentGraphError);
}

TEST(CsdfAnalysis, ScheduleFiresPhasesInOrder) {
    const CsdfGraph g = two_phase();
    const std::vector<CsdfFiring> schedule = csdf_sequential_schedule(g);
    ASSERT_EQ(schedule.size(), 3u);  // a twice (both phases) + b once
    // a's phases appear in cyclic order 0, 1.
    std::vector<Int> a_phases;
    for (const CsdfFiring& f : schedule) {
        if (f.actor == 0) {
            a_phases.push_back(f.phase);
        }
    }
    EXPECT_EQ(a_phases, (std::vector<Int>{0, 1}));
    EXPECT_TRUE(csdf_is_live(g));
}

TEST(CsdfAnalysis, PhaseGranularityDeadlockDetected) {
    // Aggregates balance, but phase 0 of b needs 2 tokens while a's phase 0
    // only produced 1 and the channel starts empty.
    CsdfGraph g;
    const CsdfActorId a = g.add_actor("a", {1, 1});
    const CsdfActorId b = g.add_actor("b", {1, 1});
    g.add_channel(a, b, {1, 2}, {2, 1}, 0);
    g.add_channel(b, a, {2, 1}, {1, 2}, 1);  // a can fire phase 0 only
    EXPECT_TRUE(csdf_is_consistent(g));
    EXPECT_FALSE(csdf_is_live(g));
}

TEST(CsdfAnalysis, ThroughputOfTwoPhaseRing) {
    // One iteration: a fires both phases (2 then 4 time units, serialised
    // by data), then b (5); all three tokens return.  The critical cycle is
    // the full loop: lambda = ?  The b->a channel holds 3 tokens and the
    // a-phases pipeline on them, so compute via the library and verify
    // against the simulation-free hand bound lambda <= 2+4+5.
    const CsdfThroughput t = csdf_throughput(two_phase());
    ASSERT_FALSE(t.deadlocked);
    ASSERT_FALSE(t.unbounded);
    EXPECT_GT(t.period, Rational(0));
    EXPECT_LE(t.period, Rational(11));
    EXPECT_EQ(t.per_actor[0], Rational(1) / t.period);
}

TEST(CsdfAnalysis, SelfLoopPhaseTimesBoundThroughput) {
    // Single actor, three phases (3, 1, 2), one-token self-loop consumed
    // and produced by every phase: strictly sequential, cycle time 6.
    CsdfGraph g;
    const CsdfActorId a = g.add_actor("a", {3, 1, 2});
    g.add_channel(a, a, {1, 1, 1}, {1, 1, 1}, 1);
    const CsdfThroughput t = csdf_throughput(g);
    ASSERT_FALSE(t.deadlocked);
    EXPECT_EQ(t.period, Rational(6));
    EXPECT_EQ(t.per_actor[0], Rational(1, 6));
}

TEST(CsdfAnalysis, BufferCapacityThrottlesAndValidates) {
    // Two-stage CSDF pipeline; bounding the connecting channel to its
    // minimum serialises the stages.
    CsdfGraph g("bounded");
    const CsdfActorId a = g.add_actor("a", {2, 2});
    const CsdfActorId b = g.add_actor("b", {3});
    const CsdfChannelId ab = g.add_channel(a, b, {1, 1}, {2}, 0);
    g.add_channel(b, a, {2}, {1, 1}, 4);
    g.add_channel(a, a, {1, 1}, {1, 1}, 1);
    g.add_channel(b, b, {1}, {1}, 1);
    const CsdfThroughput open = csdf_throughput(g);
    ASSERT_FALSE(open.deadlocked);
    const CsdfGraph tight = csdf_with_buffer_capacity(g, ab, 2);
    const CsdfThroughput bounded = csdf_throughput(tight);
    ASSERT_FALSE(bounded.deadlocked);
    EXPECT_GE(bounded.period, open.period);
    // Generous capacity restores the open rate.
    const CsdfGraph loose = csdf_with_buffer_capacity(g, ab, 16);
    EXPECT_EQ(csdf_throughput(loose).period, open.period);
    // Validation.
    EXPECT_THROW(csdf_with_buffer_capacity(g, 99, 4), InvalidGraphError);
    EXPECT_THROW(csdf_with_buffer_capacity(g, 2, 0), InvalidGraphError);  // self-loop
}

TEST(CsdfAnalysis, ReducedHsdfPreservesPeriod) {
    const CsdfGraph g = two_phase();
    const CsdfThroughput t = csdf_throughput(g);
    const Graph reduced = csdf_to_reduced_hsdf(g);
    const ThroughputResult converted = throughput_symbolic(reduced);
    ASSERT_TRUE(converted.is_finite());
    EXPECT_EQ(converted.period, t.period);
    // Bounds of Section 6 hold with N = 3 tokens.
    EXPECT_LE(reduced.actor_count(), 3u * 5u);
    EXPECT_LE(reduced.total_initial_tokens(), 3);
}

class CsdfProperty : public ::testing::TestWithParam<int> {};

TEST_P(CsdfProperty, SinglePhaseEmbeddingMatchesSdfAnalysis) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    const Graph g = random_sdf(rng);
    const CsdfGraph embedded = csdf_from_sdf(g);
    EXPECT_EQ(csdf_repetition(embedded), repetition_vector(g));
    const ThroughputResult sdf_result = throughput_symbolic(g);
    const CsdfThroughput csdf_result = csdf_throughput(embedded);
    if (sdf_result.is_finite()) {
        ASSERT_FALSE(csdf_result.deadlocked);
        ASSERT_FALSE(csdf_result.unbounded);
        EXPECT_EQ(csdf_result.period, sdf_result.period);
        EXPECT_EQ(csdf_result.per_actor, sdf_result.per_actor);
    } else {
        EXPECT_EQ(csdf_result.deadlocked,
                  sdf_result.outcome == ThroughputOutcome::deadlocked);
        EXPECT_EQ(csdf_result.unbounded,
                  sdf_result.outcome == ThroughputOutcome::unbounded);
    }
}

TEST_P(CsdfProperty, PhaseSplitRefinesButNeverSpeedsUpBeyondSdf) {
    // Splitting every actor a of an HSDF into two phases whose times sum to
    // T(a), with the channel rates split (1,0)/(0,1)-style... we keep it
    // simple and sound: phases (T(a), 0) with rates (p, 0) and (c, 0) — an
    // actor that does all its work in phase one and an empty second phase
    // serialised behind it.  The CSDF period must be at least the SDF one
    // (the extra phase only adds ordering).
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 100);
    const Graph g = random_hsdf(rng);
    const ThroughputResult sdf_result = throughput_symbolic(g);
    if (!sdf_result.is_finite()) {
        return;
    }
    CsdfGraph split(g.name() + "_split");
    for (const Actor& a : g.actors()) {
        split.add_actor(a.name, {a.execution_time, 0});
    }
    for (const Channel& c : g.channels()) {
        split.add_channel(c.src, c.dst, {c.production, 0}, {c.consumption, 0},
                          c.initial_tokens);
    }
    const CsdfThroughput csdf_result = csdf_throughput(split);
    ASSERT_FALSE(csdf_result.deadlocked);
    ASSERT_FALSE(csdf_result.unbounded);
    EXPECT_GE(csdf_result.period, sdf_result.period);
}

TEST_P(CsdfProperty, ReducedHsdfPreservesPeriodOnRandomEmbeddings) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 200);
    const Graph g = random_sdf(rng);
    const CsdfGraph embedded = csdf_from_sdf(g);
    const CsdfThroughput t = csdf_throughput(embedded);
    if (t.deadlocked || t.unbounded) {
        return;
    }
    const Graph reduced = csdf_to_reduced_hsdf(embedded);
    EXPECT_EQ(throughput_symbolic(reduced).period, t.period);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsdfProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace sdf
