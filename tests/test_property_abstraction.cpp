// Property tests for the abstraction method (Sections 4-5): on random live
// HSDF graphs with random groupings,
//   * the synthesised abstraction satisfies Definition 3,
//   * Theorem 1 holds: tau(a) >= tau(alpha(a)) / N for every actor,
//   * Propositions 3 and 4 hold constructively: sigma embeds the original
//     graph into the N-fold unfolding of the abstract graph with longer
//     execution times and at-most-equal token counts (the premises of
//     Proposition 1, checked by covers_conservatively), and
//   * Proposition 2 holds: unfolding scales the period by N.
#include <gtest/gtest.h>

#include <random>

#include "analysis/throughput.hpp"
#include "gen/random_sdf.hpp"
#include "transform/abstraction.hpp"
#include "transform/compare.hpp"
#include "transform/unfold.hpp"

namespace sdf {
namespace {

/// Random grouping of the actors of `g` into at most `max_groups` groups.
std::vector<std::string> random_grouping(const Graph& g, std::mt19937& rng,
                                         std::size_t max_groups) {
    std::uniform_int_distribution<std::size_t> pick(0, max_groups - 1);
    std::vector<std::string> group(g.actor_count());
    for (std::size_t a = 0; a < g.actor_count(); ++a) {
        group[a] = "G" + std::to_string(pick(rng));
    }
    return group;
}

class AbstractionProperty : public ::testing::TestWithParam<int> {};

TEST_P(AbstractionProperty, AssignIndicesProducesValidAbstractions) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    const Graph g = random_hsdf(rng);
    const AbstractionSpec spec = assign_indices(g, random_grouping(g, rng, 3));
    EXPECT_TRUE(is_valid_abstraction(g, spec));
}

TEST_P(AbstractionProperty, Theorem1ConservativeThroughput) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 1000);
    const Graph g = random_hsdf(rng);
    const AbstractionSpec spec = assign_indices(g, random_grouping(g, rng, 3));
    const Graph abstract = abstract_graph(g, spec);
    const ThroughputResult original = throughput_symbolic(g);
    const ThroughputResult reduced = throughput_symbolic(abstract);
    if (!original.is_finite()) {
        return;  // zero-time critical cycle: throughput unbounded, no claim
    }
    // An ill-fitting abstraction may deadlock (its extra dependencies can
    // be unsatisfiable): the estimate degrades to throughput 0, which is
    // trivially conservative.  What may NOT happen with a finite original
    // period is an unbounded estimate — that would be anti-conservative.
    if (reduced.outcome == ThroughputOutcome::deadlocked) {
        return;
    }
    ASSERT_TRUE(reduced.is_finite());
    const Rational fold(spec.fold());
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        const ActorId image = *abstract.find_actor(spec.group[a]);
        const Rational estimate = reduced.per_actor[image] / fold;
        EXPECT_GE(original.per_actor[a], estimate)
            << "actor " << g.actor(a).name << " violates Theorem 1";
    }
}

TEST_P(AbstractionProperty, Propositions3And4ViaUnfolding) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 2000);
    const Graph g = random_hsdf(rng);
    const AbstractionSpec spec = assign_indices(g, random_grouping(g, rng, 3));
    // Pruning only removes dominated parallel channels; keep them so every
    // original channel has its Proposition 4 witness untouched.
    const Graph abstract = abstract_graph(g, spec, /*prune=*/false);
    const Graph unfolded = unfold(abstract, spec.fold());
    std::vector<ActorId> image;
    image.reserve(g.actor_count());
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        const auto id = unfolded.find_actor(sigma_image_name(spec, a));
        ASSERT_TRUE(id.has_value()) << sigma_image_name(spec, a);
        image.push_back(*id);
    }
    std::string why;
    EXPECT_TRUE(covers_conservatively(g, unfolded, image, &why)) << why;
}

TEST_P(AbstractionProperty, PruningDoesNotChangeTheBound) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 3000);
    const Graph g = random_hsdf(rng);
    const AbstractionSpec spec = assign_indices(g, random_grouping(g, rng, 4));
    const ThroughputResult pruned = throughput_symbolic(abstract_graph(g, spec, true));
    const ThroughputResult unpruned = throughput_symbolic(abstract_graph(g, spec, false));
    ASSERT_EQ(pruned.outcome, unpruned.outcome);
    if (pruned.is_finite()) {
        EXPECT_EQ(pruned.period, unpruned.period);
    }
}

TEST_P(AbstractionProperty, Proposition2UnfoldingScalesPeriods) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 4000);
    const Graph g = random_hsdf(rng);
    const ThroughputResult original = throughput_symbolic(g);
    if (!original.is_finite()) {
        return;
    }
    std::uniform_int_distribution<Int> pick_n(2, 5);
    const Int n = pick_n(rng);
    const Graph unf = unfold(g, n);
    const ThroughputResult unfolded = throughput_symbolic(unf);
    ASSERT_TRUE(unfolded.is_finite());
    EXPECT_EQ(unfolded.period, Rational(n) * original.period);
    // tau'(a_i) = tau(a)/N for every copy (Proposition 2).
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        for (Int i = 0; i < n; ++i) {
            const auto copy = unf.find_actor(unfolded_actor_name(g.actor(a).name, i));
            ASSERT_TRUE(copy.has_value());
            EXPECT_EQ(unfolded.per_actor[*copy], original.per_actor[a] / Rational(n));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbstractionProperty, ::testing::Range(0, 60));

}  // namespace
}  // namespace sdf
