// Unit tests for analysis/latency.hpp, liveness.hpp and buffers.hpp.
#include <gtest/gtest.h>

#include "analysis/buffers.hpp"
#include "analysis/latency.hpp"
#include "analysis/liveness.hpp"
#include "analysis/static_schedule.hpp"
#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "gen/regular.hpp"

namespace sdf {
namespace {

TEST(Latency, Figure1IterationMakespanIs23) {
    EXPECT_EQ(iteration_makespan(figure1_graph(6)), 23);
}

TEST(Latency, PipelineResponse) {
    Graph g;
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 4);
    const ActorId c = g.add_actor("c", 5);
    g.add_channel(a, b, 0);
    g.add_channel(b, c, 0);
    g.add_channel(c, a, 1);
    EXPECT_EQ(response_latency(g, a), 3);
    EXPECT_EQ(response_latency(g, b), 7);
    EXPECT_EQ(response_latency(g, c), 12);
    EXPECT_EQ(iteration_makespan(g), 12);
    EXPECT_THROW(response_latency(g, 99), InvalidGraphError);
}

TEST(Latency, MultiRateResponse) {
    Graph g;
    const ActorId src = g.add_actor("src", 2);
    const ActorId dst = g.add_actor("dst", 1);
    g.add_channel(src, dst, 1, 3, 0);   // dst needs three src firings
    g.add_channel(dst, src, 3, 1, 3);
    g.add_channel(src, src, 1);         // serialise src
    EXPECT_EQ(response_latency(g, dst), 7);  // 3 * 2 + 1
}

TEST(Latency, MinimumLatencyAlongPipeline) {
    Graph g;
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 4);
    const ActorId c = g.add_actor("c", 5);
    g.add_channel(a, b, 0);
    g.add_channel(b, c, 0);
    g.add_channel(c, a, 1);
    const Rational period = iteration_period(g);  // 12
    // Token-free path a -> b -> c: latency independent of the period.
    EXPECT_EQ(minimum_latency(g, a, c, period), Rational(12));
    EXPECT_EQ(minimum_latency(g, a, c, period * Rational(2)), Rational(12));
    // src == dst: the empty path, just the execution time.
    EXPECT_EQ(minimum_latency(g, a, a, period), Rational(3));
    // The token-crossing direction relaxes with the period: c -> a carries
    // one token, so L(c,a) = T(c) - period + T(a).
    EXPECT_EQ(minimum_latency(g, c, a, period), Rational(5 - 12 + 3));
    EXPECT_EQ(minimum_latency(g, c, a, Rational(20)), Rational(5 - 20 + 3));
    // Below the iteration period: infeasible.
    EXPECT_THROW(minimum_latency(g, a, c, Rational(11)), Error);
}

TEST(Latency, MinimumLatencyUnreachablePair) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 2);
    g.add_channel(a, a, 1);
    g.add_channel(b, b, 1);
    EXPECT_FALSE(minimum_latency(g, a, b, Rational(5)).has_value());
    Graph rated;
    const ActorId x = rated.add_actor("x", 1);
    const ActorId y = rated.add_actor("y", 1);
    rated.add_channel(x, y, 2, 1, 0);
    EXPECT_THROW(minimum_latency(rated, x, y, Rational(5)), InvalidGraphError);
}

TEST(Latency, ScheduleLatencyDominatesTheMinimum) {
    // Any concrete rate-optimal schedule realises at least the optimum.
    const Graph g = figure1_graph(6);
    const Rational period = iteration_period(g);
    const PeriodicSchedule schedule = periodic_schedule(g);
    const ActorId a1 = *g.find_actor("A1");
    for (const char* name : {"A3", "B4", "A6"}) {
        const ActorId dst = *g.find_actor(name);
        const auto optimum = minimum_latency(g, a1, dst, period);
        ASSERT_TRUE(optimum.has_value()) << name;
        EXPECT_GE(schedule_latency(g, schedule, a1, dst), *optimum) << name;
    }
}

TEST(Liveness, AgreeOnLiveGraph) {
    const Graph g = figure1_graph(6);
    EXPECT_TRUE(is_live(g));
    EXPECT_TRUE(is_live_via_hsdf(g));
}

TEST(Liveness, AgreeOnDeadlockedGraph) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 0);
    EXPECT_FALSE(is_live(g));
    EXPECT_FALSE(is_live_via_hsdf(g));
}

TEST(Liveness, AgreeOnRatedDeadlock) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 1, 2, 0);
    g.add_channel(b, a, 2, 1, 1);
    EXPECT_FALSE(is_live(g));
    EXPECT_FALSE(is_live_via_hsdf(g));
    g.set_initial_tokens(1, 2);
    EXPECT_TRUE(is_live(g));
    EXPECT_TRUE(is_live_via_hsdf(g));
}

TEST(Liveness, InconsistentGraphIsNotLive) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    g.add_channel(a, a, 2, 1, 4);
    EXPECT_FALSE(is_live(g));
    EXPECT_FALSE(is_live_via_hsdf(g));
}

TEST(Buffers, ReverseChannelModelsCapacity) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 2);
    const ChannelId ab = g.add_channel(a, b, 2, 3, 1);
    const Graph bounded = with_buffer_capacity(g, ab, 7);
    ASSERT_EQ(bounded.channel_count(), 2u);
    const Channel& back = bounded.channel(1);
    EXPECT_EQ(back.src, b);
    EXPECT_EQ(back.dst, a);
    EXPECT_EQ(back.production, 3);
    EXPECT_EQ(back.consumption, 2);
    EXPECT_EQ(back.initial_tokens, 6);  // capacity - initial tokens
    EXPECT_THROW(with_buffer_capacity(g, ab, 0), InvalidGraphError);
}

TEST(Buffers, CapacityThrottlesThroughput) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 4);
    const ChannelId ab = g.add_channel(a, b, 0);
    g.add_channel(b, a, 4);  // enough return tokens for pipelining
    const Rational open = throughput_symbolic(g).per_actor[a];
    const Rational tight = throughput_symbolic(with_buffer_capacity(g, ab, 1)).per_actor[a];
    EXPECT_LT(tight, open);
    EXPECT_EQ(tight, Rational(1, 5));  // a and b alternate: 1 + 4
}

TEST(Buffers, MinimumLiveCapacityBinarySearch) {
    // b consumes 3 per firing: the channel needs room for 3 tokens.
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    const ChannelId ab = g.add_channel(a, b, 1, 3, 0);
    g.add_channel(b, a, 3, 1, 3);
    EXPECT_EQ(minimum_live_capacity(g, ab, 100), 3);
}

TEST(Buffers, MinimumLiveCapacityThrowsWhenUpperDeadlocks) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    const ChannelId ab = g.add_channel(a, b, 0);
    g.add_channel(b, a, 0);  // dead regardless of capacity
    EXPECT_THROW(minimum_live_capacity(g, ab, 10), Error);
}

TEST(Buffers, AllChannelCapacities) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 1);
    g.add_channel(a, a, 1);  // self-loop: skipped
    const Graph bounded = with_buffer_capacities(g, {2, 2, 1});
    EXPECT_EQ(bounded.channel_count(), 5u);  // two reverse channels added
    EXPECT_TRUE(is_live(bounded));
    EXPECT_THROW(with_buffer_capacities(g, {2}), InvalidGraphError);
}

}  // namespace
}  // namespace sdf
