// SDF-vs-CSDF agreement over the bundled models: every SDF graph embeds
// into CSDF as the single-phase special case (csdf_from_sdf), and the
// cyclo-static analyses must reproduce the SDF results exactly — same
// consistency, same liveness, same iteration period and per-actor rates,
// and the same self-timed makespans.  This pins the CSDF machinery to the
// SDF machinery on real models, not just the synthetic graphs of
// test_csdf.cpp.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/throughput.hpp"
#include "csdf/analysis.hpp"
#include "csdf/simulate.hpp"
#include "gen/benchmarks.hpp"
#include "gen/regular.hpp"
#include "io/text.hpp"
#include "io/xml.hpp"
#include "sdf/properties.hpp"
#include "sdf/repetition.hpp"
#include "sdf/simulate.hpp"

namespace sdf {
namespace {

const std::string kDataDir = SDFRED_DATA_DIR;

std::vector<Graph> bundled_models() {
    std::vector<Graph> models;
    models.push_back(read_text_file(kDataDir + "/figure1_n6.sdf"));
    models.push_back(read_text_file(kDataDir + "/prefetch_n8.sdf"));
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        models.push_back(read_xml_file(kDataDir + "/" + bench.graph.name() + ".xml"));
    }
    return models;
}

TEST(CsdfSdfAgreement, RepetitionVectorsMatch) {
    for (const Graph& g : bundled_models()) {
        const CsdfGraph lifted = csdf_from_sdf(g);
        const std::vector<Int> sdf_q = repetition_vector(g);
        const std::vector<Int> csdf_q = csdf_repetition(lifted);
        // Single-phase actors: one cycle of the lifted actor is one firing.
        EXPECT_EQ(csdf_q, sdf_q) << g.name();
    }
}

TEST(CsdfSdfAgreement, ThroughputMatches) {
    for (const Graph& g : bundled_models()) {
        const CsdfGraph lifted = csdf_from_sdf(g);
        const ThroughputResult sdf_t = throughput_symbolic(g);
        const CsdfThroughput csdf_t = csdf_throughput(lifted);
        EXPECT_EQ(csdf_t.deadlocked, sdf_t.outcome == ThroughputOutcome::deadlocked)
            << g.name();
        EXPECT_EQ(csdf_t.unbounded, sdf_t.outcome == ThroughputOutcome::unbounded)
            << g.name();
        if (sdf_t.is_finite()) {
            EXPECT_EQ(csdf_t.period, sdf_t.period) << g.name();
            EXPECT_EQ(csdf_t.per_actor, sdf_t.per_actor) << g.name();
        }
    }
}

TEST(CsdfSdfAgreement, SimulatedMakespansMatch) {
    for (const Graph& g : bundled_models()) {
        const CsdfGraph lifted = csdf_from_sdf(g);
        for (const Int iterations : {1, 2, 3}) {
            const FiniteRun sdf_run = simulate_iterations(g, iterations);
            const CsdfFiniteRun csdf_run = csdf_simulate_iterations(lifted, iterations);
            EXPECT_EQ(csdf_run.makespan, sdf_run.makespan)
                << g.name() << " over " << iterations << " iterations";
        }
    }
}

TEST(CsdfSdfAgreement, ReducedHsdfPeriodsMatch) {
    for (const Graph& g : bundled_models()) {
        // Both reduced conversions (SDF route and CSDF route) are HSDF
        // graphs over the same initial tokens with the original period.
        const CsdfGraph lifted = csdf_from_sdf(g);
        const Graph reduced = csdf_to_reduced_hsdf(lifted);
        EXPECT_TRUE(reduced.is_homogeneous()) << g.name();
        const ThroughputResult original = throughput_symbolic(g);
        const ThroughputResult converted = throughput_symbolic(reduced);
        ASSERT_TRUE(original.is_finite()) << g.name();
        ASSERT_TRUE(converted.is_finite()) << g.name();
        EXPECT_EQ(converted.period, original.period) << g.name();
    }
}

TEST(CsdfSdfAgreement, GeneratedFamiliesAgreeToo) {
    // Parametric families beyond the shipped files, small enough for the
    // full cross-check including per-actor rates.
    for (const Graph& g : {figure1_graph(4), prefetch_graph(5)}) {
        const CsdfGraph lifted = csdf_from_sdf(g);
        const ThroughputResult sdf_t = throughput_symbolic(g);
        const CsdfThroughput csdf_t = csdf_throughput(lifted);
        ASSERT_TRUE(sdf_t.is_finite()) << g.name();
        ASSERT_FALSE(csdf_t.deadlocked) << g.name();
        EXPECT_EQ(csdf_t.period, sdf_t.period) << g.name();
        EXPECT_EQ(csdf_t.per_actor, sdf_t.per_actor) << g.name();
        EXPECT_EQ(csdf_simulate_iterations(lifted, 2).makespan,
                  simulate_iterations(g, 2).makespan)
            << g.name();
    }
}

}  // namespace
}  // namespace sdf
