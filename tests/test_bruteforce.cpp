// Brute-force cross-validation: on graphs small enough to enumerate every
// simple cycle directly, the exact solvers (Karp max cycle mean, the
// Stern–Brocot max cycle ratio, Howard) must reproduce the enumerated
// optimum — the strongest possible oracle for the cycle-metric layer that
// every throughput result in the library rests on.
#include <gtest/gtest.h>

#include <optional>
#include <random>

#include "maxplus/mcm.hpp"

namespace sdf {
namespace {

/// Enumerates every simple cycle (by smallest-node canonical start) and
/// returns the maximum weight/tokens ratio; cycles with zero tokens make
/// the result "infinite" (nullopt with *infinite set).
std::optional<Rational> brute_force_max_ratio(const Digraph& g, bool* infinite,
                                              bool mean_instead_of_ratio) {
    *infinite = false;
    std::optional<Rational> best;
    const std::size_t n = g.node_count();
    const auto out = g.out_edges();

    // DFS from each start node, only visiting nodes >= start to canonise.
    struct Frame {
        std::size_t node;
        std::size_t edge_pos;
    };
    for (std::size_t start = 0; start < n; ++start) {
        std::vector<bool> on_path(n, false);
        std::vector<Frame> stack{{start, 0}};
        std::vector<std::size_t> path_edges;
        Int weight = 0;
        Int tokens = 0;
        on_path[start] = true;
        while (!stack.empty()) {
            Frame& frame = stack.back();
            if (frame.edge_pos < out[frame.node].size()) {
                const std::size_t ei = out[frame.node][frame.edge_pos++];
                const DigraphEdge& e = g.edge(ei);
                if (e.to < start) {
                    continue;
                }
                if (e.to == start) {
                    // Found a cycle: evaluate it.
                    const Int w = checked_add(weight, e.weight);
                    const Int d = checked_add(tokens,
                                              mean_instead_of_ratio ? 1 : e.tokens);
                    if (d == 0) {
                        *infinite = true;
                    } else {
                        const Rational ratio(w, d);
                        if (!best || ratio > *best) {
                            best = ratio;
                        }
                    }
                    continue;
                }
                if (on_path[e.to]) {
                    continue;  // not simple
                }
                on_path[e.to] = true;
                weight = checked_add(weight, e.weight);
                tokens = checked_add(tokens, mean_instead_of_ratio ? 1 : e.tokens);
                path_edges.push_back(ei);
                stack.push_back(Frame{e.to, 0});
            } else {
                stack.pop_back();
                if (!path_edges.empty() && !stack.empty()) {
                    const DigraphEdge& e = g.edge(path_edges.back());
                    path_edges.pop_back();
                    weight = checked_sub(weight, e.weight);
                    tokens = checked_sub(tokens, mean_instead_of_ratio ? 1 : e.tokens);
                }
                on_path[frame.node] = false;
            }
        }
    }
    return best;
}

Digraph random_digraph(std::mt19937& rng, std::size_t max_nodes, Int max_weight,
                       Int max_tokens) {
    const std::size_t n = 2 + rng() % (max_nodes - 1);
    Digraph g(n);
    const std::size_t edges = 2 + rng() % (2 * n);
    for (std::size_t i = 0; i < edges; ++i) {
        g.add_edge(rng() % n, rng() % n, static_cast<Int>(rng() % (max_weight + 1)),
                   static_cast<Int>(rng() % (max_tokens + 1)));
    }
    return g;
}

class BruteForce : public ::testing::TestWithParam<int> {};

TEST_P(BruteForce, KarpMatchesEnumeratedMaxMean) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    for (int trial = 0; trial < 20; ++trial) {
        const Digraph g = random_digraph(rng, 6, 12, 1);
        bool infinite = false;
        const auto brute = brute_force_max_ratio(g, &infinite, /*mean=*/true);
        const CycleMetric karp = max_cycle_mean_karp(g);
        if (!brute) {
            EXPECT_EQ(karp.outcome, CycleOutcome::no_cycle);
        } else {
            ASSERT_TRUE(karp.is_finite());
            EXPECT_EQ(karp.value, *brute);
        }
    }
}

TEST_P(BruteForce, ExactRatioMatchesEnumeration) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 1000);
    for (int trial = 0; trial < 20; ++trial) {
        const Digraph g = random_digraph(rng, 6, 10, 3);
        bool infinite = false;
        const auto brute = brute_force_max_ratio(g, &infinite, /*mean=*/false);
        const CycleMetric exact = max_cycle_ratio_exact(g);
        if (infinite) {
            EXPECT_EQ(exact.outcome, CycleOutcome::infinite);
        } else if (!brute) {
            EXPECT_EQ(exact.outcome, CycleOutcome::no_cycle);
        } else {
            ASSERT_TRUE(exact.is_finite());
            EXPECT_EQ(exact.value, *brute);
        }
    }
}

TEST_P(BruteForce, HowardMatchesEnumeration) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 2000);
    for (int trial = 0; trial < 20; ++trial) {
        const Digraph g = random_digraph(rng, 6, 10, 3);
        bool infinite = false;
        const auto brute = brute_force_max_ratio(g, &infinite, /*mean=*/false);
        const CycleMetricDouble howard = max_cycle_ratio_howard(g);
        if (infinite) {
            EXPECT_EQ(howard.outcome, CycleOutcome::infinite);
        } else if (!brute) {
            EXPECT_EQ(howard.outcome, CycleOutcome::no_cycle);
        } else {
            ASSERT_EQ(howard.outcome, CycleOutcome::finite);
            EXPECT_NEAR(howard.value, brute->to_double(), 1e-6);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BruteForce, ::testing::Range(0, 25));

}  // namespace
}  // namespace sdf
