// Unit + property tests for throughput_self_timed — exact per-actor rates
// for graphs that are not strongly connected, cross-validated against the
// state-space simulation.
#include <gtest/gtest.h>

#include <random>

#include "analysis/throughput.hpp"
#include "gen/random_sdf.hpp"
#include "sdf/simulate.hpp"

namespace sdf {
namespace {

TEST(SelfTimed, FastConsumerTracksSlowProducer) {
    // Producer loop at period 5 feeds a consumer loop at period 2: the
    // consumer is input-limited to 1/5; the global-lambda convention would
    // claim 1/5 for the producer too (correct) and 1/5 for the consumer
    // (also correct here).  Distinguishing case follows below.
    Graph g;
    const ActorId p = g.add_actor("p", 5);
    const ActorId c = g.add_actor("c", 2);
    g.add_channel(p, p, 1);
    g.add_channel(c, c, 1);
    g.add_channel(p, c, 0);
    const SelfTimedThroughput t = throughput_self_timed(g);
    ASSERT_FALSE(t.deadlocked);
    EXPECT_EQ(t.per_actor[p], Rational(1, 5));
    EXPECT_EQ(t.per_actor[c], Rational(1, 5));
}

TEST(SelfTimed, SlowConsumerDoesNotThrottleProducer) {
    // Producer loop at period 2 feeds a consumer loop at period 5 over an
    // unbounded channel: the producer keeps running at 1/2 (tokens pile
    // up); the global-lambda convention would wrongly slow it to 1/5.
    Graph g;
    const ActorId p = g.add_actor("p", 2);
    const ActorId c = g.add_actor("c", 5);
    g.add_channel(p, p, 1);
    g.add_channel(c, c, 1);
    g.add_channel(p, c, 0);
    const SelfTimedThroughput t = throughput_self_timed(g);
    EXPECT_EQ(t.per_actor[p], Rational(1, 2));
    EXPECT_EQ(t.per_actor[c], Rational(1, 5));
    // A horizon simulation agrees actor by actor (rates are exact here:
    // both completion streams are periodic with periods dividing the
    // window).
    const FiniteRun at1 = simulate_until(g, 1000);
    const FiniteRun at2 = simulate_until(g, 2000);
    EXPECT_EQ(Rational(at2.firings[p] - at1.firings[p], 1000), Rational(1, 2));
    EXPECT_EQ(Rational(at2.firings[c] - at1.firings[c], 1000), Rational(1, 5));
    // ... while the global-period convention under-reports the producer.
    const ThroughputResult global = throughput_symbolic(g);
    EXPECT_LT(global.per_actor[p], t.per_actor[p].value());
}

TEST(SelfTimed, RateChangesScaleAcrossComponents) {
    // p (period 3) produces 2 tokens per firing; c consumes 1 and could run
    // at 1/1 alone: input-limited to 2 firings per 3 time units.
    Graph g;
    const ActorId p = g.add_actor("p", 3);
    const ActorId c = g.add_actor("c", 1);
    g.add_channel(p, p, 1);
    g.add_channel(c, c, 1);
    g.add_channel(p, c, 2, 1, 0);
    const SelfTimedThroughput t = throughput_self_timed(g);
    EXPECT_EQ(t.per_actor[p], Rational(1, 3));
    EXPECT_EQ(t.per_actor[c], Rational(2, 3));
}

TEST(SelfTimed, UnboundedSourceReported) {
    Graph g;
    const ActorId src = g.add_actor("src", 1);  // no self-loop: unbounded
    const ActorId dst = g.add_actor("dst", 4);
    g.add_channel(src, dst, 0);
    g.add_channel(dst, dst, 1);
    const SelfTimedThroughput t = throughput_self_timed(g);
    EXPECT_FALSE(t.per_actor[src].has_value());       // infinite rate
    EXPECT_EQ(t.per_actor[dst], Rational(1, 4));      // own loop binds
}

TEST(SelfTimed, DeadlockReported) {
    Graph g;
    const ActorId a = g.add_actor("a", 1);
    const ActorId b = g.add_actor("b", 1);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 0);
    const SelfTimedThroughput t = throughput_self_timed(g);
    EXPECT_TRUE(t.deadlocked);
    EXPECT_EQ(t.per_actor[a], Rational(0));
}

TEST(SelfTimed, StronglyConnectedGraphsMatchGlobalConvention) {
    Graph g;
    const ActorId a = g.add_actor("a", 3);
    const ActorId b = g.add_actor("b", 4);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 2);
    const SelfTimedThroughput st = throughput_self_timed(g);
    const ThroughputResult global = throughput_symbolic(g);
    for (ActorId x = 0; x < g.actor_count(); ++x) {
        ASSERT_TRUE(st.per_actor[x].has_value());
        EXPECT_EQ(*st.per_actor[x], global.per_actor[x]);
    }
}

class SelfTimedProperty : public ::testing::TestWithParam<int> {};

TEST_P(SelfTimedProperty, MatchesHorizonSimulationOnNonStronglyConnectedGraphs) {
    // The recurrence-based simulator cannot terminate here (components of
    // different rates accumulate tokens without bound), so rates are
    // measured over a long window of a horizon simulation instead: the
    // windowed firing counts converge to the exact rates with O(1/window)
    // error.
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    RandomSdfOptions options;
    options.strongly_connect = false;  // condensation becomes non-trivial
    options.self_loops = true;         // keep every rate bounded
    options.min_actors = 3;
    options.max_actors = 5;
    options.max_execution_time = 6;
    Graph g = random_sdf(rng, options);
    // Zero-time self-loops would fire unboundedly often within the window.
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        if (g.actor(a).execution_time == 0) {
            g.set_execution_time(a, 1);
        }
    }
    const SelfTimedThroughput exact = throughput_self_timed(g);
    if (exact.deadlocked) {
        return;
    }
    const Int t1 = 4000;
    const Int t2 = 8000;
    const FiniteRun at1 = simulate_until(g, t1);
    const FiniteRun at2 = simulate_until(g, t2);
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        ASSERT_TRUE(exact.per_actor[a].has_value());
        const Rational rate = *exact.per_actor[a];
        const Rational measured(at2.firings[a] - at1.firings[a], t2 - t1);
        const Rational diff = measured > rate ? measured - rate : rate - measured;
        EXPECT_LE(diff, rate / Rational(10) + Rational(1, 100))
            << "actor " << g.actor(a).name << ": measured " << measured.to_string()
            << " vs exact " << rate.to_string();
    }
}

TEST_P(SelfTimedProperty, GlobalConventionIsConservative) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) + 600);
    RandomSdfOptions options;
    options.strongly_connect = false;
    options.self_loops = true;
    const Graph g = random_sdf(rng, options);
    const SelfTimedThroughput exact = throughput_self_timed(g);
    const ThroughputResult global = throughput_symbolic(g);
    if (exact.deadlocked || !global.is_finite()) {
        return;
    }
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        if (exact.per_actor[a]) {
            EXPECT_LE(global.per_actor[a], *exact.per_actor[a]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelfTimedProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace sdf
