// Unit tests for sdf/schedule.hpp: PASS construction and deadlock
// detection.
#include "sdf/schedule.hpp"

#include <gtest/gtest.h>

#include <map>

#include "base/errors.hpp"
#include "gen/benchmarks.hpp"
#include "sdf/repetition.hpp"

namespace sdf {
namespace {

/// A schedule is admissible when replaying it never drives a channel
/// negative and fires each actor exactly q times.
void expect_admissible(const Graph& g, const std::vector<ActorId>& schedule) {
    const std::vector<Int> repetition = repetition_vector(g);
    std::vector<Int> tokens;
    for (const Channel& c : g.channels()) {
        tokens.push_back(c.initial_tokens);
    }
    std::vector<Int> fired(g.actor_count(), 0);
    for (const ActorId a : schedule) {
        for (ChannelId c = 0; c < g.channel_count(); ++c) {
            if (g.channel(c).dst == a) {
                tokens[c] -= g.channel(c).consumption;
                ASSERT_GE(tokens[c], 0) << "channel underflow at actor " << a;
            }
        }
        for (ChannelId c = 0; c < g.channel_count(); ++c) {
            if (g.channel(c).src == a) {
                tokens[c] += g.channel(c).production;
            }
        }
        ++fired[a];
    }
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        EXPECT_EQ(fired[a], repetition[a]) << "actor " << g.actor(a).name;
    }
    // Back to the initial distribution.
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        EXPECT_EQ(tokens[c], g.channel(c).initial_tokens);
    }
}

TEST(Schedule, TwoActorPipeline) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    g.add_channel(a, b, 1, 2, 0);
    const auto schedule = sequential_schedule(g);
    EXPECT_EQ(schedule.size(), 3u);  // q = (2, 1)
    expect_admissible(g, schedule);
}

TEST(Schedule, NeedsInitialTokensToStart) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 0);  // no tokens anywhere: deadlock
    EXPECT_THROW(sequential_schedule(g), DeadlockError);
    EXPECT_FALSE(is_deadlock_free(g));
}

TEST(Schedule, CycleWithTokenIsSchedulable) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 1);
    expect_admissible(g, sequential_schedule(g));
    EXPECT_TRUE(is_deadlock_free(g));
}

TEST(Schedule, InsufficientTokensOnRatedCycleDeadlocks) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    g.add_channel(a, b, 1, 2, 0);
    g.add_channel(b, a, 2, 1, 1);  // a needs 1 token: ok; fires once; b needs 2
    // a fires once (1 token), produces 1 for b; b needs 2, stuck; a needs
    // another token from b: deadlock.
    EXPECT_FALSE(is_deadlock_free(g));
    Graph g2 = g;
    g2.set_initial_tokens(1, 2);  // two tokens let a fire twice
    EXPECT_TRUE(is_deadlock_free(g2));
}

TEST(Schedule, InconsistentGraphReported) {
    Graph g;
    const ActorId a = g.add_actor("a");
    g.add_channel(a, a, 2, 1, 5);
    EXPECT_THROW(sequential_schedule(g), InconsistentGraphError);
    EXPECT_FALSE(is_deadlock_free(g));
}

TEST(Schedule, SelfLoopSerialisation) {
    Graph g;
    const ActorId a = g.add_actor("a");
    const ActorId b = g.add_actor("b");
    g.add_channel(a, b, 3, 1, 0);
    g.add_channel(b, b, 1, 1, 1);
    const auto schedule = sequential_schedule(g);
    EXPECT_EQ(schedule.size(), 4u);
    expect_admissible(g, schedule);
}

// Every Table 1 benchmark is schedulable and its schedule has exactly the
// iteration length from the paper.
TEST(Schedule, Table1BenchmarksAreSchedulable) {
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        const auto schedule = sequential_schedule(bench.graph);
        EXPECT_EQ(static_cast<Int>(schedule.size()), bench.paper_traditional)
            << bench.label;
        expect_admissible(bench.graph, schedule);
    }
}

}  // namespace
}  // namespace sdf
