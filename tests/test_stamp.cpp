// test_stamp — the sparse symbolic stamp (maxplus/stamp.hpp).
//
// MpStamp is the data structure the sparse symbolic engine pushes through
// the channel FIFOs, so the semantics checked here — bottom handling, the
// lazy offset, shared-storage max, batch max_of, densification — are
// exactly the operations Algorithm 1 performs per firing.
#include "maxplus/stamp.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "base/errors.hpp"

namespace sdf {
namespace {

TEST(Stamp, DefaultIsBottom) {
    const MpStamp bottom;
    EXPECT_TRUE(bottom.is_bottom());
    EXPECT_EQ(bottom.support(), 0u);
    EXPECT_FALSE(bottom.at(0).is_finite());
    EXPECT_FALSE(bottom.max_entry().is_finite());
    EXPECT_EQ(bottom.to_string(), "{}");
}

TEST(Stamp, UnitHasSingleZeroEntry) {
    const MpStamp u = MpStamp::unit(3);
    EXPECT_EQ(u.support(), 1u);
    EXPECT_EQ(u.at(3), MpValue(0));
    EXPECT_FALSE(u.at(2).is_finite());
    EXPECT_EQ(u.max_entry(), MpValue(0));
}

TEST(Stamp, PlusMovesOnlyTheOffset) {
    const MpStamp u = MpStamp::unit(1).plus(5).plus(-2);
    EXPECT_EQ(u.at(1), MpValue(3));
    EXPECT_EQ(u.max_entry(), MpValue(3));
    // Bottom absorbs addition.
    EXPECT_TRUE(MpStamp{}.plus(100).is_bottom());
}

TEST(Stamp, FromEntriesRejectsUnsortedOrDuplicate) {
    EXPECT_THROW(MpStamp::from_entries({{3, 1}, {2, 1}}), ArithmeticError);
    EXPECT_THROW(MpStamp::from_entries({{2, 1}, {2, 5}}), ArithmeticError);
    EXPECT_TRUE(MpStamp::from_entries({}).is_bottom());
}

TEST(Stamp, MaxWithMergesDisjointSupports) {
    const MpStamp a = MpStamp::from_entries({{0, 4}, {5, 1}});
    const MpStamp b = MpStamp::from_entries({{2, 7}});
    const MpStamp m = a.max_with(b);
    EXPECT_EQ(m.support(), 3u);
    EXPECT_EQ(m.at(0), MpValue(4));
    EXPECT_EQ(m.at(2), MpValue(7));
    EXPECT_EQ(m.at(5), MpValue(1));
}

TEST(Stamp, MaxWithTakesElementwiseMaxOnOverlap) {
    const MpStamp a = MpStamp::from_entries({{1, 10}, {2, 0}});
    const MpStamp b = MpStamp::from_entries({{1, 3}, {2, 8}});
    const MpStamp m = a.max_with(b);
    EXPECT_EQ(m.at(1), MpValue(10));
    EXPECT_EQ(m.at(2), MpValue(8));
}

TEST(Stamp, MaxWithBottomIsIdentity) {
    const MpStamp a = MpStamp::from_entries({{4, 2}});
    EXPECT_EQ(a.max_with(MpStamp{}), a);
    EXPECT_EQ(MpStamp{}.max_with(a), a);
}

TEST(Stamp, MaxWithSharedStoragePicksLargerOffset) {
    const MpStamp a = MpStamp::from_entries({{0, 1}, {9, 5}});
    const MpStamp later = a.plus(7);  // same storage, larger offset
    const MpStamp m = a.max_with(later);
    EXPECT_EQ(m, later);
    EXPECT_EQ(m.at(9), MpValue(12));
    // Symmetric order gives the same vector.
    EXPECT_EQ(later.max_with(a), m);
}

TEST(Stamp, MaxOfMatchesPairwiseFold) {
    const std::vector<MpStamp> batch = {
        MpStamp::from_entries({{0, 1}, {3, 2}}).plus(4),
        MpStamp{},
        MpStamp::from_entries({{3, 9}, {7, 0}}),
        MpStamp::unit(5),
        MpStamp::from_entries({{0, 8}}),
    };
    MpStamp folded;
    for (const MpStamp& s : batch) {
        folded = folded.max_with(s);
    }
    EXPECT_EQ(MpStamp::max_of(batch), folded);
}

TEST(Stamp, MaxOfEdgeCases) {
    EXPECT_TRUE(MpStamp::max_of({}).is_bottom());
    EXPECT_TRUE(MpStamp::max_of({MpStamp{}, MpStamp{}}).is_bottom());
    const MpStamp only = MpStamp::unit(2).plus(3);
    EXPECT_EQ(MpStamp::max_of({MpStamp{}, only, MpStamp{}}), only);
    // All handles sharing one storage: the largest offset wins outright.
    const MpStamp base = MpStamp::from_entries({{1, 1}});
    EXPECT_EQ(MpStamp::max_of({base, base.plus(5), base.plus(2)}), base.plus(5));
}

TEST(Stamp, DensifyRoundTripsThroughVectors) {
    MpVector dense(6);
    dense[1] = MpValue(4);
    dense[5] = MpValue(-2);
    const MpStamp sparse = MpStamp::from_vector(dense);
    EXPECT_EQ(sparse.support(), 2u);
    EXPECT_EQ(sparse.to_vector(6), dense);
    EXPECT_TRUE(MpStamp::from_vector(MpVector(4)).is_bottom());
}

TEST(Stamp, DensifyRejectsOutOfRangeSupport) {
    const MpStamp s = MpStamp::unit(9);
    EXPECT_THROW(s.to_vector(5), ArithmeticError);
}

TEST(Stamp, EqualityNormalisesOffsets) {
    const MpStamp a = MpStamp::from_entries({{2, 5}});
    const MpStamp b = MpStamp::from_entries({{2, 3}}).plus(2);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == b.plus(1));
    EXPECT_FALSE(a == MpStamp::from_entries({{3, 5}}));
    EXPECT_TRUE(MpStamp{} == MpStamp{});
}

TEST(Stamp, ForEachVisitsInIndexOrderWithOffsetApplied) {
    const MpStamp s = MpStamp::from_entries({{1, 10}, {4, -3}, {8, 0}}).plus(2);
    std::vector<std::pair<std::size_t, Int>> seen;
    s.for_each([&](std::size_t index, Int value) { seen.emplace_back(index, value); });
    const std::vector<std::pair<std::size_t, Int>> expected = {{1, 12}, {4, -1}, {8, 2}};
    EXPECT_EQ(seen, expected);
}

TEST(Stamp, ToStringListsFiniteEntries) {
    EXPECT_EQ(MpStamp::from_entries({{2, 5}, {7, 0}}).to_string(), "{2: 5, 7: 0}");
}

}  // namespace
}  // namespace sdf
