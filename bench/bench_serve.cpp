// bench_serve — load generator for the `sdfred serve` daemon stack.
//
// Two questions, both answered in one BENCH_serve.json:
//
//   * What does the content-addressed result cache buy?  Per model, the
//     COLD route (fresh ServeCore, so the request pays JSON parse + model
//     parse + throughput analysis) is timed against the HOT route (same
//     core, identical resubmission: JSON parse + raw-text memo + cached
//     result replay).  The CI serve-smoke job gates on hot p50 being at
//     least 5x faster than cold p50 — the cache is the point of the
//     daemon, so a regression there is a build breaker.
//   * What does the daemon sustain under concurrent clients?  A load
//     phase drives C client threads x R requests through Server::submit
//     over a warmed store and reports requests/s plus the p50/p99
//     response latency including queueing.
//
// Requests go through ServeCore::handle_line / Server::submit directly —
// the same path every transport uses — so the numbers measure the daemon,
// not socket syscalls.
//
// Flags (see docs/PERFORMANCE.md):
//   --json FILE   write a BENCH_serve.json report and skip google-benchmark
//   --reps N      cold-route repetitions per model (default 5)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "base/thread_pool.hpp"
#include "bench_json.hpp"
#include "gen/structured.hpp"
#include "io/text.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

using namespace sdf;

/// One benchmark model and its ready-to-send request line.
struct ServeModel {
    std::string name;
    Graph graph;
    std::string line;
};

std::string request_line(const Graph& graph) {
    serve::Json request = serve::Json::object();
    request.set("id", serve::Json::integer(1));
    request.set("op", serve::Json::string("throughput"));
    request.set("model", serve::Json::string(write_text_string(graph)));
    return request.dump();
}

std::vector<ServeModel> serve_models() {
    std::vector<ServeModel> models;
    const auto add = [&models](std::string name, Graph graph) {
        std::string line = request_line(graph);
        models.push_back({std::move(name), std::move(graph), std::move(line)});
    };
    add("ring_64", ring_graph(64, 3));
    add("fork_join_256", fork_join_graph(256, 3));
    add("fork_join_1024", fork_join_graph(1024, 3));
    return models;
}

double percentile(std::vector<double> sorted, double q) {
    if (sorted.empty()) return 0.0;
    const auto index = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(index, sorted.size() - 1)];
}

/// Latency distribution of individually-timed requests, in milliseconds.
struct Latency {
    std::vector<double> samples_ms;
    double p50_ms = 0;
    double p99_ms = 0;
    double mean_ms = 0;

    void finalize() {
        std::sort(samples_ms.begin(), samples_ms.end());
        p50_ms = percentile(samples_ms, 0.50);
        p99_ms = percentile(samples_ms, 0.99);
        double sum = 0;
        for (const double v : samples_ms) sum += v;
        mean_ms = samples_ms.empty()
                      ? 0.0
                      : sum / static_cast<double>(samples_ms.size());
    }
};

double elapsed_ms(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

struct ModelReport {
    std::string name;
    std::size_t actors = 0;
    std::size_t channels = 0;
    Latency cold;  ///< fresh core per request: parse + analysis every time
    Latency hot;   ///< warmed core: raw-text memo + result-cache replay
    double speedup_p50 = 0;
};

ModelReport measure_model(const ServeModel& model, int cold_reps, int hot_reps) {
    ModelReport report;
    report.name = model.name;
    report.actors = model.graph.actor_count();
    report.channels = model.graph.channel_count();

    for (int r = 0; r < cold_reps; ++r) {
        serve::ServeCore cold_core;
        const auto start = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(cold_core.handle_line(model.line));
        report.cold.samples_ms.push_back(elapsed_ms(start));
    }

    serve::ServeCore hot_core;
    hot_core.handle_line(model.line);  // prime the caches
    for (int r = 0; r < hot_reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(hot_core.handle_line(model.line));
        report.hot.samples_ms.push_back(elapsed_ms(start));
    }

    report.cold.finalize();
    report.hot.finalize();
    report.speedup_p50 = report.hot.p50_ms > 0
                             ? report.cold.p50_ms / report.hot.p50_ms
                             : 0.0;
    return report;
}

/// Warm-restart contrast: what does the DISK cache buy a freshly started
/// daemon?  Per model, a populated --cache-dir is re-opened by a brand-new
/// ServeCore (load_all + re-parse + replay = the warm start) and the first
/// request is timed — a disk hit that skips the analysis entirely — against
/// the cold p50, which pays the full analysis.
struct RestartReport {
    std::string name;
    Latency warm_start;  ///< ServeCore construction incl. cache warm-up
    Latency disk_hit;    ///< first request on the freshly warmed core
    double speedup_p50 = 0;  ///< cold p50 / disk-warmed first-request p50
};

RestartReport measure_restart(const ServeModel& model, const Latency& cold,
                              int reps) {
    RestartReport report;
    report.name = model.name;
    const std::string dir = "/tmp/sdfred-bench-restart-" +
                            std::to_string(::getpid()) + "-" + model.name;
    serve::ServeOptions options;
    options.cache_dir = dir;
    {
        serve::ServeCore writer(options);
        writer.handle_line(model.line);  // persist the entry once
    }
    for (int r = 0; r < reps; ++r) {
        const auto boot = std::chrono::steady_clock::now();
        serve::ServeCore warmed(options);
        report.warm_start.samples_ms.push_back(elapsed_ms(boot));
        const auto start = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(warmed.handle_line(model.line));
        report.disk_hit.samples_ms.push_back(elapsed_ms(start));
    }
    report.warm_start.finalize();
    report.disk_hit.finalize();
    report.speedup_p50 =
        report.disk_hit.p50_ms > 0 ? cold.p50_ms / report.disk_hit.p50_ms : 0.0;
    std::system(("rm -rf " + dir).c_str());
    return report;
}

struct LoadReport {
    int clients = 0;
    int requests = 0;
    double wall_ms = 0;
    double requests_per_s = 0;
    Latency latency;  ///< per-request submit-to-reply, queueing included
};

LoadReport measure_load(const std::vector<ServeModel>& models, int clients,
                        int per_client) {
    serve::ServeCore core;
    serve::ServerOptions options;
    options.threads = 4;
    options.max_queue = 100'000;  // measure service time, not shedding
    serve::Server server(core, options);
    for (const ServeModel& model : models) {
        server.submit(model.line, [](std::string) {});
    }
    server.drain();  // warmed: the load phase measures the hot path

    LoadReport report;
    report.clients = clients;
    report.requests = clients * per_client;
    std::mutex latency_mutex;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(static_cast<std::size_t>(report.requests));

    // Closed-loop clients: each waits for its reply before sending the
    // next request, so latency means service time at this concurrency, not
    // the depth of a queue the generator itself built up.
    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            for (int r = 0; r < per_client; ++r) {
                const std::string& line =
                    models[static_cast<std::size_t>(c + r) % models.size()].line;
                std::promise<void> done;
                const auto start = std::chrono::steady_clock::now();
                server.submit(line, [&latency_mutex, &latencies_ms, &done,
                                     start](std::string) {
                    const double ms = elapsed_ms(start);
                    {
                        std::lock_guard<std::mutex> hold(latency_mutex);
                        latencies_ms.push_back(ms);
                    }
                    done.set_value();
                });
                done.get_future().wait();
            }
        });
    }
    for (std::thread& t : threads) t.join();
    server.drain();
    report.wall_ms = elapsed_ms(wall_start);

    report.latency.samples_ms = std::move(latencies_ms);
    report.latency.finalize();
    report.requests_per_s = report.wall_ms > 0
                                ? 1000.0 * report.requests / report.wall_ms
                                : 0.0;
    return report;
}

std::string latency_json(const Latency& latency) {
    std::string out = "{";
    out += "\"samples\": " + std::to_string(latency.samples_ms.size());
    out += ", \"p50_ms\": " + sdfbench::json_num(latency.p50_ms);
    out += ", \"p99_ms\": " + sdfbench::json_num(latency.p99_ms);
    out += ", \"mean_ms\": " + sdfbench::json_num(latency.mean_ms);
    out += "}";
    return out;
}

void print_tables(const std::vector<ModelReport>& models,
                  const std::vector<RestartReport>& restarts,
                  const std::vector<LoadReport>& loads) {
    std::printf("%-16s %8s %12s %12s %12s %9s\n", "model", "actors",
                "cold p50 ms", "hot p50 ms", "hot p99 ms", "speedup");
    for (const ModelReport& r : models) {
        std::printf("%-16s %8zu %12.3f %12.4f %12.4f %8.1fx\n", r.name.c_str(),
                    r.actors, r.cold.p50_ms, r.hot.p50_ms, r.hot.p99_ms,
                    r.speedup_p50);
    }
    std::printf("\n%-16s %14s %16s %9s\n", "model", "warm-start ms",
                "disk-hit p50 ms", "speedup");
    for (const RestartReport& r : restarts) {
        std::printf("%-16s %14.3f %16.4f %8.1fx\n", r.name.c_str(),
                    r.warm_start.p50_ms, r.disk_hit.p50_ms, r.speedup_p50);
    }
    std::printf("\n%-8s %10s %10s %12s %12s %12s\n", "clients", "requests",
                "wall ms", "req/s", "p50 ms", "p99 ms");
    for (const LoadReport& r : loads) {
        std::printf("%-8d %10d %10.1f %12.0f %12.4f %12.4f\n", r.clients,
                    r.requests, r.wall_ms, r.requests_per_s, r.latency.p50_ms,
                    r.latency.p99_ms);
    }
}

void write_json(const std::string& path, const std::vector<ModelReport>& models,
                const std::vector<RestartReport>& restarts,
                const std::vector<LoadReport>& loads, int reps) {
    std::ofstream out(path);
    out << "{\n";
    out << "  \"bench\": \"bench_serve\",\n";
    out << "  \"machine\": " << sdfbench::machine_json() << ",\n";
    out << "  \"reps\": " << reps << ",\n";
    out << "  \"models\": [\n";
    for (std::size_t i = 0; i < models.size(); ++i) {
        const ModelReport& r = models[i];
        out << "    {\n";
        out << "      \"name\": \"" << sdfbench::json_escape(r.name) << "\",\n";
        out << "      \"actors\": " << r.actors << ",\n";
        out << "      \"channels\": " << r.channels << ",\n";
        out << "      \"baseline_cold\": " << latency_json(r.cold) << ",\n";
        out << "      \"optimized_hot\": " << latency_json(r.hot) << ",\n";
        out << "      \"speedup_p50\": " << sdfbench::json_num(r.speedup_p50)
            << "\n";
        out << "    }" << (i + 1 < models.size() ? ",\n" : "\n");
    }
    out << "  ],\n";
    out << "  \"restart\": [\n";
    for (std::size_t i = 0; i < restarts.size(); ++i) {
        const RestartReport& r = restarts[i];
        out << "    {\n";
        out << "      \"name\": \"" << sdfbench::json_escape(r.name) << "\",\n";
        out << "      \"warm_start\": " << latency_json(r.warm_start) << ",\n";
        out << "      \"disk_warmed_hit\": " << latency_json(r.disk_hit)
            << ",\n";
        out << "      \"speedup_p50_vs_cold\": "
            << sdfbench::json_num(r.speedup_p50) << "\n";
        out << "    }" << (i + 1 < restarts.size() ? ",\n" : "\n");
    }
    out << "  ],\n";
    out << "  \"load\": [\n";
    for (std::size_t i = 0; i < loads.size(); ++i) {
        const LoadReport& r = loads[i];
        out << "    {\n";
        out << "      \"clients\": " << r.clients << ",\n";
        out << "      \"requests\": " << r.requests << ",\n";
        out << "      \"wall_ms\": " << sdfbench::json_num(r.wall_ms) << ",\n";
        out << "      \"requests_per_s\": "
            << sdfbench::json_num(r.requests_per_s) << ",\n";
        out << "      \"latency\": " << latency_json(r.latency) << "\n";
        out << "    }" << (i + 1 < loads.size() ? ",\n" : "\n");
    }
    out << "  ]\n";
    out << "}\n";
    std::printf("wrote %s\n", path.c_str());
}

void BM_ColdRequest(benchmark::State& state) {
    const auto models = serve_models();
    const ServeModel& model = models[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        serve::ServeCore core;
        benchmark::DoNotOptimize(core.handle_line(model.line));
    }
    state.SetLabel(model.name);
}

void BM_HotRequest(benchmark::State& state) {
    const auto models = serve_models();
    const ServeModel& model = models[static_cast<std::size_t>(state.range(0))];
    serve::ServeCore core;
    core.handle_line(model.line);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core.handle_line(model.line));
    }
    state.SetLabel(model.name);
}

BENCHMARK(BM_ColdRequest)->DenseRange(0, 2);
BENCHMARK(BM_HotRequest)->DenseRange(0, 2);

}  // namespace

int main(int argc, char** argv) {
    const std::string json_path = sdfbench::consume_flag(argc, argv, "--json", "");
    const int reps = std::max(1, std::atoi(
        sdfbench::consume_flag(argc, argv, "--reps", "5").c_str()));

    const std::vector<ServeModel> models = serve_models();
    std::vector<ModelReport> model_reports;
    std::vector<RestartReport> restart_reports;
    for (std::size_t i = 0; i < models.size(); ++i) {
        model_reports.push_back(measure_model(models[i], reps, 200 * reps));
        restart_reports.push_back(
            measure_restart(models[i], model_reports[i].cold, reps));
    }
    std::vector<LoadReport> load_reports;
    for (const int clients : {1, 4, 8}) {
        load_reports.push_back(measure_load(models, clients, 500));
    }
    print_tables(model_reports, restart_reports, load_reports);

    if (!json_path.empty()) {
        write_json(json_path, model_reports, restart_reports, load_reports,
                   reps);
        return 0;
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
