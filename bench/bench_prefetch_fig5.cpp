// bench_prefetch_fig5 — reproduces the Section 7 case study (Figure 5):
// the remote-memory-access model of a full-search block-matching motion
// estimator [16].  1584 block computations per video frame are pre-fetched
// over a network-on-chip through communication assists; the obvious
// abstraction collapses 4752 actors into 3 and has *exactly* the same
// throughput as the original graph.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/throughput.hpp"
#include "gen/regular.hpp"
#include "transform/abstraction.hpp"
#include "transform/compare.hpp"

namespace {

using namespace sdf;

constexpr Int kBlocks = 1584;  // "In total, 1584 of such computations ..."

void print_case_study() {
    const Graph g = prefetch_graph(kBlocks);
    const AbstractionSpec spec = abstraction_by_name_suffix(g);
    const Graph abstract = abstract_graph(g, spec);
    const ThroughputResult original = throughput_symbolic(g);
    const ThroughputResult reduced = throughput_symbolic(abstract);
    const Rational actual = original.per_actor[*g.find_actor("C1")];
    const Rational estimate =
        reduced.per_actor[*abstract.find_actor("C")] / Rational(spec.fold());

    std::printf("Figure 5 case study: remote memory access model, %ld blocks\n",
                static_cast<long>(kBlocks));
    std::printf("  original graph : %6zu actors, %6zu channels\n", g.actor_count(),
                g.channel_count());
    std::printf("  abstract graph : %6zu actors, %6zu channels\n",
                abstract.actor_count(), abstract.channel_count());
    std::printf("  block throughput, original : %s\n", actual.to_string().c_str());
    std::printf("  block throughput, estimate : %s\n", estimate.to_string().c_str());
    std::printf("  estimate exact?            : %s  (paper: \"exactly the same "
                "throughput\")\n",
                actual == estimate ? "YES" : "NO");
    std::printf("  matches hand-built Figure 5 abstraction: %s\n\n",
                structurally_equal(abstract, prefetch_abstract()) ? "YES" : "NO");
}

void BM_PrefetchAnalyseOriginal(benchmark::State& state) {
    const Graph g = prefetch_graph(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(throughput_symbolic(g));
    }
}

void BM_PrefetchAbstractAndAnalyse(benchmark::State& state) {
    const Graph g = prefetch_graph(state.range(0));
    for (auto _ : state) {
        const AbstractionSpec spec = abstraction_by_name_suffix(g);
        benchmark::DoNotOptimize(throughput_symbolic(abstract_graph(g, spec)));
    }
}

BENCHMARK(BM_PrefetchAnalyseOriginal)->Arg(99)->Arg(396)->Arg(1584);
BENCHMARK(BM_PrefetchAbstractAndAnalyse)->Arg(99)->Arg(396)->Arg(1584);

}  // namespace

int main(int argc, char** argv) {
    print_case_study();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
