// bench_incremental — the delta-refinement payoff: one execution-time edit
// on a warm graph versus a from-scratch throughput solve.
//
// The warm path goes through the mutation protocol end to end: Graph copy
// (shares the warm AnalysisManager), set_execution_time (records the
// MutationEvent and refines a fresh manager), and the refined
// IncrementalThroughputAnalysis result — i.e. exactly what one `edit`
// request costs inside `sdfred serve`.  The baseline is throughput_symbolic
// on the same edited graph, bypassing every cache.
//
// Bit-exactness is checked on every repetition (refined period and
// per-actor vector must equal the cold solve, Rational for Rational); any
// divergence exits 1.  The speedup gate for CI:
//
//   --min-speedup X   exit 1 unless median(full) / median(edit) >= X
//
// Flags (see docs/PERFORMANCE.md):
//   --json FILE   write a BENCH_incremental.json report and skip the
//                 google-benchmark run
//   --reps N      repetitions per measurement (default 5)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "analysis/incremental.hpp"
#include "analysis/throughput.hpp"
#include "gen/structured.hpp"
#include "sdf/graph.hpp"

namespace {

using namespace sdf;

struct Fixture {
    std::string label;
    Graph graph;
    ActorId edit_actor;  ///< the worker whose time the edit lowers
    Int base_time;
    Int edited_time;
};

std::vector<Fixture> prepare() {
    std::vector<Fixture> out;
    {
        // The ISSUE's headline case: 1024 parallel workers, lower one
        // worker's time 5 -> 4.  The edit touches one actor out of 1026 and
        // one SCC out of 1026, so nearly the whole warm state survives.
        Graph g = fork_join_graph(1024, 5, 4);
        const ActorId worker = *g.find_actor("w3");
        out.push_back(Fixture{"fork_join(1024)", std::move(g), worker, 5, 4});
    }
    {
        // A single large cycle: the edit dirties the one SCC everything is
        // on, so this bounds the speedup from below (replay + one re-solve).
        Graph g = ring_graph(256, 3, 4);
        out.push_back(Fixture{"ring(256)", std::move(g), 17, 3, 2});
    }
    return out;
}

/// One edited copy through the mutation protocol; returns the refined slot.
std::shared_ptr<const IncrementalThroughput> edited_warm(const Fixture& f,
                                                         Int new_time) {
    Graph copy = f.graph;
    copy.set_execution_time(f.edit_actor, new_time);
    return copy.analyses()->cached<IncrementalThroughputAnalysis>();
}

struct Report {
    std::string name;
    std::size_t actors = 0;
    std::size_t channels = 0;
    sdfbench::Stats full;
    sdfbench::Stats edit;
    double speedup = 0;
    std::uint64_t refines = 0;
    std::uint64_t rescored_sccs = 0;
    bool bit_identical = true;
};

Report measure(const Fixture& f, int reps) {
    Report r;
    r.name = f.label;
    r.actors = f.graph.actor_count();
    r.channels = f.graph.channel_count();

    // Prime the warm state once — the cost every serve daemon already paid
    // when it first analysed the parent model.
    const auto warm = warm_throughput(f.graph);
    if (warm->state == nullptr) {
        std::printf("ERROR: %s has no warm state (too large to trace?)\n",
                    f.label.c_str());
        std::exit(1);
    }

    // The cold reference on the edited graph, and the bit-identity check.
    Graph edited_cold = f.graph;
    edited_cold.set_execution_time(f.edit_actor, f.edited_time);
    const ThroughputResult reference = throughput_symbolic(edited_cold);
    const auto refined = edited_warm(f, f.edited_time);
    if (refined == nullptr || !(refined->result.period == reference.period) ||
        refined->result.per_actor != reference.per_actor) {
        std::printf("ERROR: refined result diverges from the cold solve on %s\n",
                    f.label.c_str());
        std::exit(1);
    }
    r.refines = refined->refines;
    r.rescored_sccs = refined->rescored_sccs;

    r.full = sdfbench::measure_ms(reps, [&] {
        benchmark::DoNotOptimize(throughput_symbolic(edited_cold));
    });
    r.edit = sdfbench::measure_ms(reps, [&] {
        benchmark::DoNotOptimize(edited_warm(f, f.edited_time));
    });
    r.speedup = r.edit.median_ms > 0 ? r.full.median_ms / r.edit.median_ms : 0;
    return r;
}

void write_json(const std::string& path, const std::vector<Report>& reports,
                int reps) {
    std::ofstream out(path);
    out << "{\n";
    out << "  \"bench\": \"incremental\",\n";
    out << "  \"machine\": " << sdfbench::machine_json() << ",\n";
    out << "  \"reps\": " << reps << ",\n";
    out << "  \"cases\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const Report& r = reports[i];
        out << "    {\n";
        out << "      \"name\": \"" << sdfbench::json_escape(r.name) << "\",\n";
        out << "      \"actors\": " << r.actors << ",\n";
        out << "      \"channels\": " << r.channels << ",\n";
        out << "      \"baseline_full_solve\": " << sdfbench::stats_json(r.full)
            << ",\n";
        out << "      \"incremental_edit\": " << sdfbench::stats_json(r.edit)
            << ",\n";
        out << "      \"speedup_edit_vs_full\": " << sdfbench::json_num(r.speedup)
            << ",\n";
        out << "      \"refines\": " << r.refines << ",\n";
        out << "      \"rescored_sccs\": " << r.rescored_sccs << ",\n";
        out << "      \"bit_identical\": " << (r.bit_identical ? "true" : "false")
            << "\n";
        out << "    }" << (i + 1 < reports.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    std::printf("wrote %s\n", path.c_str());
}

void BM_FullSolve(benchmark::State& state) {
    const auto fixtures = prepare();
    const Fixture& f = fixtures[static_cast<std::size_t>(state.range(0))];
    Graph edited = f.graph;
    edited.set_execution_time(f.edit_actor, f.edited_time);
    for (auto _ : state) {
        benchmark::DoNotOptimize(throughput_symbolic(edited));
    }
    state.SetLabel(f.label);
}

void BM_IncrementalEdit(benchmark::State& state) {
    const auto fixtures = prepare();
    const Fixture& f = fixtures[static_cast<std::size_t>(state.range(0))];
    warm_throughput(f.graph);
    for (auto _ : state) {
        benchmark::DoNotOptimize(edited_warm(f, f.edited_time));
    }
    state.SetLabel(f.label);
}

BENCHMARK(BM_FullSolve)->DenseRange(0, 1);
BENCHMARK(BM_IncrementalEdit)->DenseRange(0, 1);

}  // namespace

int main(int argc, char** argv) {
    const std::string json_path = sdfbench::consume_flag(argc, argv, "--json", "");
    const int reps = std::max(1, std::atoi(
        sdfbench::consume_flag(argc, argv, "--reps", "5").c_str()));
    const double min_speedup = std::atof(
        sdfbench::consume_flag(argc, argv, "--min-speedup", "0").c_str());

    std::vector<Report> reports;
    for (const Fixture& f : prepare()) {
        reports.push_back(measure(f, reps));
    }
    std::printf("%-20s %16s %16s %10s %8s %8s\n", "test case", "full (ms)",
                "edit (ms)", "speedup", "refines", "rescored");
    for (const Report& r : reports) {
        std::printf("%-20s %16.3f %16.3f %9.1fx %8llu %8llu\n", r.name.c_str(),
                    r.full.median_ms, r.edit.median_ms, r.speedup,
                    static_cast<unsigned long long>(r.refines),
                    static_cast<unsigned long long>(r.rescored_sccs));
    }

    if (!json_path.empty()) {
        write_json(json_path, reports, reps);
    }
    // The gate applies to the headline case only: the single-cycle fixture
    // exists to document the lower bound, not to enforce it.
    if (min_speedup > 0 && reports.front().speedup < min_speedup) {
        std::printf("ERROR: %s speedup %.1fx below the %.1fx gate\n",
                    reports.front().name.c_str(), reports.front().speedup,
                    min_speedup);
        return 1;
    }
    if (!json_path.empty()) {
        return 0;
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
