// bench_throughput_methods — ablation over the three throughput routes:
// symbolic matrix + Karp (the [8]-style method the paper builds on), the
// classical-HSDF pipeline of [11, 15], and explicit state-space
// simulation.  Shows why reductions matter: the classical route's cost
// follows the iteration length, the symbolic route's the token count.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <utility>
#include <vector>

#include "analysis/throughput.hpp"
#include "base/thread_pool.hpp"
#include "gen/benchmarks.hpp"
#include "gen/regular.hpp"

namespace {

using namespace sdf;

void print_agreement() {
    std::printf("Throughput routes on the benchmark suite (periods must agree)\n");
    std::printf("%-26s %16s %16s\n", "test case", "symbolic+Karp", "classic+MCR");
    const std::vector<BenchmarkCase> cases = table1_benchmarks();
    // The models are independent, so the per-model analyses run on the
    // global thread pool; printing stays in table order afterwards.
    std::vector<std::pair<ThroughputResult, ThroughputResult>> results(cases.size());
    parallel_for(0, cases.size(), 1, [&](std::size_t i) {
        // The classical route on the two biggest cases (mp3 playback,
        // satellite) expands to thousands of actors; still fine, but the
        // exact MCR is what dominates.
        results[i] = {throughput_symbolic(cases[i].graph),
                      throughput_via_classic_hsdf(cases[i].graph)};
    });
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto& [symbolic, classic] = results[i];
        std::printf("%-26s %16s %16s\n", cases[i].label.c_str(),
                    symbolic.is_finite() ? symbolic.period.to_string().c_str() : "-",
                    classic.is_finite() ? classic.period.to_string().c_str() : "-");
    }
    std::printf("\n");
}

void BM_RouteSymbolic(benchmark::State& state) {
    const Graph g = figure1_graph(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(throughput_symbolic(g));
    }
}

void BM_RouteClassicHsdf(benchmark::State& state) {
    const Graph g = figure1_graph(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(throughput_via_classic_hsdf(g));
    }
}

void BM_RouteSimulation(benchmark::State& state) {
    const Graph g = figure1_graph(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(throughput_simulation(g));
    }
}

BENCHMARK(BM_RouteSymbolic)->RangeMultiplier(2)->Range(8, 128);
BENCHMARK(BM_RouteClassicHsdf)->RangeMultiplier(2)->Range(8, 128);
BENCHMARK(BM_RouteSimulation)->RangeMultiplier(2)->Range(8, 128);

}  // namespace

int main(int argc, char** argv) {
    print_agreement();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
