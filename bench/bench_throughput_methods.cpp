// bench_throughput_methods — ablation over the three throughput routes:
// symbolic matrix + Karp (the [8]-style method the paper builds on), the
// classical-HSDF pipeline of [11, 15], and explicit state-space
// simulation.  Shows why reductions matter: the classical route's cost
// follows the iteration length, the symbolic route's the token count.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/throughput.hpp"
#include "gen/benchmarks.hpp"
#include "gen/regular.hpp"

namespace {

using namespace sdf;

void print_agreement() {
    std::printf("Throughput routes on the benchmark suite (periods must agree)\n");
    std::printf("%-26s %16s %16s\n", "test case", "symbolic+Karp", "classic+MCR");
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        const ThroughputResult symbolic = throughput_symbolic(bench.graph);
        // The classical route on the two biggest cases (mp3 playback,
        // satellite) expands to thousands of actors; still fine, but the
        // exact MCR is what dominates.
        const ThroughputResult classic = throughput_via_classic_hsdf(bench.graph);
        std::printf("%-26s %16s %16s\n", bench.label.c_str(),
                    symbolic.is_finite() ? symbolic.period.to_string().c_str() : "-",
                    classic.is_finite() ? classic.period.to_string().c_str() : "-");
    }
    std::printf("\n");
}

void BM_RouteSymbolic(benchmark::State& state) {
    const Graph g = figure1_graph(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(throughput_symbolic(g));
    }
}

void BM_RouteClassicHsdf(benchmark::State& state) {
    const Graph g = figure1_graph(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(throughput_via_classic_hsdf(g));
    }
}

void BM_RouteSimulation(benchmark::State& state) {
    const Graph g = figure1_graph(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(throughput_simulation(g));
    }
}

BENCHMARK(BM_RouteSymbolic)->RangeMultiplier(2)->Range(8, 128);
BENCHMARK(BM_RouteClassicHsdf)->RangeMultiplier(2)->Range(8, 128);
BENCHMARK(BM_RouteSimulation)->RangeMultiplier(2)->Range(8, 128);

}  // namespace

int main(int argc, char** argv) {
    print_agreement();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
