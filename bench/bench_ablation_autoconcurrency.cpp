// bench_ablation_autoconcurrency — ablation of the self-loop modelling
// convention: SDF semantics allow unlimited concurrent firings of one
// actor; a self-loop with k tokens bounds an actor to k concurrent firings
// (k = 1: non-pipelined resource).  The sweep shows throughput saturating
// in k — the point at which the data dependencies, not the resource,
// become the bottleneck — on the benchmark applications.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/throughput.hpp"
#include "gen/benchmarks.hpp"
#include "gen/regular.hpp"

namespace {

using namespace sdf;

/// Returns `graph` with every existing self-loop re-seeded to k tokens.
Graph with_pipelining_depth(const Graph& graph, Int k) {
    Graph result = graph;
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        if (graph.channel(c).is_self_loop() && graph.channel(c).is_homogeneous()) {
            result.set_initial_tokens(c, k);
        }
    }
    return result;
}

void print_sweep(const char* label, const Graph& g) {
    std::printf("%s:\n  %6s %18s\n", label, "depth", "iteration period");
    for (const Int k : {1, 2, 3, 4, 8}) {
        const ThroughputResult t = throughput_symbolic(with_pipelining_depth(g, k));
        std::printf("  %6ld %18s\n", static_cast<long>(k),
                    t.is_finite() ? t.period.to_string().c_str() : "unbounded");
    }
    std::printf("\n");
}

void print_tables() {
    std::printf("Ablation: pipelining depth via self-loop tokens\n\n");
    print_sweep("sample rate converter", samplerate_converter());
    print_sweep("mp3 playback", mp3_playback());
    print_sweep("satellite receiver", satellite_receiver());
}

void BM_AnalyseAtDepth(benchmark::State& state) {
    const Graph g = with_pipelining_depth(samplerate_converter(), state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(throughput_symbolic(g));
    }
}

BENCHMARK(BM_AnalyseAtDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
    print_tables();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
