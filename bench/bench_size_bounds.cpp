// bench_size_bounds — validates the Section 6 size claims: the reduced
// HSDF has at most N(N+2) actors, N(2N+1) edges and N initial tokens,
// where N is the number of initial tokens of the source graph, and "in
// practice this matrix is often quite sparse".  Prints the bound versus the
// measured sizes for the benchmark suite and for random graphs of growing
// token count, then times the construction as a function of N.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "gen/benchmarks.hpp"
#include "gen/random_sdf.hpp"
#include "transform/hsdf_reduced.hpp"
#include "transform/symbolic.hpp"

namespace {

using namespace sdf;

void print_row(const char* label, const Graph& g) {
    const SymbolicIteration it = symbolic_iteration(g);
    const Int n = static_cast<Int>(it.tokens.size());
    const Graph reduced = reduced_hsdf_from_matrix(it.matrix, "r");
    std::printf("%-26s %4ld %8zu %10ld %8zu %10ld %8zu %9.1f%%\n", label,
                static_cast<long>(n), reduced.actor_count(),
                static_cast<long>(n * (n + 2)), reduced.channel_count(),
                static_cast<long>(n * (2 * n + 1)),
                it.matrix.finite_entry_count(),
                n == 0 ? 0.0
                       : 100.0 * static_cast<double>(it.matrix.finite_entry_count()) /
                             (static_cast<double>(n) * static_cast<double>(n)));
}

void print_bounds() {
    std::printf("Section 6 size bounds: actors <= N(N+2), edges <= N(2N+1)\n");
    std::printf("%-26s %4s %8s %10s %8s %10s %8s %10s\n", "graph", "N", "actors",
                "bound", "edges", "bound", "nnz", "density");
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        print_row(bench.label.c_str(), bench.graph);
    }
    std::mt19937 rng(2009);
    for (const Int actors : {6, 10, 14}) {
        RandomSdfOptions options;
        options.min_actors = actors;
        options.max_actors = actors;
        const Graph g = random_sdf(rng, options);
        const std::string label = "random (" + std::to_string(actors) + " actors)";
        print_row(label.c_str(), g);
    }
    std::printf("\n");
}

void BM_ReducedConstructionByTokenCount(benchmark::State& state) {
    // A ring of k actors with one token each: N = k, tridiagonal-ish matrix.
    const Int k = state.range(0);
    Graph g;
    std::vector<ActorId> ids;
    for (Int i = 0; i < k; ++i) {
        ids.push_back(g.add_actor("a" + std::to_string(i), 3));
    }
    for (Int i = 0; i < k; ++i) {
        g.add_channel(ids[static_cast<std::size_t>(i)],
                      ids[static_cast<std::size_t>((i + 1) % k)], 1);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(to_hsdf_reduced(g));
    }
    state.SetComplexityN(k);
}

BENCHMARK(BM_ReducedConstructionByTokenCount)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity();

}  // namespace

int main(int argc, char** argv) {
    print_bounds();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
