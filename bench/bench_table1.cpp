// bench_table1 — reproduces Table 1 and Figure 6 of the paper:
// "HSDF Transformations Compared" on the 8 SDF3 benchmark applications.
//
// Prints the table rows (test case, traditional-conversion actors, new-
// conversion actors, ratio) next to the paper's published numbers, then the
// Figure 6 series (the same data as the log-scale bar chart), and finally
// times both conversions with google-benchmark (Section 7: "The run-time of
// the algorithms is a few milliseconds").
#include <benchmark/benchmark.h>

#include <cstdio>

#include "gen/benchmarks.hpp"
#include "transform/hsdf_classic.hpp"
#include "transform/hsdf_reduced.hpp"
#include "transform/symbolic.hpp"

namespace {

using namespace sdf;

void print_table1() {
    std::printf("Table 1: HSDF Transformations Compared\n");
    std::printf("%-26s | %12s | %10s | %7s || %12s | %10s | %7s\n", "test case",
                "traditional", "new conv.", "ratio", "paper trad.", "paper new",
                "p.ratio");
    std::printf("%-26s | %12s | %10s | %7s || %12s | %10s | %7s\n", "",
                "actors", "actors", "", "actors", "actors", "");
    std::printf("---------------------------+--------------+------------+---------"
                "++--------------+------------+--------\n");
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        const ClassicHsdf classic = to_hsdf_classic(bench.graph);
        const Graph reduced = to_hsdf_reduced(bench.graph);
        const double ratio = static_cast<double>(classic.graph.actor_count()) /
                             static_cast<double>(reduced.actor_count());
        const double paper_ratio = static_cast<double>(bench.paper_traditional) /
                                   static_cast<double>(bench.paper_new);
        std::printf("%-26s | %12zu | %10zu | %7.2f || %12ld | %10ld | %7.2f\n",
                    bench.label.c_str(), classic.graph.actor_count(),
                    reduced.actor_count(), ratio,
                    static_cast<long>(bench.paper_traditional),
                    static_cast<long>(bench.paper_new), paper_ratio);
    }
    std::printf("\nFigure 6 series (number of actors, log scale in the paper):\n");
    std::printf("%-26s %14s %14s\n", "test case", "traditional", "new");
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        const ClassicHsdf classic = to_hsdf_classic(bench.graph);
        const Graph reduced = to_hsdf_reduced(bench.graph);
        std::printf("%-26s %14zu %14zu\n", bench.label.c_str(),
                    classic.graph.actor_count(), reduced.actor_count());
    }
    std::printf("\n");
}

void BM_TraditionalConversion(benchmark::State& state) {
    const auto cases = table1_benchmarks();
    const BenchmarkCase& bench = cases[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(to_hsdf_classic(bench.graph));
    }
    state.SetLabel(bench.label);
}

void BM_NewConversion(benchmark::State& state) {
    const auto cases = table1_benchmarks();
    const BenchmarkCase& bench = cases[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(to_hsdf_reduced(bench.graph));
    }
    state.SetLabel(bench.label);
}

BENCHMARK(BM_TraditionalConversion)->DenseRange(0, 7);
BENCHMARK(BM_NewConversion)->DenseRange(0, 7);

}  // namespace

int main(int argc, char** argv) {
    print_table1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
