// bench_ablation_pruning — ablation of the Section 4.2 redundant-edge
// pruning: an abstraction maps every original channel onto an abstract one,
// so the raw abstract graph has as many channels as the original; pruning
// keeps one minimum-delay representative per parallel group.  Measures the
// channel reduction and the effect on analysis time.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/throughput.hpp"
#include "gen/regular.hpp"
#include "transform/abstraction.hpp"

namespace {

using namespace sdf;

void print_ablation() {
    std::printf("Ablation: Section 4.2 redundant parallel-edge pruning\n");
    std::printf("%8s %16s %16s %16s\n", "n", "orig channels", "abs unpruned",
                "abs pruned");
    for (Int n = 6; n <= 1536; n *= 4) {
        const Graph g = figure1_graph(n);
        const AbstractionSpec spec = abstraction_by_name_suffix(g);
        const Graph unpruned = abstract_graph(g, spec, /*prune=*/false);
        const Graph pruned = abstract_graph(g, spec, /*prune=*/true);
        std::printf("%8ld %16zu %16zu %16zu\n", static_cast<long>(n),
                    g.channel_count(), unpruned.channel_count(),
                    pruned.channel_count());
    }
    std::printf("\n(Pruning never changes the computed period; verified by the "
                "test suite.)\n\n");
}

void BM_AnalyseUnprunedAbstract(benchmark::State& state) {
    const Graph g = figure1_graph(state.range(0));
    const Graph abstract =
        abstract_graph(g, abstraction_by_name_suffix(g), /*prune=*/false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(throughput_symbolic(abstract));
    }
}

void BM_AnalysePrunedAbstract(benchmark::State& state) {
    const Graph g = figure1_graph(state.range(0));
    const Graph abstract =
        abstract_graph(g, abstraction_by_name_suffix(g), /*prune=*/true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(throughput_symbolic(abstract));
    }
}

// The unpruned abstract graph of figure1_graph(n) carries ~4n initial
// tokens, so its iteration matrix grows quadratically — exactly the cost
// pruning avoids.  Keep the sweep modest.
BENCHMARK(BM_AnalyseUnprunedAbstract)->RangeMultiplier(2)->Range(24, 192);
BENCHMARK(BM_AnalysePrunedAbstract)->RangeMultiplier(2)->Range(24, 192);

}  // namespace

int main(int argc, char** argv) {
    print_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
