// bench_json.hpp — machine-readable reporting for the bench harness.
//
// Every bench that participates in the perf trajectory accepts
//
//     --json <file>    write a BENCH_*.json report and exit
//     --reps <n>       wall-time repetitions per measurement (default 5)
//
// and records, per model: name, graph sizes, matrix density, the wall-time
// distribution over the repetitions, and the pool's thread count.  Reports
// always carry a baseline (dense/serial) and an optimized measurement taken
// in the same run, so a single file documents the speedup without needing a
// second checkout to compare against.  docs/PERFORMANCE.md describes the
// schema and how the CI bench-smoke job archives the files.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "base/cpudispatch.hpp"
#include "base/thread_pool.hpp"

namespace sdfbench {

/// Wall-time distribution of repeated runs, all in milliseconds.
struct Stats {
    int reps = 0;
    std::vector<double> samples_ms;
    double min_ms = 0;
    double max_ms = 0;
    double mean_ms = 0;
    double median_ms = 0;
    double stddev_ms = 0;
};

/// Runs `fn` `reps` times under a steady_clock and summarises.
template <typename Fn>
Stats measure_ms(int reps, Fn&& fn) {
    Stats s;
    s.reps = reps;
    s.samples_ms.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const auto end = std::chrono::steady_clock::now();
        s.samples_ms.push_back(std::chrono::duration<double, std::milli>(end - start).count());
    }
    std::vector<double> sorted = s.samples_ms;
    std::sort(sorted.begin(), sorted.end());
    s.min_ms = sorted.front();
    s.max_ms = sorted.back();
    const std::size_t n = sorted.size();
    s.median_ms = (n % 2 == 1) ? sorted[n / 2] : (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
    double sum = 0;
    for (const double v : sorted) {
        sum += v;
    }
    s.mean_ms = sum / static_cast<double>(n);
    double var = 0;
    for (const double v : sorted) {
        var += (v - s.mean_ms) * (v - s.mean_ms);
    }
    s.stddev_ms = n > 1 ? std::sqrt(var / static_cast<double>(n - 1)) : 0.0;
    return s;
}

inline std::string json_escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
    return out;
}

inline std::string json_num(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/// '{"reps": 5, "min_ms": ..., ..., "samples_ms": [...]}'.
inline std::string stats_json(const Stats& s) {
    std::string out = "{";
    out += "\"reps\": " + std::to_string(s.reps);
    out += ", \"min_ms\": " + json_num(s.min_ms);
    out += ", \"median_ms\": " + json_num(s.median_ms);
    out += ", \"mean_ms\": " + json_num(s.mean_ms);
    out += ", \"max_ms\": " + json_num(s.max_ms);
    out += ", \"stddev_ms\": " + json_num(s.stddev_ms);
    out += ", \"samples_ms\": [";
    for (std::size_t i = 0; i < s.samples_ms.size(); ++i) {
        if (i > 0) {
            out += ", ";
        }
        out += json_num(s.samples_ms[i]);
    }
    out += "]}";
    return out;
}

/// The CPU model string from /proc/cpuinfo ("unknown" off Linux) — a perf
/// number without the machine it ran on is not comparable to anything.
inline std::string cpu_model_name() {
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
        const std::string key = "model name";
        if (line.compare(0, key.size(), key) == 0) {
            const std::size_t colon = line.find(':');
            if (colon != std::string::npos) {
                std::size_t begin = colon + 1;
                while (begin < line.size() && line[begin] == ' ') {
                    ++begin;
                }
                return line.substr(begin);
            }
        }
    }
    return "unknown";
}

/// Provenance block every BENCH_*.json carries: the CPU, the kernel ISA
/// tier actually dispatched (after any SDFRED_ISA override), the pool size
/// actually constructed (after any SDFRED_THREADS override, which is also
/// echoed back raw), and the source revision the binary was built from.
inline std::string machine_json() {
    std::string out = "{";
    out += "\"cpu\": \"" + json_escape(cpu_model_name()) + "\"";
    out += ", \"isa\": \"";
    out += sdf::isa_tier_name(sdf::active_isa_tier());
    out += "\"";
    out += ", \"threads\": " + std::to_string(sdf::global_thread_pool().size());
    const char* threads_env = std::getenv("SDFRED_THREADS");
    out += ", \"threads_env\": ";
    out += threads_env != nullptr ? "\"" + json_escape(threads_env) + "\"" : "null";
#if defined(SDFRED_GIT_SHA)
    out += ", \"git_sha\": \"" + json_escape(SDFRED_GIT_SHA) + "\"";
#else
    out += ", \"git_sha\": \"unknown\"";
#endif
    out += "}";
    return out;
}

/// Removes "--flag value" from argv; returns value or `fallback`.
inline std::string consume_flag(int& argc, char** argv, const std::string& flag,
                                const std::string& fallback) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag) {
            const std::string value = argv[i + 1];
            for (int j = i; j + 2 < argc; ++j) {
                argv[j] = argv[j + 2];
            }
            argc -= 2;
            return value;
        }
    }
    return fallback;
}

}  // namespace sdfbench
