// bench_mapping — multiprocessor design exploration on the regular
// application graphs: throughput of the bound system versus processor
// count (LPT load balancing, PASS-projected static orders).  This is the
// downstream flow ([13, 15, 16]) whose inner loop the paper's reductions
// accelerate; the printed table shows the classic saturation shape —
// speedup grows with processors until the application's own critical cycle
// takes over.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/throughput.hpp"
#include "gen/regular.hpp"
#include "mapping/bind.hpp"

namespace {

using namespace sdf;

void print_exploration(const char* label, const Graph& g) {
    const ThroughputResult ideal = throughput_symbolic(g);
    std::printf("%s (unmapped period %s):\n", label, ideal.period.to_string().c_str());
    std::printf("  %10s %16s %10s\n", "processors", "period", "speedup");
    const Rational serial =
        throughput_symbolic(bind(g, balance_load(g, 1))).period;
    for (const std::size_t p : {1u, 2u, 4u, 8u, 16u}) {
        const Graph bound = bind(g, balance_load(g, p));
        const ThroughputResult t = throughput_symbolic(bound);
        std::printf("  %10zu %16s %10.2f\n", p, t.period.to_string().c_str(),
                    serial.to_double() / t.period.to_double());
    }
    std::printf("\n");
}

void print_tables() {
    print_exploration("figure1(24)", figure1_graph(24));
    print_exploration("prefetch(24)", prefetch_graph(24));
}

void BM_BindAndAnalyse(benchmark::State& state) {
    const Graph g = figure1_graph(48);
    const auto processors = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        const Graph bound = bind(g, balance_load(g, processors));
        benchmark::DoNotOptimize(throughput_symbolic(bound));
    }
}

BENCHMARK(BM_BindAndAnalyse)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
    print_tables();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
