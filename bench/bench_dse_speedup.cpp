// bench_dse_speedup — which reduction carries a buffer-sizing design-space
// exploration?  Every candidate allocation closes the graph with reverse
// capacity channels and asks for its throughput; the two exact routes
// scale differently:
//
//   * the symbolic reduction's cost follows the INITIAL TOKEN COUNT — and
//     capacity channels add one token per buffer slot, so rate-heavy
//     applications (h.263 with rate 594) inflate N into the thousands;
//   * the classical expansion's cost follows the ITERATION LENGTH, which
//     capacities do not change.
//
// The measured winner flips exactly along the paper's Table 1 ratio: the
// symbolic route dominates where iteration length >> tokens (sample rate
// converter: ~8x here), the classical route where tokens are plentiful and
// iterations short (modem — the same case where Table 1's new conversion
// is larger than the traditional one).  This is the quantitative form of
// the paper's closing remark that "it is possible to assess beforehand
// when this might occur".
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/buffers.hpp"
#include "analysis/throughput.hpp"
#include "base/thread_pool.hpp"
#include "gen/benchmarks.hpp"

namespace {

using namespace sdf;

/// The four Table 1 applications on which both routes finish in
/// benchmark-friendly time (the four omitted ones only widen the gaps in
/// the directions reported here).
std::vector<BenchmarkCase> dse_cases() {
    const auto all = table1_benchmarks();
    return {all[1], all[2], all[4], all[6]};  // encoder, modem, granule, samplerate
}

/// One DSE sweep: evaluate `steps` uniform capacity scalings.  The
/// candidate evaluations are independent, so they are dispatched on the
/// global thread pool (one capacity point per index) and reduced after.
template <typename Evaluate>
Rational sweep(const Graph& app, Int steps, const Evaluate& evaluate) {
    std::vector<Rational> rates(static_cast<std::size_t>(steps), Rational(0));
    parallel_for(0, static_cast<std::size_t>(steps), 1, [&](std::size_t point) {
        const Int s = static_cast<Int>(point) + 1;
        std::vector<Int> capacities;
        capacities.reserve(app.channel_count());
        for (ChannelId c = 0; c < app.channel_count(); ++c) {
            const Channel& ch = app.channel(c);
            const Int base = std::max<Int>({ch.production, ch.consumption,
                                            ch.initial_tokens});
            capacities.push_back(ch.is_self_loop() ? ch.initial_tokens : base * s);
        }
        const ThroughputResult t = evaluate(with_buffer_capacities(app, capacities));
        if (t.is_finite() && !t.period.is_zero()) {
            rates[point] = t.period.reciprocal();
        }
    });
    Rational best(0);
    for (const Rational& rate : rates) {
        if (rate > best) {
            best = rate;
        }
    }
    return best;
}

void print_note() {
    std::printf("Buffer-sizing DSE, 8 capacity points per app, both exact routes.\n");
    std::printf("Best rates found are identical (route agreement is enforced by the\n");
    std::printf("property tests); what differs is cost: symbolic ~ tokens^2..3,\n");
    std::printf("classical ~ iteration length — the Table 1 trade-off, relived.\n\n");
}

void BM_DseViaSymbolicReduction(benchmark::State& state) {
    const auto cases = dse_cases();
    const BenchmarkCase& bench = cases[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sweep(bench.graph, 8, [](const Graph& g) { return throughput_symbolic(g); }));
    }
    state.SetLabel(bench.label);
}

void BM_DseViaClassicHsdf(benchmark::State& state) {
    const auto cases = dse_cases();
    const BenchmarkCase& bench = cases[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(sweep(
            bench.graph, 8, [](const Graph& g) { return throughput_via_classic_hsdf(g); }));
    }
    state.SetLabel(bench.label);
}

BENCHMARK(BM_DseViaSymbolicReduction)->DenseRange(0, 3);
BENCHMARK(BM_DseViaClassicHsdf)->DenseRange(0, 3);

}  // namespace

int main(int argc, char** argv) {
    print_note();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
