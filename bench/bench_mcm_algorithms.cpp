// bench_mcm_algorithms — ablation over the cycle-metric solvers the
// throughput analyses can sit on (the paper cites Dasdan/Irani/Gupta [5]
// for this design space): Karp's exact max cycle mean on the iteration
// matrix (serial and pooled per-SCC variants), the exact Stern–Brocot max
// cycle ratio on the reduced HSDF, and Howard's floating-point policy
// iteration.
//
// Flags (see docs/PERFORMANCE.md):
//   --json FILE   write BENCH_mcm.json-style report and skip the
//                 google-benchmark run
//   --reps N      repetitions per measurement (default 5)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "base/thread_pool.hpp"
#include "gen/benchmarks.hpp"
#include "gen/structured.hpp"
#include "maxplus/mcm.hpp"
#include "sdf/properties.hpp"
#include "transform/hsdf_reduced.hpp"
#include "transform/symbolic.hpp"

namespace {

using namespace sdf;

struct Prepared {
    std::string label;
    Digraph matrix_graph;   // precedence graph of the iteration matrix
    Digraph reduced_graph;  // dependency digraph of the reduced HSDF
};

std::vector<Prepared> prepare() {
    std::vector<Prepared> out;
    std::vector<BenchmarkCase> cases = table1_benchmarks();
    // A large scaling case: the per-SCC Karp dispatch and the serial
    // baseline diverge only when there is real work per component.
    cases.push_back(BenchmarkCase{"fork_join(1024)", fork_join_graph(1024, 5, 4)});
    for (const BenchmarkCase& bench : cases) {
        const SymbolicIteration it = symbolic_iteration(bench.graph);
        out.push_back(Prepared{
            bench.label,
            it.matrix.precedence_graph(),
            dependency_digraph(reduced_hsdf_from_matrix(it.matrix, "r")),
        });
    }
    return out;
}

void print_agreement(const std::vector<Prepared>& prepared) {
    std::printf("Cycle-metric solvers on the benchmark suite (must agree)\n");
    std::printf("%-26s %14s %16s %14s\n", "test case", "Karp (exact)",
                "SternBrocot", "Howard (f64)");
    for (const Prepared& p : prepared) {
        const CycleMetric karp = max_cycle_mean_karp(p.matrix_graph);
        const CycleMetric serial = max_cycle_mean_karp_serial(p.matrix_graph);
        if (karp.outcome != serial.outcome ||
            (karp.is_finite() && !(karp.value == serial.value))) {
            std::printf("ERROR: pooled and serial Karp disagree on %s\n",
                        p.label.c_str());
            std::exit(1);
        }
        const CycleMetric exact = max_cycle_ratio_exact(p.reduced_graph);
        const CycleMetricDouble howard = max_cycle_ratio_howard(p.reduced_graph);
        std::printf("%-26s %14s %16s %14.3f\n", p.label.c_str(),
                    karp.is_finite() ? karp.value.to_string().c_str() : "-",
                    exact.is_finite() ? exact.value.to_string().c_str() : "-",
                    howard.outcome == CycleOutcome::finite ? howard.value : -1.0);
    }
    std::printf("\n");
}

struct McmReport {
    std::string name;
    std::size_t nodes = 0;
    std::size_t edges = 0;
    sdfbench::Stats baseline_serial;   // max_cycle_mean_karp_serial
    sdfbench::Stats optimized_pooled;  // max_cycle_mean_karp (thread pool)
    sdfbench::Stats stern_brocot;
    sdfbench::Stats howard;
    double speedup = 0;  // serial median / pooled median
};

McmReport measure(const Prepared& p, int reps) {
    McmReport r;
    r.name = p.label;
    r.nodes = p.matrix_graph.node_count();
    r.edges = p.matrix_graph.edge_count();
    r.baseline_serial = sdfbench::measure_ms(reps, [&] {
        benchmark::DoNotOptimize(max_cycle_mean_karp_serial(p.matrix_graph));
    });
    r.optimized_pooled = sdfbench::measure_ms(reps, [&] {
        benchmark::DoNotOptimize(max_cycle_mean_karp(p.matrix_graph));
    });
    r.stern_brocot = sdfbench::measure_ms(reps, [&] {
        benchmark::DoNotOptimize(max_cycle_ratio_exact(p.reduced_graph));
    });
    r.howard = sdfbench::measure_ms(reps, [&] {
        benchmark::DoNotOptimize(max_cycle_ratio_howard(p.reduced_graph));
    });
    r.speedup = r.optimized_pooled.median_ms > 0
                    ? r.baseline_serial.median_ms / r.optimized_pooled.median_ms
                    : 0;
    return r;
}

void write_json(const std::string& path, const std::vector<McmReport>& reports,
                int reps) {
    std::ofstream out(path);
    out << "{\n";
    out << "  \"bench\": \"bench_mcm_algorithms\",\n";
    out << "  \"machine\": " << sdfbench::machine_json() << ",\n";
    out << "  \"threads\": " << global_thread_pool().size() << ",\n";
    out << "  \"reps\": " << reps << ",\n";
    out << "  \"models\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const McmReport& r = reports[i];
        out << "    {\n";
        out << "      \"name\": \"" << sdfbench::json_escape(r.name) << "\",\n";
        out << "      \"precedence_nodes\": " << r.nodes << ",\n";
        out << "      \"precedence_edges\": " << r.edges << ",\n";
        out << "      \"baseline_karp_serial\": " << sdfbench::stats_json(r.baseline_serial)
            << ",\n";
        out << "      \"optimized_karp_pooled\": "
            << sdfbench::stats_json(r.optimized_pooled) << ",\n";
        out << "      \"stern_brocot_exact\": " << sdfbench::stats_json(r.stern_brocot)
            << ",\n";
        out << "      \"howard_double\": " << sdfbench::stats_json(r.howard) << ",\n";
        out << "      \"speedup_pooled_vs_serial\": " << sdfbench::json_num(r.speedup)
            << "\n";
        out << "    }" << (i + 1 < reports.size() ? ",\n" : "\n");
    }
    out << "  ]\n";
    out << "}\n";
    std::printf("wrote %s\n", path.c_str());
}

void BM_KarpPooled(benchmark::State& state) {
    const auto prepared = prepare();
    const Prepared& p = prepared[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(max_cycle_mean_karp(p.matrix_graph));
    }
    state.SetLabel(p.label);
}

void BM_KarpSerial(benchmark::State& state) {
    const auto prepared = prepare();
    const Prepared& p = prepared[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(max_cycle_mean_karp_serial(p.matrix_graph));
    }
    state.SetLabel(p.label);
}

void BM_SternBrocotExact(benchmark::State& state) {
    const auto prepared = prepare();
    const Prepared& p = prepared[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(max_cycle_ratio_exact(p.reduced_graph));
    }
    state.SetLabel(p.label);
}

void BM_HowardDouble(benchmark::State& state) {
    const auto prepared = prepare();
    const Prepared& p = prepared[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(max_cycle_ratio_howard(p.reduced_graph));
    }
    state.SetLabel(p.label);
}

BENCHMARK(BM_KarpPooled)->DenseRange(0, 8);
BENCHMARK(BM_KarpSerial)->DenseRange(0, 8);
BENCHMARK(BM_SternBrocotExact)->DenseRange(0, 8);
BENCHMARK(BM_HowardDouble)->DenseRange(0, 8);

}  // namespace

int main(int argc, char** argv) {
    const std::string json_path = sdfbench::consume_flag(argc, argv, "--json", "");
    const int reps = std::max(1, std::atoi(
        sdfbench::consume_flag(argc, argv, "--reps", "5").c_str()));

    const std::vector<Prepared> prepared = prepare();
    print_agreement(prepared);

    if (!json_path.empty()) {
        std::vector<McmReport> reports;
        for (const Prepared& p : prepared) {
            reports.push_back(measure(p, reps));
        }
        write_json(json_path, reports, reps);
        return 0;
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
