// bench_mcm_algorithms — ablation over the cycle-metric solvers the
// throughput analyses can sit on (the paper cites Dasdan/Irani/Gupta [5]
// for this design space): Karp's exact max cycle mean on the iteration
// matrix, the exact Stern–Brocot max cycle ratio on the reduced HSDF, and
// Howard's floating-point policy iteration.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "gen/benchmarks.hpp"
#include "maxplus/mcm.hpp"
#include "sdf/properties.hpp"
#include "transform/hsdf_reduced.hpp"
#include "transform/symbolic.hpp"

namespace {

using namespace sdf;

struct Prepared {
    std::string label;
    Digraph matrix_graph;   // precedence graph of the iteration matrix
    Digraph reduced_graph;  // dependency digraph of the reduced HSDF
};

std::vector<Prepared> prepare() {
    std::vector<Prepared> out;
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        const SymbolicIteration it = symbolic_iteration(bench.graph);
        out.push_back(Prepared{
            bench.label,
            it.matrix.precedence_graph(),
            dependency_digraph(reduced_hsdf_from_matrix(it.matrix, "r")),
        });
    }
    return out;
}

void print_agreement() {
    std::printf("Cycle-metric solvers on the benchmark suite (must agree)\n");
    std::printf("%-26s %14s %16s %14s\n", "test case", "Karp (exact)",
                "SternBrocot", "Howard (f64)");
    for (const Prepared& p : prepare()) {
        const CycleMetric karp = max_cycle_mean_karp(p.matrix_graph);
        const CycleMetric exact = max_cycle_ratio_exact(p.reduced_graph);
        const CycleMetricDouble howard = max_cycle_ratio_howard(p.reduced_graph);
        std::printf("%-26s %14s %16s %14.3f\n", p.label.c_str(),
                    karp.is_finite() ? karp.value.to_string().c_str() : "-",
                    exact.is_finite() ? exact.value.to_string().c_str() : "-",
                    howard.outcome == CycleOutcome::finite ? howard.value : -1.0);
    }
    std::printf("\n");
}

void BM_Karp(benchmark::State& state) {
    const auto prepared = prepare();
    const Prepared& p = prepared[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(max_cycle_mean_karp(p.matrix_graph));
    }
    state.SetLabel(p.label);
}

void BM_SternBrocotExact(benchmark::State& state) {
    const auto prepared = prepare();
    const Prepared& p = prepared[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(max_cycle_ratio_exact(p.reduced_graph));
    }
    state.SetLabel(p.label);
}

void BM_HowardDouble(benchmark::State& state) {
    const auto prepared = prepare();
    const Prepared& p = prepared[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(max_cycle_ratio_howard(p.reduced_graph));
    }
    state.SetLabel(p.label);
}

BENCHMARK(BM_Karp)->DenseRange(0, 7);
BENCHMARK(BM_SternBrocotExact)->DenseRange(0, 7);
BENCHMARK(BM_HowardDouble)->DenseRange(0, 7);

}  // namespace

int main(int argc, char** argv) {
    print_agreement();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
