// bench_scenarios — the scenario extension quantified: worst-case period
// over arbitrary mode switching versus the standalone periods, and the cost
// of the analysis itself as the number of scenarios grows.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "gen/regular.hpp"
#include "transform/scenarios.hpp"

namespace {

using namespace sdf;

/// Figure-1-shaped scenario: the same structure with mode-dependent times.
Graph mode(Int n, Int scale) {
    Graph g = figure1_graph(n);
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        g.set_execution_time(a, g.actor(a).execution_time * scale);
    }
    g.set_name(g.name() + "_x" + std::to_string(scale));
    return g;
}

void print_table() {
    std::printf("Scenario analysis on the figure1(8) structure\n");
    std::printf("%10s %22s %18s\n", "scenarios", "standalone periods", "worst case");
    for (const int count : {1, 2, 3, 4}) {
        std::vector<Scenario> scenarios;
        std::string standalone;
        for (int s = 1; s <= count; ++s) {
            scenarios.push_back({"x" + std::to_string(s), mode(8, s)});
        }
        const ScenarioAnalysis analysis = analyse_scenarios(scenarios);
        for (const Rational& p : analysis.periods) {
            standalone += p.to_string() + " ";
        }
        std::printf("%10d %22s %18s\n", count, standalone.c_str(),
                    analysis.worst_case_period.to_string().c_str());
    }
    std::printf("\n");
}

void BM_AnalyseScenarios(benchmark::State& state) {
    std::vector<Scenario> scenarios;
    for (Int s = 1; s <= state.range(0); ++s) {
        scenarios.push_back({"x" + std::to_string(s), mode(16, s)});
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(analyse_scenarios(scenarios));
    }
}

BENCHMARK(BM_AnalyseScenarios)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
    print_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
