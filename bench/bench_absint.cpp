// bench_absint — cost and precision of the abstract-interpretation layer
// (src/absint) on the structured workload families.
//
// Two questions the static-analysis milestone cares about:
//  * how the interval solver scales with graph size (chain(N) and
//    fork_join(N) sweeps: solver wall time and abstract transfer count),
//  * how tight the certified buffer bounds are against observed reality
//    (gap = certified bound / simulated peak occupancy, >= 1, 1 = exact).
//
// The "simulated peak" is a deterministic round-robin admissible execution
// long enough to cycle the graph several iterations — a lower bound on the
// true worst case, so the reported gap is an upper bound on the real gap.
//
// Flags (see docs/PERFORMANCE.md):
//   --json FILE   write a BENCH_absint.json report and skip the
//                 google-benchmark run
//   --reps N      repetitions per measurement (default 5)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "absint/certificate.hpp"
#include "absint/token_intervals.hpp"
#include "base/thread_pool.hpp"
#include "bench_json.hpp"
#include "gen/structured.hpp"

namespace {

using namespace sdf;

/// Deterministic admissible execution: round-robin over the actors, firing
/// each enabled one once per sweep, for `sweeps` sweeps.  Returns the peak
/// token count observed per channel (initial state included).
std::vector<Int> simulated_peaks(const Graph& g, int sweeps) {
    std::vector<Int> tokens(g.channel_count());
    std::vector<Int> peak(g.channel_count());
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        tokens[c] = g.channel(c).initial_tokens;
        peak[c] = tokens[c];
    }
    for (int s = 0; s < sweeps; ++s) {
        for (ActorId a = 0; a < g.actor_count(); ++a) {
            bool enabled = true;
            for (ChannelId c = 0; c < g.channel_count() && enabled; ++c) {
                enabled = g.channel(c).dst != a ||
                          tokens[c] >= g.channel(c).consumption;
            }
            if (!enabled) {
                continue;
            }
            for (ChannelId c = 0; c < g.channel_count(); ++c) {
                if (g.channel(c).dst == a) {
                    tokens[c] -= g.channel(c).consumption;
                }
                if (g.channel(c).src == a) {
                    tokens[c] += g.channel(c).production;
                }
                peak[c] = std::max(peak[c], tokens[c]);
            }
        }
    }
    return peak;
}

struct AbsintReport {
    std::string name;
    std::size_t actors = 0;
    std::size_t channels = 0;
    std::uint64_t solver_steps = 0;
    std::size_t bounded_channels = 0;   // channels with a finite certified bound
    std::size_t exact_channels = 0;     // certified bound == simulated peak
    double mean_gap = 0;                // mean bound/peak over bounded channels
    double max_gap = 0;
    bool certificate_verified = false;
    sdfbench::Stats solve;              // token_intervals
    sdfbench::Stats certify;            // certify + independent verify
};

AbsintReport measure(const std::string& name, const Graph& g, int reps) {
    AbsintReport r;
    r.name = name;
    r.actors = g.actor_count();
    r.channels = g.channel_count();

    const absint::TokenIntervals ti = absint::token_intervals(g);
    r.solver_steps = ti.solver_steps;
    const absint::CertifiedBounds certified = absint::certify_buffer_bounds(g, ti);
    r.certificate_verified = absint::verify_certificate(g, certified).ok;

    const std::vector<Int> peaks = simulated_peaks(g, 16);
    double gap_sum = 0;
    for (const absint::BoundCertificate& cert : certified.certificates) {
        if (!cert.bound.has_value() || peaks[cert.channel] <= 0) {
            continue;
        }
        r.bounded_channels += 1;
        const double gap = static_cast<double>(*cert.bound) /
                           static_cast<double>(peaks[cert.channel]);
        r.exact_channels += *cert.bound == peaks[cert.channel] ? 1 : 0;
        gap_sum += gap;
        r.max_gap = std::max(r.max_gap, gap);
    }
    r.mean_gap = r.bounded_channels > 0
                     ? gap_sum / static_cast<double>(r.bounded_channels)
                     : 0.0;

    r.solve = sdfbench::measure_ms(reps, [&] {
        benchmark::DoNotOptimize(absint::token_intervals(g));
    });
    r.certify = sdfbench::measure_ms(reps, [&] {
        const absint::CertifiedBounds bounds = absint::certify_buffer_bounds(g, ti);
        benchmark::DoNotOptimize(absint::verify_certificate(g, bounds));
    });
    return r;
}

std::vector<std::pair<std::string, Graph>> workloads() {
    std::vector<std::pair<std::string, Graph>> cases;
    for (const Int n : {4, 8, 16, 32, 64}) {
        cases.emplace_back("chain(" + std::to_string(n) + ")",
                           chain_graph(std::vector<Int>(static_cast<std::size_t>(n), 1),
                                       2));
    }
    for (const Int w : {2, 4, 8, 16, 32}) {
        cases.emplace_back("fork_join(" + std::to_string(w) + ")",
                           fork_join_graph(w, 1, 2));
    }
    return cases;
}

void print_table(const std::vector<AbsintReport>& reports) {
    std::printf("Interval solver scaling and certified-bound tightness "
                "(gap = bound / simulated peak, 1 = exact)\n");
    std::printf("%-16s %7s %9s %11s %9s %9s %9s %10s\n", "model", "actors",
                "channels", "steps", "mean gap", "max gap", "exact", "solve ms");
    for (const AbsintReport& r : reports) {
        std::printf("%-16s %7zu %9zu %11llu %9.3f %9.3f %6zu/%-3zu %10.3f\n",
                    r.name.c_str(), r.actors, r.channels,
                    static_cast<unsigned long long>(r.solver_steps), r.mean_gap,
                    r.max_gap, r.exact_channels, r.bounded_channels,
                    r.solve.median_ms);
    }
    std::printf("\n");
}

void write_json(const std::string& path, const std::vector<AbsintReport>& reports,
                int reps) {
    std::ofstream out(path);
    out << "{\n";
    out << "  \"bench\": \"bench_absint\",\n";
    out << "  \"threads\": " << global_thread_pool().size() << ",\n";
    out << "  \"reps\": " << reps << ",\n";
    out << "  \"models\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const AbsintReport& r = reports[i];
        out << "    {\n";
        out << "      \"name\": \"" << sdfbench::json_escape(r.name) << "\",\n";
        out << "      \"actors\": " << r.actors << ",\n";
        out << "      \"channels\": " << r.channels << ",\n";
        out << "      \"solver_steps\": " << r.solver_steps << ",\n";
        out << "      \"bounded_channels\": " << r.bounded_channels << ",\n";
        out << "      \"exact_channels\": " << r.exact_channels << ",\n";
        out << "      \"mean_gap\": " << sdfbench::json_num(r.mean_gap) << ",\n";
        out << "      \"max_gap\": " << sdfbench::json_num(r.max_gap) << ",\n";
        out << "      \"certificate_verified\": "
            << (r.certificate_verified ? "true" : "false") << ",\n";
        out << "      \"baseline_solve\": " << sdfbench::stats_json(r.solve) << ",\n";
        out << "      \"optimized_certify\": " << sdfbench::stats_json(r.certify)
            << "\n";
        out << "    }" << (i + 1 < reports.size() ? ",\n" : "\n");
    }
    out << "  ]\n";
    out << "}\n";
    std::printf("wrote %s\n", path.c_str());
}

void BM_IntervalSolve(benchmark::State& state) {
    const auto cases = workloads();
    const auto& [name, g] = cases[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(absint::token_intervals(g));
    }
    state.SetLabel(name);
}

void BM_CertifyAndVerify(benchmark::State& state) {
    const auto cases = workloads();
    const auto& [name, g] = cases[static_cast<std::size_t>(state.range(0))];
    const absint::TokenIntervals ti = absint::token_intervals(g);
    for (auto _ : state) {
        const absint::CertifiedBounds bounds = absint::certify_buffer_bounds(g, ti);
        benchmark::DoNotOptimize(absint::verify_certificate(g, bounds));
    }
    state.SetLabel(name);
}

BENCHMARK(BM_IntervalSolve)->DenseRange(0, 9);
BENCHMARK(BM_CertifyAndVerify)->DenseRange(0, 9);

}  // namespace

int main(int argc, char** argv) {
    const std::string json_path = sdfbench::consume_flag(argc, argv, "--json", "");
    const int reps = std::max(1, std::atoi(
        sdfbench::consume_flag(argc, argv, "--reps", "5").c_str()));

    std::vector<AbsintReport> reports;
    for (const auto& [name, g] : workloads()) {
        reports.push_back(measure(name, g, reps));
    }
    print_table(reports);

    if (!json_path.empty()) {
        write_json(json_path, reports, reps);
        return 0;
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
