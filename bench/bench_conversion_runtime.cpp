// bench_conversion_runtime — checks the Section 7 run-time claim: "The
// run-time of the algorithms is a few milliseconds."  Times the traditional
// conversion, the symbolic-execution phase and the full new conversion per
// benchmark application and prints a wall-clock summary table.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "gen/benchmarks.hpp"
#include "transform/hsdf_classic.hpp"
#include "transform/hsdf_reduced.hpp"
#include "transform/symbolic.hpp"

namespace {

using namespace sdf;

double wall_ms(const auto& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(end - start).count();
}

void print_runtimes() {
    std::printf("Section 7 run-time claim: conversions take a few milliseconds\n");
    std::printf("%-26s %14s %14s %14s\n", "test case", "traditional", "symbolic",
                "new (total)");
    std::printf("%-26s %14s %14s %14s\n", "", "ms", "ms", "ms");
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        const double traditional =
            wall_ms([&] { benchmark::DoNotOptimize(to_hsdf_classic(bench.graph)); });
        const double symbolic =
            wall_ms([&] { benchmark::DoNotOptimize(symbolic_iteration(bench.graph)); });
        const double reduced =
            wall_ms([&] { benchmark::DoNotOptimize(to_hsdf_reduced(bench.graph)); });
        std::printf("%-26s %14.3f %14.3f %14.3f\n", bench.label.c_str(), traditional,
                    symbolic, reduced);
    }
    std::printf("\n");
}

void BM_SymbolicIteration(benchmark::State& state) {
    const auto cases = table1_benchmarks();
    const BenchmarkCase& bench = cases[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(symbolic_iteration(bench.graph));
    }
    state.SetLabel(bench.label);
}

BENCHMARK(BM_SymbolicIteration)->DenseRange(0, 7);

}  // namespace

int main(int argc, char** argv) {
    print_runtimes();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
