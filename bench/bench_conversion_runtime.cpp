// bench_conversion_runtime — checks the Section 7 run-time claim ("The
// run-time of the algorithms is a few milliseconds") and records the sparse
// symbolic engine against the dense baseline in the same run.
//
// The bundled model set is the eight Table 1 applications plus three large
// fork/join graphs whose initial-token counts (258..1030) are where the
// sparse engine's O(support)-per-firing cost separates from the dense
// engine's O(N): on the largest bundled model the report carries both
// engines' wall-time stats and the resulting speedup.
//
// Flags (see docs/PERFORMANCE.md):
//   --json FILE   write BENCH_conversion_runtime.json-style report and skip
//                 the google-benchmark run
//   --reps N      repetitions per measurement (default 5)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "base/cpudispatch.hpp"
#include "base/thread_pool.hpp"
#include "gen/benchmarks.hpp"
#include "gen/structured.hpp"
#include "maxplus/matrix.hpp"
#include "sdf/repetition.hpp"
#include "transform/hsdf_classic.hpp"
#include "transform/hsdf_reduced.hpp"
#include "transform/symbolic.hpp"

namespace {

using namespace sdf;

/// Table 1 plus the large fork/join scaling models.  The largest bundled
/// model (by initial tokens, the symbolic engines' problem size) is
/// fork_join(1024): 1030 initial tokens.
std::vector<BenchmarkCase> bundled_models() {
    std::vector<BenchmarkCase> cases = table1_benchmarks();
    cases.push_back(BenchmarkCase{"fork_join(256)", fork_join_graph(256, 5, 4)});
    cases.push_back(BenchmarkCase{"fork_join(512)", fork_join_graph(512, 5, 4)});
    cases.push_back(BenchmarkCase{"fork_join(1024)", fork_join_graph(1024, 5, 4)});
    return cases;
}

struct ModelReport {
    std::string name;
    std::size_t actors = 0;
    std::size_t channels = 0;
    std::size_t initial_tokens = 0;
    Int iterations = 0;
    double matrix_density = 0;
    sdfbench::Stats baseline_dense;    // dense/serial symbolic iteration
    sdfbench::Stats optimized_sparse;  // sparse symbolic iteration
    sdfbench::Stats traditional;       // classical SDF->HSDF expansion
    sdfbench::Stats reduced;           // full reduced conversion (sparse)
    double speedup = 0;                // dense median / sparse median
};

ModelReport measure_model(const BenchmarkCase& bench, int reps) {
    ModelReport r;
    r.name = bench.label;
    r.actors = bench.graph.actor_count();
    r.channels = bench.graph.channel_count();
    r.iterations = iteration_length(bench.graph);

    // Warm the per-graph memo so neither engine pays the one-off schedule
    // derivation inside its timed region.
    const SymbolicIteration warm = symbolic_iteration(bench.graph);
    r.initial_tokens = warm.tokens.size();
    r.matrix_density = warm.matrix.density();

    r.baseline_dense = sdfbench::measure_ms(reps, [&] {
        benchmark::DoNotOptimize(
            symbolic_iteration(bench.graph, SymbolicEngine::dense));
    });
    r.optimized_sparse = sdfbench::measure_ms(reps, [&] {
        benchmark::DoNotOptimize(
            symbolic_iteration(bench.graph, SymbolicEngine::sparse));
    });
    r.traditional = sdfbench::measure_ms(reps, [&] {
        benchmark::DoNotOptimize(to_hsdf_classic(bench.graph));
    });
    r.reduced = sdfbench::measure_ms(reps, [&] {
        benchmark::DoNotOptimize(to_hsdf_reduced(bench.graph));
    });
    r.speedup = r.optimized_sparse.median_ms > 0
                    ? r.baseline_dense.median_ms / r.optimized_sparse.median_ms
                    : 0;
    return r;
}

void print_report(const std::vector<ModelReport>& reports) {
    std::printf("Section 7 run-time claim: conversions take a few milliseconds\n");
    std::printf("(medians over repeated runs; dense = serial baseline engine)\n");
    std::printf("%-22s %8s %8s %12s %12s %12s %12s %8s\n", "test case", "tokens",
                "density", "traditional", "dense sym", "sparse sym", "new (total)",
                "speedup");
    for (const ModelReport& r : reports) {
        std::printf("%-22s %8zu %7.3f%% %10.3fms %10.3fms %10.3fms %10.3fms %7.2fx\n",
                    r.name.c_str(), r.initial_tokens, r.matrix_density * 100.0,
                    r.traditional.median_ms, r.baseline_dense.median_ms,
                    r.optimized_sparse.median_ms, r.reduced.median_ms, r.speedup);
    }
    std::printf("\n");
}

/// The SIMD kernel gate: densify fork_join(1024)'s iteration matrix by
/// repeated squaring (composing 2^s graph iterations keeps the operand
/// semantically meaningful and deterministic), then time the checked
/// blocked kernel — the pre-SoA algorithm, still live as multiply's
/// overflow fallback — against the dispatched SIMD multiply on it.  The
/// result must be bit-identical to multiply_naive; CI asserts the >= 4x
/// floor on this section.
struct KernelReport {
    std::string model;
    std::size_t rows = 0;
    Int power = 0;               // the operand is G^power
    double density = 0;          // fraction of finite entries in the operand
    std::string isa;             // dispatched tier the fast path ran on
    sdfbench::Stats baseline_checked;  // multiply_checked (blocked scalar)
    sdfbench::Stats optimized_simd;    // multiply (SIMD fast path)
    double speedup = 0;
    bool bit_identical_to_naive = false;
};

KernelReport measure_kernel_gate(int reps) {
    KernelReport r;
    r.model = "fork_join(1024)";
    const Graph graph = fork_join_graph(1024, 5, 4);
    const SymbolicIteration it = symbolic_iteration(graph);
    MpMatrix dense = it.matrix;
    r.power = 1;
    while (dense.density() < 0.5 && r.power < 32) {
        dense = dense.multiply(dense);
        r.power *= 2;
    }
    r.rows = dense.rows();
    r.density = dense.density();
    r.isa = isa_tier_name(active_isa_tier());
    r.baseline_checked = sdfbench::measure_ms(reps, [&] {
        benchmark::DoNotOptimize(dense.multiply_checked(dense));
    });
    r.optimized_simd = sdfbench::measure_ms(reps, [&] {
        benchmark::DoNotOptimize(dense.multiply(dense));
    });
    r.speedup = r.optimized_simd.median_ms > 0
                    ? r.baseline_checked.median_ms / r.optimized_simd.median_ms
                    : 0;
    r.bit_identical_to_naive = dense.multiply(dense) == dense.multiply_naive(dense);
    return r;
}

std::string kernel_json(const KernelReport& r) {
    std::string out = "  \"kernel\": {\n";
    out += "    \"model\": \"" + sdfbench::json_escape(r.model) + "\",\n";
    out += "    \"rows\": " + std::to_string(r.rows) + ",\n";
    out += "    \"matrix_power\": " + std::to_string(r.power) + ",\n";
    out += "    \"density\": " + sdfbench::json_num(r.density) + ",\n";
    out += "    \"isa\": \"" + r.isa + "\",\n";
    out += "    \"baseline_checked_blocked\": " + sdfbench::stats_json(r.baseline_checked) +
           ",\n";
    out += "    \"optimized_simd\": " + sdfbench::stats_json(r.optimized_simd) + ",\n";
    out += "    \"speedup_simd_vs_checked\": " + sdfbench::json_num(r.speedup) + ",\n";
    out += "    \"bit_identical_to_naive\": ";
    out += r.bit_identical_to_naive ? "true" : "false";
    out += "\n  }";
    return out;
}

const ModelReport& largest_model(const std::vector<ModelReport>& reports) {
    const ModelReport* best = &reports.front();
    for (const ModelReport& r : reports) {
        if (r.initial_tokens > best->initial_tokens) {
            best = &r;
        }
    }
    return *best;
}

std::string model_json(const ModelReport& r) {
    std::string out = "    {\n";
    out += "      \"name\": \"" + sdfbench::json_escape(r.name) + "\",\n";
    out += "      \"actors\": " + std::to_string(r.actors) + ",\n";
    out += "      \"channels\": " + std::to_string(r.channels) + ",\n";
    out += "      \"initial_tokens\": " + std::to_string(r.initial_tokens) + ",\n";
    out += "      \"iteration_length\": " + std::to_string(r.iterations) + ",\n";
    out += "      \"matrix_density\": " + sdfbench::json_num(r.matrix_density) + ",\n";
    out += "      \"baseline_dense_symbolic\": " + sdfbench::stats_json(r.baseline_dense) +
           ",\n";
    out += "      \"optimized_sparse_symbolic\": " +
           sdfbench::stats_json(r.optimized_sparse) + ",\n";
    out += "      \"traditional_conversion\": " + sdfbench::stats_json(r.traditional) +
           ",\n";
    out += "      \"reduced_conversion\": " + sdfbench::stats_json(r.reduced) + ",\n";
    out += "      \"speedup_sparse_vs_dense\": " + sdfbench::json_num(r.speedup) + "\n";
    out += "    }";
    return out;
}

void write_json(const std::string& path, const std::vector<ModelReport>& reports,
                const KernelReport& kernel, int reps) {
    const ModelReport& largest = largest_model(reports);
    std::ofstream out(path);
    out << "{\n";
    out << "  \"bench\": \"bench_conversion_runtime\",\n";
    out << "  \"machine\": " << sdfbench::machine_json() << ",\n";
    out << "  \"threads\": " << global_thread_pool().size() << ",\n";
    out << "  \"reps\": " << reps << ",\n";
    out << kernel_json(kernel) << ",\n";
    out << "  \"models\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        out << model_json(reports[i]) << (i + 1 < reports.size() ? ",\n" : "\n");
    }
    out << "  ],\n";
    out << "  \"largest_model\": {\n";
    out << "    \"name\": \"" << sdfbench::json_escape(largest.name) << "\",\n";
    out << "    \"initial_tokens\": " << largest.initial_tokens << ",\n";
    out << "    \"baseline_dense_median_ms\": "
        << sdfbench::json_num(largest.baseline_dense.median_ms) << ",\n";
    out << "    \"optimized_sparse_median_ms\": "
        << sdfbench::json_num(largest.optimized_sparse.median_ms) << ",\n";
    out << "    \"speedup_sparse_vs_dense\": " << sdfbench::json_num(largest.speedup)
        << "\n";
    out << "  }\n";
    out << "}\n";
    std::printf("wrote %s (largest model %s: %.2fx sparse over dense)\n", path.c_str(),
                largest.name.c_str(), largest.speedup);
}

void BM_SymbolicIterationSparse(benchmark::State& state) {
    const auto cases = bundled_models();
    const BenchmarkCase& bench = cases[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            symbolic_iteration(bench.graph, SymbolicEngine::sparse));
    }
    state.SetLabel(bench.label);
}

void BM_SymbolicIterationDense(benchmark::State& state) {
    const auto cases = bundled_models();
    const BenchmarkCase& bench = cases[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            symbolic_iteration(bench.graph, SymbolicEngine::dense));
    }
    state.SetLabel(bench.label);
}

BENCHMARK(BM_SymbolicIterationSparse)->DenseRange(0, 10);
BENCHMARK(BM_SymbolicIterationDense)->DenseRange(0, 10);

}  // namespace

int main(int argc, char** argv) {
    const std::string json_path = sdfbench::consume_flag(argc, argv, "--json", "");
    const int reps = std::max(1, std::atoi(
        sdfbench::consume_flag(argc, argv, "--reps", "5").c_str()));

    std::vector<ModelReport> reports;
    for (const BenchmarkCase& bench : bundled_models()) {
        reports.push_back(measure_model(bench, reps));
    }
    print_report(reports);

    const KernelReport kernel = measure_kernel_gate(reps);
    std::printf("SIMD kernel gate (%s, G^%lld: %zux%zu at %.1f%% density, isa=%s):\n"
                "  checked blocked %.3fms vs SIMD %.3fms -> %.2fx, naive-identical: %s\n\n",
                kernel.model.c_str(), static_cast<long long>(kernel.power), kernel.rows,
                kernel.rows, kernel.density * 100.0, kernel.isa.c_str(),
                kernel.baseline_checked.median_ms, kernel.optimized_simd.median_ms,
                kernel.speedup, kernel.bit_identical_to_naive ? "yes" : "NO");

    if (!json_path.empty()) {
        write_json(json_path, reports, kernel, reps);
        return 0;
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
