// bench_degradation — cost and conservatism of the anytime degradation
// ladder (analysis/governed) against the exact symbolic route, on the
// Table 1 benchmark applications.
//
// Two questions the robustness milestone cares about:
//  * how much faster is a degraded answer than the exact one (the time a
//    blown budget buys back), and
//  * how loose is the certified bound (the conservatism gap: the ratio of
//    the exact throughput to the bound, >= 1, 1 = tight).
//
// The ladder is forced to degrade with max_steps=1, so the measurement is
// "starved exact rung + whichever bound rung answers".  The rung-3
// sequential bound is additionally reported analytically (period sum q.t)
// so both rungs' gaps appear even for models where rung 2 answers first.
//
// Flags (see docs/PERFORMANCE.md):
//   --json FILE   write a BENCH_degradation.json report and skip the
//                 google-benchmark run
//   --reps N      repetitions per measurement (default 5)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/governed.hpp"
#include "analysis/throughput.hpp"
#include "base/thread_pool.hpp"
#include "bench_json.hpp"
#include "gen/benchmarks.hpp"
#include "sdf/repetition.hpp"

namespace {

using namespace sdf;

/// exact_period / bound_period: >= 1 when the bound is sound, 1 = tight.
double gap_ratio(const Rational& exact_period, const Rational& bound_period) {
    const double exact = exact_period.to_double();
    const double bound = bound_period.to_double();
    return exact > 0 ? bound / exact : 0.0;
}

struct DegradationReport {
    std::string name;
    std::size_t actors = 0;
    std::size_t channels = 0;
    std::string method;  // which rung answered under starvation
    std::string exact_period;
    std::string bound_period;
    std::string sequential_period;
    double gap_ladder = 0;      // ladder bound period / exact period
    double gap_sequential = 0;  // rung-3 period / exact period
    sdfbench::Stats exact;      // throughput_symbolic
    sdfbench::Stats degraded;   // governed ladder under max_steps=1
    double speedup = 0;         // exact median / degraded median
};

GovernOptions starved_options() {
    GovernOptions options;
    options.budget.max_steps = 1;
    return options;
}

DegradationReport measure(const BenchmarkCase& bench, int reps) {
    DegradationReport r;
    r.name = bench.label;
    r.actors = bench.graph.actor_count();
    r.channels = bench.graph.channel_count();

    const ThroughputResult exact = throughput_symbolic(bench.graph);
    const Governed<ThroughputResult> degraded =
        governed_throughput(bench.graph, starved_options());
    r.method = degraded.ok() ? degraded.method : "aborted";
    if (exact.outcome == ThroughputOutcome::finite) {
        r.exact_period = exact.period.to_string();
    }
    if (degraded.ok() && degraded.value->outcome == ThroughputOutcome::finite) {
        r.bound_period = degraded.value->period.to_string();
        if (exact.outcome == ThroughputOutcome::finite) {
            r.gap_ladder = gap_ratio(exact.period, degraded.value->period);
        }
    }
    // Rung 3 analytically: one sequential iteration takes sum_a q(a)·t(a).
    const std::vector<Int> q = repetition_vector(bench.graph);
    Int sequential = 0;
    for (ActorId a = 0; a < bench.graph.actor_count(); ++a) {
        sequential += q[a] * bench.graph.actor(a).execution_time;
    }
    r.sequential_period = Rational(sequential).to_string();
    if (exact.outcome == ThroughputOutcome::finite && sequential > 0) {
        r.gap_sequential = gap_ratio(exact.period, Rational(sequential));
    }

    r.exact = sdfbench::measure_ms(reps, [&] {
        benchmark::DoNotOptimize(throughput_symbolic(bench.graph));
    });
    r.degraded = sdfbench::measure_ms(reps, [&] {
        benchmark::DoNotOptimize(governed_throughput(bench.graph, starved_options()));
    });
    r.speedup = r.degraded.median_ms > 0 ? r.exact.median_ms / r.degraded.median_ms : 0;
    return r;
}

void print_table(const std::vector<DegradationReport>& reports) {
    std::printf("Degradation ladder vs exact symbolic route (gap = bound period / "
                "exact period, 1 = tight)\n");
    std::printf("%-26s %-18s %10s %10s %10s %9s\n", "test case", "rung",
                "gap", "seq. gap", "exact ms", "degr. ms");
    for (const DegradationReport& r : reports) {
        std::printf("%-26s %-18s %10.3f %10.3f %10.3f %9.3f\n", r.name.c_str(),
                    r.method.c_str(), r.gap_ladder, r.gap_sequential,
                    r.exact.median_ms, r.degraded.median_ms);
    }
    std::printf("\n");
}

void write_json(const std::string& path, const std::vector<DegradationReport>& reports,
                int reps) {
    std::ofstream out(path);
    out << "{\n";
    out << "  \"bench\": \"bench_degradation\",\n";
    out << "  \"threads\": " << global_thread_pool().size() << ",\n";
    out << "  \"reps\": " << reps << ",\n";
    out << "  \"models\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const DegradationReport& r = reports[i];
        out << "    {\n";
        out << "      \"name\": \"" << sdfbench::json_escape(r.name) << "\",\n";
        out << "      \"actors\": " << r.actors << ",\n";
        out << "      \"channels\": " << r.channels << ",\n";
        out << "      \"degraded_method\": \"" << sdfbench::json_escape(r.method)
            << "\",\n";
        out << "      \"exact_period\": \"" << sdfbench::json_escape(r.exact_period)
            << "\",\n";
        out << "      \"bound_period\": \"" << sdfbench::json_escape(r.bound_period)
            << "\",\n";
        out << "      \"sequential_period\": \""
            << sdfbench::json_escape(r.sequential_period) << "\",\n";
        out << "      \"gap_ladder\": " << sdfbench::json_num(r.gap_ladder) << ",\n";
        out << "      \"gap_sequential\": " << sdfbench::json_num(r.gap_sequential)
            << ",\n";
        out << "      \"baseline_exact\": " << sdfbench::stats_json(r.exact) << ",\n";
        out << "      \"optimized_degraded\": " << sdfbench::stats_json(r.degraded)
            << ",\n";
        out << "      \"speedup_degraded_vs_exact\": " << sdfbench::json_num(r.speedup)
            << "\n";
        out << "    }" << (i + 1 < reports.size() ? ",\n" : "\n");
    }
    out << "  ]\n";
    out << "}\n";
    std::printf("wrote %s\n", path.c_str());
}

void BM_ExactThroughput(benchmark::State& state) {
    const auto cases = table1_benchmarks();
    const BenchmarkCase& bench = cases[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(throughput_symbolic(bench.graph));
    }
    state.SetLabel(bench.label);
}

void BM_DegradedLadder(benchmark::State& state) {
    const auto cases = table1_benchmarks();
    const BenchmarkCase& bench = cases[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(governed_throughput(bench.graph, starved_options()));
    }
    state.SetLabel(bench.label);
}

BENCHMARK(BM_ExactThroughput)->DenseRange(0, 7);
BENCHMARK(BM_DegradedLadder)->DenseRange(0, 7);

}  // namespace

int main(int argc, char** argv) {
    const std::string json_path = sdfbench::consume_flag(argc, argv, "--json", "");
    const int reps = std::max(1, std::atoi(
        sdfbench::consume_flag(argc, argv, "--reps", "5").c_str()));

    std::vector<DegradationReport> reports;
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        reports.push_back(measure(bench, reps));
    }
    print_table(reports);

    if (!json_path.empty()) {
        write_json(json_path, reports, reps);
        return 0;
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
