// bench_pipeline — executor overhead of the pass pipeline against the same
// transforms called directly, on the Table 1 benchmark applications.
//
// The pass-manager milestone's acceptance gate: running
// "selfloops,prune,hsdf-reduced" through the PipelineExecutor must cost
// within a few percent of the bare chain
//
//     to_hsdf_reduced(prune_redundant_channels(add_self_loops(g, 1)))
//
// because everything the executor adds per pass — report assembly, the
// pre-pass graph copy (a cheap COW handle), budget-slice bookkeeping — is
// O(1) or O(graph), never O(analysis).  The report records both routes'
// wall-time distributions and the median overhead ratio per model; the CI
// bench-smoke job archives the JSON next to the other BENCH_*.json files.
//
// Flags (see docs/PERFORMANCE.md):
//   --json FILE   write a BENCH_pipeline.json report and skip the
//                 google-benchmark run
//   --reps N      repetitions per measurement (default 5)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/throughput.hpp"
#include "base/thread_pool.hpp"
#include "bench_json.hpp"
#include "gen/benchmarks.hpp"
#include "pass/executor.hpp"
#include "pass/pipeline.hpp"
#include "transform/hsdf_reduced.hpp"
#include "transform/prune.hpp"
#include "transform/selfloops.hpp"

namespace {

using namespace sdf;

constexpr const char* kSpec = "selfloops,prune,hsdf-reduced";

Graph direct_route(const Graph& graph) {
    return to_hsdf_reduced(prune_redundant_channels(add_self_loops(graph, 1)));
}

struct PipelineReport {
    std::string name;
    std::size_t actors = 0;
    std::size_t channels = 0;
    std::size_t result_actors = 0;
    std::string period;       // of the pipeline result (equal on both routes)
    bool routes_agree = false;
    sdfbench::Stats direct;   // bare chained calls
    sdfbench::Stats executor; // PipelineExecutor over the same spec
    double overhead = 0;      // executor median / direct median - 1
};

PipelineReport measure(const BenchmarkCase& bench, int reps) {
    PipelineReport r;
    r.name = bench.label;
    r.actors = bench.graph.actor_count();
    r.channels = bench.graph.channel_count();

    const Pipeline pipeline = parse_pipeline(kSpec);
    const PipelineExecutor executor;

    const Graph via_direct = direct_route(bench.graph);
    const Graph via_executor = executor.run(pipeline, bench.graph).graph;
    r.result_actors = via_executor.actor_count();
    const ThroughputResult direct_t = throughput_symbolic(via_direct);
    const ThroughputResult executor_t = throughput_symbolic(via_executor);
    r.routes_agree = direct_t.outcome == executor_t.outcome &&
                     (!direct_t.is_finite() || direct_t.period == executor_t.period);
    if (executor_t.is_finite()) {
        r.period = executor_t.period.to_string();
    }

    r.direct = sdfbench::measure_ms(reps, [&bench] {
        benchmark::DoNotOptimize(direct_route(bench.graph));
    });
    r.executor = sdfbench::measure_ms(reps, [&bench, &pipeline, &executor] {
        benchmark::DoNotOptimize(executor.run(pipeline, bench.graph));
    });
    r.overhead = r.direct.median_ms > 0
                     ? r.executor.median_ms / r.direct.median_ms - 1.0
                     : 0.0;
    return r;
}

void print_table(const std::vector<PipelineReport>& reports) {
    std::printf("%-22s %8s %10s %12s %12s %9s\n", "model", "actors", "result",
                "direct ms", "executor ms", "overhead");
    for (const PipelineReport& r : reports) {
        std::printf("%-22s %8zu %10zu %12.3f %12.3f %8.1f%%%s\n", r.name.c_str(),
                    r.actors, r.result_actors, r.direct.median_ms,
                    r.executor.median_ms, 100.0 * r.overhead,
                    r.routes_agree ? "" : "  ROUTES DISAGREE");
    }
}

void write_json(const std::string& path, const std::vector<PipelineReport>& reports,
                int reps) {
    std::ofstream out(path);
    out << "{\n";
    out << "  \"bench\": \"bench_pipeline\",\n";
    out << "  \"spec\": \"" << sdfbench::json_escape(kSpec) << "\",\n";
    out << "  \"threads\": " << global_thread_pool().size() << ",\n";
    out << "  \"reps\": " << reps << ",\n";
    out << "  \"models\": [\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const PipelineReport& r = reports[i];
        out << "    {\n";
        out << "      \"name\": \"" << sdfbench::json_escape(r.name) << "\",\n";
        out << "      \"actors\": " << r.actors << ",\n";
        out << "      \"channels\": " << r.channels << ",\n";
        out << "      \"result_actors\": " << r.result_actors << ",\n";
        out << "      \"period\": \"" << sdfbench::json_escape(r.period) << "\",\n";
        out << "      \"routes_agree\": " << (r.routes_agree ? "true" : "false")
            << ",\n";
        out << "      \"baseline_direct\": " << sdfbench::stats_json(r.direct)
            << ",\n";
        out << "      \"optimized_executor\": " << sdfbench::stats_json(r.executor)
            << ",\n";
        out << "      \"executor_overhead\": " << sdfbench::json_num(r.overhead)
            << "\n";
        out << "    }" << (i + 1 < reports.size() ? ",\n" : "\n");
    }
    out << "  ]\n";
    out << "}\n";
    std::printf("wrote %s\n", path.c_str());
}

void BM_DirectRoute(benchmark::State& state) {
    const auto cases = table1_benchmarks();
    const BenchmarkCase& bench = cases[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        benchmark::DoNotOptimize(direct_route(bench.graph));
    }
    state.SetLabel(bench.label);
}

void BM_ExecutorRoute(benchmark::State& state) {
    const auto cases = table1_benchmarks();
    const BenchmarkCase& bench = cases[static_cast<std::size_t>(state.range(0))];
    const Pipeline pipeline = parse_pipeline(kSpec);
    const PipelineExecutor executor;
    for (auto _ : state) {
        benchmark::DoNotOptimize(executor.run(pipeline, bench.graph));
    }
    state.SetLabel(bench.label);
}

BENCHMARK(BM_DirectRoute)->DenseRange(0, 7);
BENCHMARK(BM_ExecutorRoute)->DenseRange(0, 7);

}  // namespace

int main(int argc, char** argv) {
    const std::string json_path = sdfbench::consume_flag(argc, argv, "--json", "");
    const int reps = std::max(1, std::atoi(
        sdfbench::consume_flag(argc, argv, "--reps", "5").c_str()));

    std::vector<PipelineReport> reports;
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        reports.push_back(measure(bench, reps));
    }
    print_table(reports);

    if (!json_path.empty()) {
        write_json(json_path, reports, reps);
        return 0;
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
