// bench_abstraction_fig1 — reproduces the Section 4.1 example study:
// the regular graph of Figure 1(a) with n copies of the Ai actor has
// throughput 1/(5n-7); the abstract graph of Figure 1(b) estimates it as
// 1/(5n).  The estimate is conservative and its relative error vanishes as
// n grows.  Prints the sweep and times full analysis of the original graph
// against abstraction + analysis of the reduced graph.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/throughput.hpp"
#include "gen/regular.hpp"
#include "transform/abstraction.hpp"

namespace {

using namespace sdf;

void print_sweep() {
    std::printf("Section 4.1: abstraction of the Figure 1 family\n");
    std::printf("%8s %10s %14s %14s %12s %10s\n", "n", "actors", "throughput",
                "estimate", "expected", "rel.err");
    std::printf("%8s %10s %14s %14s %12s %10s\n", "", "", "1/(5n-7)", "tau(A)/N",
                "1/(5n)", "");
    for (Int n = 6; n <= 3072; n *= 2) {
        const Graph g = figure1_graph(n);
        const ThroughputResult original = throughput_symbolic(g);
        const AbstractionSpec spec = abstraction_by_name_suffix(g);
        const Graph abstract = abstract_graph(g, spec);
        const ThroughputResult reduced = throughput_symbolic(abstract);
        const Rational actual = original.per_actor[*g.find_actor("A1")];
        const Rational estimate =
            reduced.per_actor[*abstract.find_actor("A")] / Rational(spec.fold());
        const double rel_err =
            (actual.to_double() - estimate.to_double()) / actual.to_double();
        std::printf("%8ld %10zu %14s %14s %12s %9.4f%%\n", static_cast<long>(n),
                    g.actor_count(), actual.to_string().c_str(),
                    estimate.to_string().c_str(),
                    Rational(1, 5 * n).to_string().c_str(), 100.0 * rel_err);
    }
    std::printf("\n");
}

void BM_AnalyseOriginal(benchmark::State& state) {
    const Graph g = figure1_graph(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(throughput_symbolic(g));
    }
    state.SetComplexityN(state.range(0));
}

void BM_AbstractThenAnalyse(benchmark::State& state) {
    const Graph g = figure1_graph(state.range(0));
    for (auto _ : state) {
        const AbstractionSpec spec = abstraction_by_name_suffix(g);
        const Graph abstract = abstract_graph(g, spec);
        benchmark::DoNotOptimize(throughput_symbolic(abstract));
    }
    state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_AnalyseOriginal)->RangeMultiplier(4)->Range(8, 2048)->Complexity();
BENCHMARK(BM_AbstractThenAnalyse)->RangeMultiplier(4)->Range(8, 2048)->Complexity();

}  // namespace

int main(int argc, char** argv) {
    print_sweep();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
