// bench_ablation_muxdemux — ablation of Figure 4's "(de-)multiplexing
// actors only need to be present if there is actually more than one actor
// that needs the token": how many of the N(N+2)-bound actors does the
// elision save on real and random graphs?
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "analysis/throughput.hpp"
#include "gen/benchmarks.hpp"
#include "gen/random_sdf.hpp"
#include "transform/hsdf_reduced.hpp"
#include "transform/symbolic.hpp"

namespace {

using namespace sdf;

void print_row(const char* label, const Graph& g) {
    const SymbolicIteration it = symbolic_iteration(g);
    const ReducedHsdfOptions keep{.elide_single_client_muxes = false};
    const Graph elided = reduced_hsdf_from_matrix(it.matrix, "e");
    const Graph full = reduced_hsdf_from_matrix(it.matrix, "f", keep);
    std::printf("%-26s %10zu %10zu %9.1f%%\n", label, full.actor_count(),
                elided.actor_count(),
                100.0 * (1.0 - static_cast<double>(elided.actor_count()) /
                                   static_cast<double>(full.actor_count())));
}

void print_ablation() {
    std::printf("Ablation: mux/demux elision in the Figure 4 construction\n");
    std::printf("%-26s %10s %10s %10s\n", "graph", "no elision", "elided", "saved");
    for (const BenchmarkCase& bench : table1_benchmarks()) {
        print_row(bench.label.c_str(), bench.graph);
    }
    std::mt19937 rng(7);
    for (int i = 0; i < 3; ++i) {
        const Graph g = random_sdf(rng);
        print_row(("random #" + std::to_string(i)).c_str(), g);
    }
    std::printf("\n(The elision never changes timing; verified by the test "
                "suite.)\n\n");
}

void BM_ConstructElided(benchmark::State& state) {
    const auto cases = table1_benchmarks();
    const SymbolicIteration it =
        symbolic_iteration(cases[static_cast<std::size_t>(state.range(0))].graph);
    for (auto _ : state) {
        benchmark::DoNotOptimize(reduced_hsdf_from_matrix(it.matrix, "e"));
    }
    state.SetLabel(cases[static_cast<std::size_t>(state.range(0))].label);
}

void BM_ConstructFull(benchmark::State& state) {
    const auto cases = table1_benchmarks();
    const SymbolicIteration it =
        symbolic_iteration(cases[static_cast<std::size_t>(state.range(0))].graph);
    const ReducedHsdfOptions keep{.elide_single_client_muxes = false};
    for (auto _ : state) {
        benchmark::DoNotOptimize(reduced_hsdf_from_matrix(it.matrix, "f", keep));
    }
    state.SetLabel(cases[static_cast<std::size_t>(state.range(0))].label);
}

BENCHMARK(BM_ConstructElided)->DenseRange(0, 7);
BENCHMARK(BM_ConstructFull)->DenseRange(0, 7);

}  // namespace

int main(int argc, char** argv) {
    print_ablation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
